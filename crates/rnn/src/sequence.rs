//! Sequence planning with update lag δ (paper §6.1, Figure 2).
//!
//! The ground truth of a session only becomes known once the session window
//! closes, and computing the new hidden state takes additional time ε.
//! A prediction at time `t_i` therefore cannot use `h_{i-1}`; it must use
//! `h_k` where `k` is the largest index with `t_k < t_i − δ` and
//! `δ = session_length + ε`. This module turns a user's access log into an
//! explicit plan: the ordered hidden-state updates, and for every prediction
//! the index of the hidden state it is allowed to read plus the elapsed-time
//! input `T(t_i − t_k)`.

use pp_data::schema::{Dataset, DatasetKind, UserHistory, SECONDS_PER_DAY};
use pp_data::synth::{build_peak_window_examples, PeakWindowExample};
use pp_features::rnn_input::RnnFeaturizer;
use serde::{Deserialize, Serialize};

/// Update-lag configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LagConfig {
    /// Fixed session length in seconds (paper: 20 minutes for MobileTab and
    /// Timeshift, 10 minutes for MPU).
    pub session_length_secs: i64,
    /// Additional latency ε before the updated hidden state is available.
    pub update_latency_secs: i64,
}

impl LagConfig {
    /// The paper's defaults for a dataset family.
    pub fn for_kind(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::MobileTab | DatasetKind::Timeshift => Self {
                session_length_secs: 20 * 60,
                update_latency_secs: 60,
            },
            DatasetKind::Mpu => Self {
                session_length_secs: 10 * 60,
                update_latency_secs: 60,
            },
        }
    }

    /// The total lag `δ = session_length + ε`.
    pub fn delta(&self) -> i64 {
        self.session_length_secs + self.update_latency_secs
    }
}

/// One hidden-state update (one session, in chronological order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStep {
    /// Index of the session within the user's history.
    pub session_index: usize,
    /// The GRU input `[f_i ; T(Δt_i) ; A_i]`.
    pub update_input: Vec<f32>,
}

/// One prediction to be made (and scored) for a user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionStep {
    /// Number of hidden-state updates available to this prediction: the
    /// prediction reads `h_k`, where `h_0` is the all-zero initial state.
    pub hidden_index: usize,
    /// The prediction input `[f_i ; T(t_i − t_k)]` (or `[T(start_d − t_k)]`
    /// for the timeshifted task).
    pub predict_input: Vec<f32>,
    /// Ground-truth label.
    pub label: bool,
    /// Prediction timestamp (session start, or peak-window start).
    pub timestamp: i64,
    /// Day offset relative to the dataset start (for last-N-days filters).
    pub day_offset: u32,
}

/// The full training/evaluation plan for one user: hidden updates in order,
/// plus the predictions that read them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSequencePlan {
    /// Hidden-state updates, one per session, chronological.
    pub updates: Vec<UpdateStep>,
    /// Predictions, chronological.
    pub predictions: Vec<PredictionStep>,
}

impl UserSequencePlan {
    /// Number of sessions (updates) in the plan.
    pub fn num_updates(&self) -> usize {
        self.updates.len()
    }

    /// Number of predictions in the plan.
    pub fn num_predictions(&self) -> usize {
        self.predictions.len()
    }

    /// Retains only predictions whose day offset is at least
    /// `first_day_offset` (the paper trains on the last 21 days and
    /// evaluates on the last 7).
    pub fn retain_predictions_from_day(&mut self, first_day_offset: u32) {
        self.predictions
            .retain(|p| p.day_offset >= first_day_offset);
    }

    /// Checks the lag invariant: every prediction's `hidden_index` must not
    /// exceed the number of updates, and must only reference sessions whose
    /// timestamps are at least `delta` older than the prediction.
    pub fn validate_lag(&self, user: &UserHistory, delta: i64) -> Result<(), String> {
        for p in &self.predictions {
            if p.hidden_index > self.updates.len() {
                return Err(format!(
                    "prediction at {} references hidden index {} beyond {} updates",
                    p.timestamp,
                    p.hidden_index,
                    self.updates.len()
                ));
            }
            if p.hidden_index > 0 {
                let k_session = self.updates[p.hidden_index - 1].session_index;
                let t_k = user.sessions[k_session].timestamp;
                if t_k >= p.timestamp - delta {
                    return Err(format!(
                        "prediction at {} uses hidden state from session at {} violating δ = {}",
                        p.timestamp, t_k, delta
                    ));
                }
            }
            // The *next* update (if any) must not have been usable.
            if p.hidden_index < self.updates.len() {
                let next_session = self.updates[p.hidden_index].session_index;
                let t_next = user.sessions[next_session].timestamp;
                if t_next < p.timestamp - delta {
                    return Err(format!(
                        "prediction at {} could have used the newer hidden state from {}",
                        p.timestamp, t_next
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Builds the per-session plan for one user (Eq. 1–2 of the paper).
pub fn plan_per_session(
    user: &UserHistory,
    featurizer: &RnnFeaturizer,
    lag: LagConfig,
    dataset_start: i64,
) -> UserSequencePlan {
    let delta = lag.delta();
    let mut updates = Vec::with_capacity(user.sessions.len());
    let mut predictions = Vec::with_capacity(user.sessions.len());
    for (i, session) in user.sessions.iter().enumerate() {
        // Δt_i = t_i − t_{i−1} (0 for the first session).
        let delta_t = if i == 0 {
            0
        } else {
            session.timestamp - user.sessions[i - 1].timestamp
        };
        updates.push(UpdateStep {
            session_index: i,
            update_input: featurizer.update_input(
                session.timestamp,
                &session.context,
                delta_t,
                session.accessed,
            ),
        });

        // k = max index with t_k < t_i − δ (1-based count of usable updates).
        let k = user
            .sessions
            .partition_point(|s| s.timestamp < session.timestamp - delta);
        let elapsed = if k == 0 {
            0
        } else {
            session.timestamp - user.sessions[k - 1].timestamp
        };
        let day_offset = ((session.timestamp - dataset_start) / SECONDS_PER_DAY).max(0) as u32;
        predictions.push(PredictionStep {
            hidden_index: k,
            predict_input: featurizer.predict_input(session.timestamp, &session.context, elapsed),
            label: session.accessed,
            timestamp: session.timestamp,
            day_offset,
        });
    }
    UserSequencePlan {
        updates,
        predictions,
    }
}

/// Builds the timeshifted plan for one user (Eq. 3): one prediction per peak
/// window, made `lead_time_secs` before the window opens, using only hidden
/// states from sessions older than the prediction time minus δ.
pub fn plan_timeshift(
    user: &UserHistory,
    windows: &[PeakWindowExample],
    featurizer: &RnnFeaturizer,
    lag: LagConfig,
    lead_time_secs: i64,
    dataset_start: i64,
) -> UserSequencePlan {
    let delta = lag.delta();
    let mut updates = Vec::with_capacity(user.sessions.len());
    for (i, session) in user.sessions.iter().enumerate() {
        let delta_t = if i == 0 {
            0
        } else {
            session.timestamp - user.sessions[i - 1].timestamp
        };
        updates.push(UpdateStep {
            session_index: i,
            update_input: featurizer.update_input(
                session.timestamp,
                &session.context,
                delta_t,
                session.accessed,
            ),
        });
    }
    let mut predictions = Vec::new();
    for w in windows.iter().filter(|w| w.user_id == user.user_id) {
        let prediction_time = w.window_start - lead_time_secs;
        let k = user
            .sessions
            .partition_point(|s| s.timestamp < prediction_time - delta);
        let elapsed = if k == 0 {
            0
        } else {
            w.window_start - user.sessions[k - 1].timestamp
        };
        let day_offset = ((w.window_start - dataset_start) / SECONDS_PER_DAY).max(0) as u32;
        predictions.push(PredictionStep {
            hidden_index: k,
            predict_input: featurizer.timeshift_predict_input(elapsed),
            label: w.accessed_in_window,
            timestamp: w.window_start,
            day_offset,
        });
    }
    predictions.sort_by_key(|p| p.timestamp);
    UserSequencePlan {
        updates,
        predictions,
    }
}

/// Builds the timeshifted plans for every user of a Timeshift dataset.
///
/// # Panics
///
/// Panics if the dataset is not a Timeshift dataset.
pub fn plan_timeshift_dataset(
    dataset: &Dataset,
    featurizer: &RnnFeaturizer,
    lag: LagConfig,
    lead_time_secs: i64,
) -> Vec<UserSequencePlan> {
    let windows = build_peak_window_examples(dataset, lead_time_secs);
    dataset
        .users
        .iter()
        .map(|u| {
            plan_timeshift(
                u,
                &windows,
                featurizer,
                lag,
                lead_time_secs,
                dataset.start_timestamp,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{Context, Session, Tab, UserId};
    use pp_data::synth::{SyntheticGenerator, TimeshiftConfig, TimeshiftGenerator};

    fn user_with_gaps(gaps: &[i64]) -> UserHistory {
        // Sessions at cumulative offsets from t=100_000, alternating labels.
        let mut t = 100_000;
        let mut sessions = Vec::new();
        for (i, &g) in gaps.iter().enumerate() {
            t += g;
            sessions.push(Session {
                timestamp: t,
                context: Context::MobileTab {
                    unread_count: 1,
                    active_tab: Tab::Home,
                },
                accessed: i % 2 == 0,
            });
        }
        UserHistory::new(UserId(1), sessions)
    }

    fn featurizer() -> RnnFeaturizer {
        RnnFeaturizer::new(DatasetKind::MobileTab)
    }

    #[test]
    fn lag_defaults_match_paper() {
        let mt = LagConfig::for_kind(DatasetKind::MobileTab);
        assert_eq!(mt.session_length_secs, 1_200);
        assert_eq!(mt.delta(), 1_260);
        let mpu = LagConfig::for_kind(DatasetKind::Mpu);
        assert_eq!(mpu.session_length_secs, 600);
    }

    #[test]
    fn rapid_sessions_cannot_use_fresh_hidden_state() {
        // Three sessions 5 minutes apart: with δ = 21 minutes, the 2nd and
        // 3rd predictions must still use h_0 (Figure 2's t_3 < t_2 + δ case).
        let user = user_with_gaps(&[0, 300, 300]);
        let lag = LagConfig::for_kind(DatasetKind::MobileTab);
        let plan = plan_per_session(&user, &featurizer(), lag, 0);
        assert_eq!(plan.num_updates(), 3);
        assert_eq!(plan.predictions[0].hidden_index, 0);
        assert_eq!(plan.predictions[1].hidden_index, 0);
        assert_eq!(plan.predictions[2].hidden_index, 0);
        plan.validate_lag(&user, lag.delta()).unwrap();
    }

    #[test]
    fn well_spaced_sessions_use_previous_hidden_state() {
        // Sessions 2 hours apart: each prediction after the first can use the
        // immediately preceding hidden state.
        let user = user_with_gaps(&[0, 7_200, 7_200, 7_200]);
        let lag = LagConfig::for_kind(DatasetKind::MobileTab);
        let plan = plan_per_session(&user, &featurizer(), lag, 0);
        let ks: Vec<usize> = plan.predictions.iter().map(|p| p.hidden_index).collect();
        assert_eq!(ks, vec![0, 1, 2, 3]);
        plan.validate_lag(&user, lag.delta()).unwrap();
    }

    #[test]
    fn mixed_gaps_skip_unavailable_states() {
        // Gaps: 2h, 10min, 2h → the 3rd session (10 min after the 2nd) can
        // only use h_1; the 4th can use h_3.
        let user = user_with_gaps(&[0, 7_200, 600, 7_200]);
        let lag = LagConfig::for_kind(DatasetKind::MobileTab);
        let plan = plan_per_session(&user, &featurizer(), lag, 0);
        let ks: Vec<usize> = plan.predictions.iter().map(|p| p.hidden_index).collect();
        assert_eq!(ks, vec![0, 1, 1, 3]);
        plan.validate_lag(&user, lag.delta()).unwrap();
    }

    #[test]
    fn validate_lag_detects_violations() {
        let user = user_with_gaps(&[0, 7_200]);
        let lag = LagConfig::for_kind(DatasetKind::MobileTab);
        let mut plan = plan_per_session(&user, &featurizer(), lag, 0);
        // Corrupt the plan: give the second prediction access to h_2 (its own
        // session's update).
        plan.predictions[1].hidden_index = 2;
        assert!(plan.validate_lag(&user, lag.delta()).is_err());
    }

    #[test]
    fn day_filter_retains_recent_predictions_only() {
        let user = user_with_gaps(&[0, SECONDS_PER_DAY, SECONDS_PER_DAY, SECONDS_PER_DAY]);
        let lag = LagConfig::for_kind(DatasetKind::MobileTab);
        let mut plan = plan_per_session(&user, &featurizer(), lag, 0);
        assert_eq!(plan.num_predictions(), 4);
        let max_day = plan.predictions.iter().map(|p| p.day_offset).max().unwrap();
        plan.retain_predictions_from_day(max_day);
        assert_eq!(plan.num_predictions(), 1);
        // Updates are untouched: the hidden state still consumes all history.
        assert_eq!(plan.num_updates(), 4);
    }

    #[test]
    fn labels_and_inputs_match_sessions() {
        let user = user_with_gaps(&[0, 7_200, 7_200]);
        let lag = LagConfig::for_kind(DatasetKind::MobileTab);
        let f = featurizer();
        let plan = plan_per_session(&user, &f, lag, 0);
        for (i, p) in plan.predictions.iter().enumerate() {
            assert_eq!(p.label, user.sessions[i].accessed);
            assert_eq!(p.predict_input.len(), f.predict_input_dims());
        }
        for (i, u) in plan.updates.iter().enumerate() {
            assert_eq!(u.session_index, i);
            assert_eq!(u.update_input.len(), f.update_input_dims());
        }
    }

    #[test]
    fn timeshift_plan_covers_all_windows_and_respects_lag() {
        let ds = TimeshiftGenerator::new(TimeshiftConfig {
            num_users: 5,
            ..Default::default()
        })
        .generate();
        let f = RnnFeaturizer::new(DatasetKind::Timeshift);
        let lag = LagConfig::for_kind(DatasetKind::Timeshift);
        let plans = plan_timeshift_dataset(&ds, &f, lag, 6 * 3_600);
        assert_eq!(plans.len(), 5);
        for (user, plan) in ds.users.iter().zip(&plans) {
            assert_eq!(plan.num_predictions(), ds.num_days as usize);
            assert_eq!(plan.num_updates(), user.len());
            for p in &plan.predictions {
                assert_eq!(p.predict_input.len(), f.timeshift_predict_dims());
                // The hidden state must come from a session before the
                // prediction horizon minus δ.
                if p.hidden_index > 0 {
                    let t_k = user.sessions[p.hidden_index - 1].timestamp;
                    assert!(t_k < p.timestamp - 6 * 3_600 - lag.delta());
                }
            }
        }
    }
}
