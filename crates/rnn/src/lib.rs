//! # pp-rnn
//!
//! The paper's primary contribution: a recurrent (GRU) model for predictive
//! precompute that replaces all time-window aggregation features with a
//! single per-user hidden state.
//!
//! * [`model`] — the `RNN_update` / `RNN_predict` architecture of Figure 3,
//!   with the latent-cross interaction and MLP head, for both the
//!   per-session and timeshifted tasks;
//! * [`sequence`] — sequence planning with the update lag δ of §6.1
//!   (a prediction may only read hidden states that were computable before
//!   the session started);
//! * [`trainer`] — the §7 training recipe (Adam 1e-3, dropout 0.2, loss on
//!   the last 21 days, minibatches of 10 users with per-user parallel
//!   gradient accumulation, history truncation), plus forward-only
//!   evaluation utilities.
//!
//! # Examples
//!
//! ```
//! use pp_data::schema::DatasetKind;
//! use pp_data::synth::{MobileTabConfig, MobileTabGenerator, SyntheticGenerator};
//! use pp_rnn::{RnnModel, RnnModelConfig, RnnTrainer, TaskKind, TrainerConfig};
//!
//! let dataset = MobileTabGenerator::new(MobileTabConfig {
//!     num_users: 10,
//!     num_days: 5,
//!     ..Default::default()
//! })
//! .generate();
//! let mut model = RnnModel::new(
//!     DatasetKind::MobileTab,
//!     TaskKind::PerSession,
//!     RnnModelConfig::tiny(),
//!     0,
//! );
//! let trainer = RnnTrainer::new(TrainerConfig {
//!     epochs: 1,
//!     train_last_days: 5,
//!     parallel: false,
//!     ..Default::default()
//! });
//! let users: Vec<usize> = (0..dataset.users.len()).collect();
//! let report = trainer.train(&mut model, &dataset, &users);
//! assert!(report.total_predictions > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod sequence;
pub mod trainer;

pub use model::{RnnModel, RnnModelConfig, TaskKind};
pub use sequence::{LagConfig, UserSequencePlan};
pub use trainer::{
    scores_and_labels, LossTracePoint, RnnTrainer, ScoredPrediction, TrainerConfig, TrainingReport,
};
