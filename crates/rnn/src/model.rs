//! The paper's recurrent model (§6.2, Figure 3): a recurrent cell
//! (`RNN_update`) advancing a per-user hidden state, and a prediction head
//! (`RNN_predict`) combining the latest available hidden state with the
//! current context through a latent-cross interaction and a one-hidden-layer
//! MLP.
//!
//! The two halves are deliberately separate — the serving architecture (§9)
//! runs them in different places: `RNN_predict` at session start on the
//! request path, `RNN_update` asynchronously once the session outcome is
//! known.

use pp_data::schema::DatasetKind;
use pp_features::rnn_input::RnnFeaturizer;
use pp_nn::graph::{stable_sigmoid, Graph, NodeId};
use pp_nn::layers::{CellKind, Dropout, GruCell, Linear, LstmCell, TanhCell};
use pp_nn::params::ParamStore;
use pp_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which prediction task the model is built for. The update path is
/// identical; the prediction input differs (§3.2.1 / Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Predict an access within the session that is starting now
    /// (MobileTab, MPU).
    PerSession,
    /// Predict an access within an upcoming peak window using history alone
    /// (Timeshift).
    Timeshifted,
}

/// Hyper-parameters of the recurrent model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RnnModelConfig {
    /// Recurrent cell type (§6.2 evaluates tanh, GRU, LSTM; GRU wins).
    pub cell: CellKind,
    /// Hidden-state dimensionality (paper: 128).
    pub hidden_dim: usize,
    /// Width of the MLP hidden layer (paper: 128).
    pub mlp_width: usize,
    /// Dropout probability inside the MLP (paper: 0.2).
    pub dropout: f32,
    /// Whether to apply the latent-cross interaction
    /// `h' = h ⊙ (1 + L(f))` before the MLP (paper §6.2).
    pub latent_cross: bool,
}

impl Default for RnnModelConfig {
    fn default() -> Self {
        Self {
            cell: CellKind::Gru,
            hidden_dim: 128,
            mlp_width: 128,
            dropout: 0.2,
            latent_cross: true,
        }
    }
}

impl RnnModelConfig {
    /// A small configuration suitable for unit tests and quick examples.
    pub fn tiny() -> Self {
        Self {
            hidden_dim: 16,
            mlp_width: 16,
            ..Default::default()
        }
    }
}

/// Internal enum holding the chosen recurrent cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Cell {
    Tanh(TanhCell),
    Gru(GruCell),
    Lstm(LstmCell),
}

/// The recurrent predictive-precompute model.
///
/// The model owns its [`ParamStore`]; training code reads and writes the
/// store through [`RnnModel::params`] / [`RnnModel::params_mut`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnnModel {
    params: ParamStore,
    cell: Cell,
    latent: Option<Linear>,
    mlp_hidden: Linear,
    mlp_out: Linear,
    dropout: Dropout,
    config: RnnModelConfig,
    kind: DatasetKind,
    task: TaskKind,
    featurizer: RnnFeaturizer,
}

impl RnnModel {
    /// Builds a model for a dataset family and task with freshly initialized
    /// parameters.
    pub fn new(kind: DatasetKind, task: TaskKind, config: RnnModelConfig, seed: u64) -> Self {
        let featurizer = RnnFeaturizer::new(kind);
        let update_dims = featurizer.update_input_dims();
        let predict_dims = match task {
            TaskKind::PerSession => featurizer.predict_input_dims(),
            TaskKind::Timeshifted => featurizer.timeshift_predict_dims(),
        };
        let mut params = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = match config.cell {
            CellKind::Tanh => Cell::Tanh(TanhCell::new(
                "cell",
                update_dims,
                config.hidden_dim,
                &mut params,
                &mut rng,
            )),
            CellKind::Gru => Cell::Gru(GruCell::new(
                "cell",
                update_dims,
                config.hidden_dim,
                &mut params,
                &mut rng,
            )),
            CellKind::Lstm => Cell::Lstm(LstmCell::new(
                "cell",
                update_dims,
                config.hidden_dim,
                &mut params,
                &mut rng,
            )),
        };
        let latent = config.latent_cross.then(|| {
            Linear::new(
                "latent_cross",
                predict_dims,
                config.hidden_dim,
                &mut params,
                &mut rng,
            )
        });
        let mlp_hidden = Linear::new(
            "mlp.hidden",
            config.hidden_dim + predict_dims,
            config.mlp_width,
            &mut params,
            &mut rng,
        );
        let mlp_out = Linear::new("mlp.out", config.mlp_width, 1, &mut params, &mut rng);
        let dropout = Dropout::new(config.dropout);
        Self {
            params,
            cell,
            latent,
            mlp_hidden,
            mlp_out,
            dropout,
            config,
            kind,
            task,
            featurizer,
        }
    }

    /// The model's hyper-parameters.
    pub fn config(&self) -> RnnModelConfig {
        self.config
    }

    /// Dataset family the model was built for.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Prediction task the model was built for.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The featurizer producing this model's inputs.
    pub fn featurizer(&self) -> &RnnFeaturizer {
        &self.featurizer
    }

    /// Immutable access to the parameter store.
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable access to the parameter store (used by optimizers).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Dimensionality of the *stored* per-user state: `hidden_dim` for
    /// tanh/GRU cells, `2 × hidden_dim` for LSTM (hidden + cell state).
    pub fn state_dim(&self) -> usize {
        match &self.cell {
            Cell::Lstm(_) => 2 * self.config.hidden_dim,
            _ => self.config.hidden_dim,
        }
    }

    /// Size in bytes of one stored hidden state (`f32` per dimension) —
    /// 512 bytes for the paper's 128-dimensional GRU.
    pub fn state_bytes(&self) -> usize {
        self.state_dim() * std::mem::size_of::<f32>()
    }

    /// The all-zero initial state `h_0`.
    pub fn initial_state(&self) -> Vec<f32> {
        vec![0.0; self.state_dim()]
    }

    /// Dimensionality of the prediction input vector.
    pub fn predict_input_dims(&self) -> usize {
        match self.task {
            TaskKind::PerSession => self.featurizer.predict_input_dims(),
            TaskKind::Timeshifted => self.featurizer.timeshift_predict_dims(),
        }
    }

    /// Dimensionality of the update input vector.
    pub fn update_input_dims(&self) -> usize {
        self.featurizer.update_input_dims()
    }

    /// Builds the `RNN_update` step in an autograd graph: consumes the state
    /// node and an update-input node, returns the next state node.
    pub fn update_node(&self, graph: &mut Graph, state: NodeId, update_input: NodeId) -> NodeId {
        match &self.cell {
            Cell::Tanh(c) => c.forward(graph, &self.params, update_input, state),
            Cell::Gru(c) => c.forward(graph, &self.params, update_input, state),
            Cell::Lstm(c) => c.forward(graph, &self.params, update_input, state),
        }
    }

    /// Builds the `RNN_predict` head in an autograd graph, returning the
    /// *logit* node (apply a sigmoid for the probability). `training`
    /// controls dropout.
    pub fn predict_logit_node<R: Rng + ?Sized>(
        &self,
        graph: &mut Graph,
        state: NodeId,
        predict_input: NodeId,
        training: bool,
        rng: &mut R,
    ) -> NodeId {
        // For LSTM, only the hidden half of the state feeds the head.
        let h = match &self.cell {
            Cell::Lstm(_) => graph.slice_cols(state, 0, self.config.hidden_dim),
            _ => state,
        };
        let crossed = if let Some(latent) = &self.latent {
            // h' = h ⊙ (1 + L(f))
            let l = latent.forward(graph, &self.params, predict_input);
            let one_plus = graph.add_scalar(l, 1.0);
            graph.mul(h, one_plus)
        } else {
            h
        };
        let joined = graph.concat_cols(crossed, predict_input);
        let hidden = self.mlp_hidden.forward(graph, &self.params, joined);
        let dropped = self.dropout.forward(graph, hidden, training, rng);
        let activated = graph.relu(dropped);
        self.mlp_out.forward(graph, &self.params, activated)
    }

    /// Inference: advances a stored state given an update input, without
    /// building gradients.
    ///
    /// # Panics
    ///
    /// Panics if the input lengths do not match the model.
    pub fn advance_state(&self, state: &[f32], update_input: &[f32]) -> Vec<f32> {
        assert_eq!(state.len(), self.state_dim(), "state length mismatch");
        assert_eq!(
            update_input.len(),
            self.update_input_dims(),
            "update input length mismatch"
        );
        let mut graph = Graph::new();
        let s = graph.constant(Tensor::from_row(state));
        let x = graph.constant(Tensor::from_row(update_input));
        let next = self.update_node(&mut graph, s, x);
        graph.value(next).as_slice().to_vec()
    }

    /// Inference: predicted access probability from a stored state and a
    /// prediction input, without building gradients (dropout disabled).
    ///
    /// # Panics
    ///
    /// Panics if the input lengths do not match the model.
    pub fn predict_proba(&self, state: &[f32], predict_input: &[f32]) -> f64 {
        assert_eq!(state.len(), self.state_dim(), "state length mismatch");
        assert_eq!(
            predict_input.len(),
            self.predict_input_dims(),
            "predict input length mismatch"
        );
        let mut graph = Graph::new();
        let s = graph.constant(Tensor::from_row(state));
        let x = graph.constant(Tensor::from_row(predict_input));
        // Dropout disabled ⇒ the RNG is never used.
        let mut rng = StdRng::seed_from_u64(0);
        let logit = self.predict_logit_node(&mut graph, s, x, false, &mut rng);
        stable_sigmoid(graph.value(logit).at(0, 0)) as f64
    }

    /// Inference-only update step over a whole batch tensor (no autograd
    /// tape, no weight copies).
    fn update_infer(&self, state: &Tensor, update_input: &Tensor) -> Tensor {
        match &self.cell {
            Cell::Tanh(c) => c.forward_infer(&self.params, update_input, state),
            Cell::Gru(c) => c.forward_infer(&self.params, update_input, state),
            Cell::Lstm(c) => c.forward_infer(&self.params, update_input, state),
        }
    }

    /// Inference-only prediction head over a whole batch tensor, returning
    /// per-row logits (dropout disabled).
    fn predict_logit_infer(&self, state: &Tensor, predict_input: &Tensor) -> Tensor {
        let h = match &self.cell {
            Cell::Lstm(_) => state.slice_cols(0, self.config.hidden_dim),
            _ => state.clone(),
        };
        let crossed = if let Some(latent) = &self.latent {
            // h' = h ⊙ (1 + L(f))
            let one_plus = latent
                .forward_infer(&self.params, predict_input)
                .map(|v| v + 1.0);
            h.mul(&one_plus)
        } else {
            h
        };
        let joined = crossed.concat_cols(predict_input);
        let activated = self
            .mlp_hidden
            .forward_infer(&self.params, &joined)
            .map(|v| v.max(0.0));
        self.mlp_out.forward_infer(&self.params, &activated)
    }

    /// Batched inference: advances `states.len()` stored states in one
    /// graph-free forward pass — one `B × d` matmul per gate instead of `B`
    /// separate `1 × d` matmuls, with no autograd tape and no per-call
    /// copies of the weight matrices. Row `i` of the result equals
    /// `advance_state(&states[i], &update_inputs[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or any row has the wrong
    /// dimensionality.
    pub fn advance_state_batch<S, U>(&self, states: &[S], update_inputs: &[U]) -> Vec<Vec<f32>>
    where
        S: AsRef<[f32]>,
        U: AsRef<[f32]>,
    {
        assert_eq!(
            states.len(),
            update_inputs.len(),
            "advance_state_batch: {} states but {} update inputs",
            states.len(),
            update_inputs.len()
        );
        if states.is_empty() {
            return Vec::new();
        }
        let state_rows: Vec<&[f32]> = states.iter().map(std::convert::AsRef::as_ref).collect();
        let input_rows: Vec<&[f32]> = update_inputs
            .iter()
            .map(std::convert::AsRef::as_ref)
            .collect();
        for row in &state_rows {
            assert_eq!(row.len(), self.state_dim(), "state length mismatch");
        }
        for row in &input_rows {
            assert_eq!(
                row.len(),
                self.update_input_dims(),
                "update input length mismatch"
            );
        }
        let s = Tensor::from_rows(&state_rows);
        let x = Tensor::from_rows(&input_rows);
        self.update_infer(&s, &x)
            .iter_rows()
            .map(<[f32]>::to_vec)
            .collect()
    }

    /// Batched inference: serves `states.len()` predictions through one
    /// graph-free forward pass (dropout disabled). Element `i` of the result
    /// equals `predict_proba(&states[i], &predict_inputs[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or any row has the wrong
    /// dimensionality.
    pub fn predict_proba_batch<S, P>(&self, states: &[S], predict_inputs: &[P]) -> Vec<f64>
    where
        S: AsRef<[f32]>,
        P: AsRef<[f32]>,
    {
        assert_eq!(
            states.len(),
            predict_inputs.len(),
            "predict_proba_batch: {} states but {} predict inputs",
            states.len(),
            predict_inputs.len()
        );
        if states.is_empty() {
            return Vec::new();
        }
        let state_rows: Vec<&[f32]> = states.iter().map(std::convert::AsRef::as_ref).collect();
        let input_rows: Vec<&[f32]> = predict_inputs
            .iter()
            .map(std::convert::AsRef::as_ref)
            .collect();
        for row in &state_rows {
            assert_eq!(row.len(), self.state_dim(), "state length mismatch");
        }
        for row in &input_rows {
            assert_eq!(
                row.len(),
                self.predict_input_dims(),
                "predict input length mismatch"
            );
        }
        let s = Tensor::from_rows(&state_rows);
        let x = Tensor::from_rows(&input_rows);
        let out = self.predict_logit_infer(&s, &x);
        (0..out.rows())
            .map(|r| stable_sigmoid(out.at(r, 0)) as f64)
            .collect()
    }

    /// Approximate FLOPs of one `RNN_update` call (one session), used by the
    /// serving cost model.
    pub fn update_flops(&self) -> u64 {
        match &self.cell {
            Cell::Tanh(c) => c.flops(),
            Cell::Gru(c) => c.flops(),
            Cell::Lstm(c) => c.flops(),
        }
    }

    /// Approximate FLOPs of one `RNN_predict` call (one prediction).
    pub fn predict_flops(&self) -> u64 {
        let mut flops = self.mlp_hidden.flops() + self.mlp_out.flops();
        if let Some(latent) = &self.latent {
            flops += latent.flops() + 2 * self.config.hidden_dim as u64;
        }
        flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{Context, Tab};

    fn model(cell: CellKind) -> RnnModel {
        RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig {
                cell,
                ..RnnModelConfig::tiny()
            },
            7,
        )
    }

    fn ctx() -> Context {
        Context::MobileTab {
            unread_count: 3,
            active_tab: Tab::Home,
        }
    }

    #[test]
    fn dimensions_are_consistent() {
        let m = model(CellKind::Gru);
        assert_eq!(m.state_dim(), 16);
        assert_eq!(m.state_bytes(), 64);
        assert_eq!(m.initial_state().len(), 16);
        assert_eq!(m.predict_input_dims(), m.featurizer().predict_input_dims());
        assert_eq!(m.update_input_dims(), m.featurizer().update_input_dims());
        assert!(m.num_parameters() > 1_000);
        // Paper-scale model: 128-dim hidden state is 512 bytes.
        let full = RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::default(),
            0,
        );
        assert_eq!(full.state_bytes(), 512);
    }

    #[test]
    fn lstm_state_is_twice_hidden() {
        let m = model(CellKind::Lstm);
        assert_eq!(m.state_dim(), 32);
    }

    #[test]
    fn advance_state_changes_state_and_is_deterministic() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let update = f.update_input(1_000, &ctx(), 600, true);
        let h0 = m.initial_state();
        let h1 = m.advance_state(&h0, &update);
        let h1b = m.advance_state(&h0, &update);
        assert_eq!(h1, h1b);
        assert_ne!(h0, h1);
        assert_eq!(h1.len(), m.state_dim());
        assert!(h1.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn access_flag_influences_the_next_state() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let h0 = m.initial_state();
        let with_access = m.advance_state(&h0, &f.update_input(1_000, &ctx(), 600, true));
        let without_access = m.advance_state(&h0, &f.update_input(1_000, &ctx(), 600, false));
        assert_ne!(with_access, without_access);
    }

    #[test]
    fn predict_proba_in_unit_interval_for_all_cells() {
        for cell in [CellKind::Tanh, CellKind::Gru, CellKind::Lstm] {
            let m = model(cell);
            let f = m.featurizer();
            let h = m.initial_state();
            let p = m.predict_proba(&h, &f.predict_input(2_000, &ctx(), 1_000));
            assert!((0.0..=1.0).contains(&p), "cell {cell}: p = {p}");
        }
    }

    #[test]
    fn prediction_depends_on_hidden_state() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let predict_input = f.predict_input(5_000, &ctx(), 1_000);
        let h0 = m.initial_state();
        let mut h = h0.clone();
        for i in 0..5 {
            h = m.advance_state(&h, &f.update_input(1_000 * i, &ctx(), 600, true));
        }
        let p_cold = m.predict_proba(&h0, &predict_input);
        let p_warm = m.predict_proba(&h, &predict_input);
        assert_ne!(p_cold, p_warm);
    }

    #[test]
    fn timeshifted_task_uses_smaller_predict_input() {
        let m = RnnModel::new(
            DatasetKind::Timeshift,
            TaskKind::Timeshifted,
            RnnModelConfig::tiny(),
            0,
        );
        assert_eq!(
            m.predict_input_dims(),
            m.featurizer().timeshift_predict_dims()
        );
        let p = m.predict_proba(
            &m.initial_state(),
            &m.featurizer().timeshift_predict_input(3_600),
        );
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn latent_cross_changes_the_architecture() {
        let base = RnnModelConfig::tiny();
        let without = RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig {
                latent_cross: false,
                ..base
            },
            3,
        );
        let with = RnnModel::new(DatasetKind::MobileTab, TaskKind::PerSession, base, 3);
        assert!(with.num_parameters() > without.num_parameters());
        assert!(with.predict_flops() > without.predict_flops());
    }

    #[test]
    fn flop_counts_positive_and_scale_with_hidden_dim() {
        let small = model(CellKind::Gru);
        let large = RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::default(),
            0,
        );
        assert!(small.update_flops() > 0);
        assert!(large.update_flops() > small.update_flops());
        assert!(large.predict_flops() > small.predict_flops());
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn wrong_state_length_panics() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let _ = m.predict_proba(&[0.0; 3], &f.predict_input(0, &ctx(), 0));
    }

    #[test]
    fn batched_paths_match_single_request_paths() {
        for cell in [CellKind::Tanh, CellKind::Gru, CellKind::Lstm] {
            let m = model(cell);
            let f = m.featurizer();
            // Build a few distinct per-user states by advancing from h_0.
            let mut states: Vec<Vec<f32>> = Vec::new();
            let mut predict_inputs: Vec<Vec<f32>> = Vec::new();
            let mut update_inputs: Vec<Vec<f32>> = Vec::new();
            for i in 0..7i64 {
                let mut h = m.initial_state();
                for step in 0..i {
                    h = m
                        .advance_state(&h, &f.update_input(600 * step, &ctx(), 300, step % 2 == 0));
                }
                states.push(h);
                predict_inputs.push(f.predict_input(10_000 + i, &ctx(), 60 * i));
                update_inputs.push(f.update_input(10_000 + i, &ctx(), 60 * i, i % 2 == 1));
            }
            let batch_probs = m.predict_proba_batch(&states, &predict_inputs);
            let batch_states = m.advance_state_batch(&states, &update_inputs);
            for i in 0..states.len() {
                let single_p = m.predict_proba(&states[i], &predict_inputs[i]);
                assert!(
                    (batch_probs[i] - single_p).abs() < 1e-6,
                    "cell {cell}, row {i}: batch {} vs single {}",
                    batch_probs[i],
                    single_p
                );
                let single_h = m.advance_state(&states[i], &update_inputs[i]);
                for (a, b) in batch_states[i].iter().zip(&single_h) {
                    assert!((a - b).abs() < 1e-6, "cell {cell}, row {i}: state drift");
                }
            }
        }
    }

    #[test]
    fn batch_of_one_and_empty_batch() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let h = m.initial_state();
        let p = f.predict_input(1_000, &ctx(), 100);
        let probs = m.predict_proba_batch(std::slice::from_ref(&h), std::slice::from_ref(&p));
        assert_eq!(probs.len(), 1);
        assert!((probs[0] - m.predict_proba(&h, &p)).abs() < 1e-9);
        let empty: Vec<Vec<f32>> = Vec::new();
        assert!(m.predict_proba_batch(&empty, &empty).is_empty());
        assert!(m.advance_state_batch(&empty, &empty).is_empty());
    }

    #[test]
    #[should_panic(expected = "predict_proba_batch")]
    fn batch_length_mismatch_panics() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let h = m.initial_state();
        let p = f.predict_input(1_000, &ctx(), 100);
        let _ = m.predict_proba_batch(&[h.clone(), h], &[p]);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let m = model(CellKind::Gru);
        let f = m.featurizer();
        let json = serde_json::to_string(&m).unwrap();
        let back: RnnModel = serde_json::from_str(&json).unwrap();
        let h = m.initial_state();
        let input = f.predict_input(2_000, &ctx(), 500);
        assert!((m.predict_proba(&h, &input) - back.predict_proba(&h, &input)).abs() < 1e-6);
    }
}
