//! Training and evaluation loops for the recurrent model (paper §7).
//!
//! The paper's recipe, reproduced here:
//!
//! * Adam with learning rate `1e-3`, dropout 0.2 inside the MLP;
//! * the loss is the average log loss over the predictions of the **last 21
//!   days** only (earlier predictions have too little history and
//!   over-weight cold-start errors);
//! * minibatches of 10 users, each user's sequence evaluated independently
//!   and gradients accumulated — optionally on separate threads, which is
//!   the paper's alternative to padded batching (§7.1, "models train twice
//!   as quickly with this approach");
//! * user histories truncated to the most recent 10,000 sessions.

use crate::model::{RnnModel, TaskKind};
use crate::sequence::{plan_per_session, plan_timeshift, LagConfig, UserSequencePlan};
use pp_data::schema::{Dataset, UserHistory};
use pp_data::synth::build_peak_window_examples;
use pp_nn::graph::{stable_sigmoid, Graph, NodeId};
use pp_nn::optim::{Adam, AdamConfig, Optimizer};
use pp_nn::params::GradStore;
use pp_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training users (paper: 1 for the large
    /// datasets, 8 for MPU).
    pub epochs: usize,
    /// Users per minibatch (paper: 10).
    pub minibatch_users: usize,
    /// Adam learning rate (paper: 1e-3).
    pub learning_rate: f32,
    /// Only predictions from the last `train_last_days` days contribute to
    /// the loss (paper: 21).
    pub train_last_days: u32,
    /// Truncate each user's history to this many most recent sessions
    /// (paper: 10,000 for MPU).
    pub max_history_sessions: usize,
    /// Evaluate minibatch users on separate threads (paper §7.1).
    pub parallel: bool,
    /// Global gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
    /// RNG seed (dropout masks, user shuffling).
    pub seed: u64,
    /// Lead time before the peak window for the timeshifted task.
    pub lead_time_secs: i64,
    /// Update-lag configuration; `None` selects the paper default for the
    /// dataset kind.
    pub lag: Option<LagConfig>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 1,
            minibatch_users: 10,
            learning_rate: 1e-3,
            train_last_days: 21,
            max_history_sessions: 10_000,
            parallel: true,
            grad_clip: 5.0,
            seed: 0,
            lead_time_secs: 6 * 3_600,
            lag: None,
        }
    }
}

impl TrainerConfig {
    /// A preset for training a model *inside* a running simulation or
    /// benchmark on a seeded warmup split: a couple of epochs over small
    /// parallel minibatches — enough for informative scores in seconds, not
    /// a paper-scale fit. Deterministic for a given `seed`.
    pub fn warmup(seed: u64) -> Self {
        Self {
            epochs: 2,
            minibatch_users: 8,
            seed,
            ..Self::default()
        }
    }
}

/// One point of the training-loss curve (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossTracePoint {
    /// Total number of sessions processed so far (across epochs).
    pub sessions_processed: u64,
    /// Epoch this point belongs to (0-based).
    pub epoch: usize,
    /// Mean training log loss over the minibatch.
    pub log_loss: f64,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Minibatch-level loss curve (Figure 4).
    pub loss_trace: Vec<LossTracePoint>,
    /// Total prediction/label pairs that contributed to the loss.
    pub total_predictions: u64,
    /// Total sessions processed (hidden-state updates), across epochs.
    pub total_sessions: u64,
    /// Number of epochs run.
    pub epochs: usize,
    /// Wall-clock training time in seconds.
    pub wall_time_secs: f64,
}

/// A single scored prediction produced by evaluation, with enough metadata
/// to slice metrics by day (Figure 7) or by user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredPrediction {
    /// Index of the user in the dataset.
    pub user_index: usize,
    /// Day offset relative to the dataset start.
    pub day_offset: u32,
    /// Predicted access probability.
    pub score: f64,
    /// Ground-truth label.
    pub label: bool,
}

/// Trainer for [`RnnModel`]s.
#[derive(Debug, Clone, Copy)]
pub struct RnnTrainer {
    config: TrainerConfig,
}

impl RnnTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> TrainerConfig {
        self.config
    }

    fn lag_for(&self, model: &RnnModel) -> LagConfig {
        self.config
            .lag
            .unwrap_or_else(|| LagConfig::for_kind(model.kind()))
    }

    /// Builds the (possibly truncated) sequence plan for one user.
    fn plan_user(
        &self,
        model: &RnnModel,
        dataset: &Dataset,
        user: &UserHistory,
        windows: Option<&[pp_data::synth::PeakWindowExample]>,
    ) -> UserSequencePlan {
        let lag = self.lag_for(model);
        let mut truncated;
        let user_ref = if user.len() > self.config.max_history_sessions {
            truncated = user.clone();
            truncated.truncate_to_recent(self.config.max_history_sessions);
            &truncated
        } else {
            user
        };
        match model.task() {
            TaskKind::PerSession => {
                plan_per_session(user_ref, model.featurizer(), lag, dataset.start_timestamp)
            }
            TaskKind::Timeshifted => plan_timeshift(
                user_ref,
                windows.expect("timeshift task requires peak windows"),
                model.featurizer(),
                lag,
                self.config.lead_time_secs,
                dataset.start_timestamp,
            ),
        }
    }

    fn windows_for(
        &self,
        model: &RnnModel,
        dataset: &Dataset,
    ) -> Option<Vec<pp_data::synth::PeakWindowExample>> {
        match model.task() {
            TaskKind::PerSession => None,
            TaskKind::Timeshifted => Some(build_peak_window_examples(
                dataset,
                self.config.lead_time_secs,
            )),
        }
    }

    /// Trains the model in place on the given users and returns a report.
    ///
    /// # Panics
    ///
    /// Panics if `train_user_indices` is empty.
    pub fn train(
        &self,
        model: &mut RnnModel,
        dataset: &Dataset,
        train_user_indices: &[usize],
    ) -> TrainingReport {
        assert!(
            !train_user_indices.is_empty(),
            "cannot train on an empty user set"
        );
        let start = Instant::now();
        let windows = self.windows_for(model, dataset);
        let first_train_day = dataset.num_days.saturating_sub(self.config.train_last_days);
        let mut adam = Adam::new(
            model.params(),
            AdamConfig {
                lr: self.config.learning_rate,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = train_user_indices.to_vec();
        let mut loss_trace = Vec::new();
        let mut total_predictions = 0u64;
        let mut total_sessions = 0u64;

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.config.minibatch_users.max(1)) {
                // Build plans for the minibatch.
                let plans: Vec<(usize, UserSequencePlan)> = batch
                    .iter()
                    .map(|&ui| {
                        let mut plan =
                            self.plan_user(model, dataset, &dataset.users[ui], windows.as_deref());
                        plan.retain_predictions_from_day(first_train_day);
                        (ui, plan)
                    })
                    .collect();

                let batch_sessions: u64 = plans.iter().map(|(_, p)| p.num_updates() as u64).sum();
                let batch_predictions: u64 =
                    plans.iter().map(|(_, p)| p.num_predictions() as u64).sum();
                total_sessions += batch_sessions;
                if batch_predictions == 0 {
                    continue;
                }
                total_predictions += batch_predictions;

                // Per-user gradient computation (optionally on threads).
                let results = if self.config.parallel && plans.len() > 1 {
                    run_users_parallel(model, &plans, self.config.seed, epoch)
                } else {
                    plans
                        .iter()
                        .map(|(ui, plan)| user_gradients(model, plan, self.config.seed, epoch, *ui))
                        .collect()
                };

                // Merge in deterministic (user) order and average over the
                // number of prediction/label pairs in the minibatch.
                let mut grads = model.params().zero_grads();
                let mut loss_sum = 0.0f64;
                for r in &results {
                    grads.merge(&r.grads);
                    loss_sum += r.loss_sum;
                }
                grads.scale(1.0 / batch_predictions as f32);
                if self.config.grad_clip > 0.0 {
                    grads.clip_global_norm(self.config.grad_clip);
                }
                adam.step(model.params_mut(), &grads);
                loss_trace.push(LossTracePoint {
                    sessions_processed: total_sessions,
                    epoch,
                    log_loss: loss_sum / batch_predictions as f64,
                });
            }
        }
        TrainingReport {
            loss_trace,
            total_predictions,
            total_sessions,
            epochs: self.config.epochs,
            wall_time_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Forward-only evaluation: scores every retained prediction of the
    /// given users. `last_days = Some(7)` reproduces the paper's offline
    /// evaluation window; `None` scores every prediction.
    pub fn evaluate(
        &self,
        model: &RnnModel,
        dataset: &Dataset,
        user_indices: &[usize],
        last_days: Option<u32>,
    ) -> Vec<ScoredPrediction> {
        let windows = self.windows_for(model, dataset);
        let first_day = last_days.map(|d| dataset.num_days.saturating_sub(d));
        let mut out = Vec::new();
        for &ui in user_indices {
            let mut plan = self.plan_user(model, dataset, &dataset.users[ui], windows.as_deref());
            if let Some(first) = first_day {
                plan.retain_predictions_from_day(first);
            }
            score_user_plan(model, &plan, ui, &mut out);
        }
        out
    }
}

/// Result of one user's backward pass.
struct UserGradients {
    grads: GradStore,
    /// Sum (not mean) of the per-prediction log losses.
    loss_sum: f64,
}

/// Builds one user's full BPTT graph and returns the gradients of the
/// *summed* loss over the user's retained predictions.
fn user_gradients(
    model: &RnnModel,
    plan: &UserSequencePlan,
    seed: u64,
    epoch: usize,
    user_index: usize,
) -> UserGradients {
    let mut graph = Graph::new();
    // Deterministic per-(user, epoch) dropout stream so that parallel and
    // sequential execution produce identical gradients.
    let mut rng = StdRng::seed_from_u64(
        seed ^ (user_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (epoch as u64) << 32,
    );

    // Hidden-state chain: h_0 = 0, h_i = update(h_{i-1}, x_i).
    let mut hidden_nodes: Vec<NodeId> = Vec::with_capacity(plan.num_updates() + 1);
    hidden_nodes.push(graph.constant(Tensor::zeros(1, model.state_dim())));
    // Only build updates up to the last one any prediction needs; later
    // updates cannot influence the loss.
    let max_needed = plan
        .predictions
        .iter()
        .map(|p| p.hidden_index)
        .max()
        .unwrap_or(0);
    for step in plan.updates.iter().take(max_needed) {
        let x = graph.constant(Tensor::from_row(&step.update_input));
        let prev = *hidden_nodes.last().expect("h_0 exists");
        let next = model.update_node(&mut graph, prev, x);
        hidden_nodes.push(next);
    }

    let mut loss_sum_node: Option<NodeId> = None;
    for p in &plan.predictions {
        let x = graph.constant(Tensor::from_row(&p.predict_input));
        let h = hidden_nodes[p.hidden_index];
        let logit = model.predict_logit_node(&mut graph, h, x, true, &mut rng);
        let target = Tensor::from_row(&[p.label as u8 as f32]);
        let loss = graph.bce_with_logits(logit, target, None);
        loss_sum_node = Some(match loss_sum_node {
            Some(acc) => graph.add(acc, loss),
            None => loss,
        });
    }

    let mut grads = model.params().zero_grads();
    let mut loss_sum = 0.0f64;
    if let Some(loss_node) = loss_sum_node {
        loss_sum = graph.value(loss_node).at(0, 0) as f64;
        graph.backward(loss_node);
        graph.param_grads_into(&mut grads);
    }
    UserGradients { grads, loss_sum }
}

/// Runs [`user_gradients`] for each user of a minibatch on its own thread
/// (paper §7.1's alternative to padded batching). Results are returned in
/// the input order so that gradient merging stays deterministic.
fn run_users_parallel(
    model: &RnnModel,
    plans: &[(usize, UserSequencePlan)],
    seed: u64,
    epoch: usize,
) -> Vec<UserGradients> {
    let mut results: Vec<Option<UserGradients>> = Vec::new();
    results.resize_with(plans.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(plans.len());
        for (slot, (ui, plan)) in results.iter_mut().zip(plans.iter()) {
            let ui = *ui;
            handles.push(scope.spawn(move || {
                *slot = Some(user_gradients(model, plan, seed, epoch, ui));
            }));
        }
        for h in handles {
            h.join().expect("worker thread panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every user produced gradients"))
        .collect()
}

/// Scores a user's plan forward-only (no gradients, dropout off).
fn score_user_plan(
    model: &RnnModel,
    plan: &UserSequencePlan,
    user_index: usize,
    out: &mut Vec<ScoredPrediction>,
) {
    if plan.predictions.is_empty() {
        return;
    }
    let max_needed = plan
        .predictions
        .iter()
        .map(|p| p.hidden_index)
        .max()
        .unwrap_or(0);
    // Materialize the hidden states the predictions need.
    let mut states: Vec<Vec<f32>> = Vec::with_capacity(max_needed + 1);
    states.push(model.initial_state());
    for step in plan.updates.iter().take(max_needed) {
        let next = model.advance_state(states.last().expect("h_0"), &step.update_input);
        states.push(next);
    }
    for p in &plan.predictions {
        let score = model.predict_proba(&states[p.hidden_index], &p.predict_input);
        out.push(ScoredPrediction {
            user_index,
            day_offset: p.day_offset,
            score,
            label: p.label,
        });
    }
}

/// Splits scored predictions into `(scores, labels)` vectors for the metrics
/// crate.
pub fn scores_and_labels(predictions: &[ScoredPrediction]) -> (Vec<f64>, Vec<bool>) {
    (
        predictions.iter().map(|p| p.score).collect(),
        predictions.iter().map(|p| p.label).collect(),
    )
}

/// Convenience for tests and docs: `sigmoid` of a logit.
pub fn logit_to_probability(logit: f32) -> f64 {
    stable_sigmoid(logit) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RnnModelConfig;
    use pp_data::schema::DatasetKind;
    use pp_data::synth::{
        MobileTabConfig, MobileTabGenerator, SyntheticGenerator, TimeshiftConfig,
        TimeshiftGenerator,
    };
    use pp_metrics::pr::pr_auc;

    fn tiny_dataset(users: usize) -> Dataset {
        MobileTabGenerator::new(MobileTabConfig {
            num_users: users,
            num_days: 10,
            ..Default::default()
        })
        .generate()
    }

    fn tiny_trainer(parallel: bool) -> RnnTrainer {
        RnnTrainer::new(TrainerConfig {
            epochs: 1,
            minibatch_users: 4,
            train_last_days: 8,
            parallel,
            ..Default::default()
        })
    }

    fn tiny_model() -> RnnModel {
        RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            1,
        )
    }

    #[test]
    fn training_reduces_loss_on_a_small_dataset() {
        let ds = tiny_dataset(24);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let mut model = tiny_model();
        let trainer = RnnTrainer::new(TrainerConfig {
            epochs: 3,
            minibatch_users: 6,
            train_last_days: 8,
            parallel: false,
            ..Default::default()
        });
        let report = trainer.train(&mut model, &ds, &idx);
        assert!(report.total_predictions > 0);
        assert!(!report.loss_trace.is_empty());
        // Average loss over the first quarter of minibatches should exceed
        // that of the last quarter (the model is learning).
        let n = report.loss_trace.len();
        let quarter = (n / 4).max(1);
        let early: f64 = report.loss_trace[..quarter]
            .iter()
            .map(|p| p.log_loss)
            .sum::<f64>()
            / quarter as f64;
        let late: f64 = report.loss_trace[n - quarter..]
            .iter()
            .map(|p| p.log_loss)
            .sum::<f64>()
            / quarter as f64;
        assert!(
            late < early,
            "training loss should decrease (early {early:.4} vs late {late:.4})"
        );
    }

    #[test]
    fn evaluation_produces_scores_for_last_days_only() {
        let ds = tiny_dataset(10);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let model = tiny_model();
        let trainer = tiny_trainer(false);
        let scored = trainer.evaluate(&model, &ds, &idx, Some(3));
        assert!(!scored.is_empty());
        assert!(scored.iter().all(|s| s.day_offset >= ds.num_days - 3));
        assert!(scored.iter().all(|s| (0.0..=1.0).contains(&s.score)));
        let all = trainer.evaluate(&model, &ds, &idx, None);
        assert!(all.len() > scored.len());
    }

    #[test]
    fn parallel_and_sequential_training_agree() {
        let ds = tiny_dataset(8);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let mut seq_model = tiny_model();
        let mut par_model = tiny_model();
        tiny_trainer(false).train(&mut seq_model, &ds, &idx);
        tiny_trainer(true).train(&mut par_model, &ds, &idx);
        // Same seeds, same per-user dropout streams, deterministic merge
        // order ⇒ identical parameters up to float associativity; compare
        // predictions loosely.
        let scored_seq = tiny_trainer(false).evaluate(&seq_model, &ds, &idx, Some(3));
        let scored_par = tiny_trainer(false).evaluate(&par_model, &ds, &idx, Some(3));
        assert_eq!(scored_seq.len(), scored_par.len());
        for (a, b) in scored_seq.iter().zip(&scored_par) {
            assert!(
                (a.score - b.score).abs() < 1e-4,
                "parallel and sequential training diverged: {} vs {}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn trained_model_beats_untrained_on_held_out_users() {
        let ds = tiny_dataset(40);
        let train_idx: Vec<usize> = (0..32).collect();
        let test_idx: Vec<usize> = (32..40).collect();
        let trainer = RnnTrainer::new(TrainerConfig {
            epochs: 3,
            minibatch_users: 8,
            train_last_days: 8,
            parallel: true,
            ..Default::default()
        });
        let untrained = tiny_model();
        let mut trained = tiny_model();
        trainer.train(&mut trained, &ds, &train_idx);
        let (s0, l0) = scores_and_labels(&trainer.evaluate(&untrained, &ds, &test_idx, Some(5)));
        let (s1, l1) = scores_and_labels(&trainer.evaluate(&trained, &ds, &test_idx, Some(5)));
        assert_eq!(l0, l1);
        if l0.iter().any(|&l| l) {
            let auc0 = pr_auc(&s0, &l0);
            let auc1 = pr_auc(&s1, &l1);
            assert!(
                auc1 > auc0 - 0.02,
                "training should not hurt held-out PR-AUC ({auc0:.3} → {auc1:.3})"
            );
        }
    }

    #[test]
    fn timeshift_task_trains_and_evaluates() {
        let ds = TimeshiftGenerator::new(TimeshiftConfig {
            num_users: 12,
            num_days: 10,
            ..Default::default()
        })
        .generate();
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let mut model = RnnModel::new(
            DatasetKind::Timeshift,
            TaskKind::Timeshifted,
            RnnModelConfig::tiny(),
            2,
        );
        let trainer = RnnTrainer::new(TrainerConfig {
            epochs: 1,
            minibatch_users: 4,
            train_last_days: 8,
            parallel: false,
            ..Default::default()
        });
        let report = trainer.train(&mut model, &ds, &idx);
        assert!(report.total_predictions > 0);
        let scored = trainer.evaluate(&model, &ds, &idx, Some(5));
        // One prediction per user per evaluated day.
        assert_eq!(scored.len(), 12 * 5);
    }

    #[test]
    fn warmup_preset_is_small_and_seeded() {
        let c = TrainerConfig::warmup(9);
        assert_eq!(c.seed, 9);
        assert_eq!(c.epochs, 2);
        assert_eq!(c.minibatch_users, 8);
        assert!(c.parallel);
    }

    #[test]
    fn loss_trace_session_counts_are_monotone() {
        let ds = tiny_dataset(12);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let mut model = tiny_model();
        let report = tiny_trainer(false).train(&mut model, &ds, &idx);
        assert!(report
            .loss_trace
            .windows(2)
            .all(|w| w[0].sessions_processed <= w[1].sessions_processed));
        assert!(report.wall_time_secs > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty user set")]
    fn empty_training_set_panics() {
        let ds = tiny_dataset(2);
        let mut model = tiny_model();
        let _ = tiny_trainer(false).train(&mut model, &ds, &[]);
    }
}
