//! Precompute decision policies.
//!
//! A trained model produces an access probability; the *policy* turns it
//! into a precompute decision. The paper always uses a fixed threshold
//! "chosen to target a precision of X%" on held-out data (§8: constrain
//! precision, maximize recall; §9: 60% precision for the MobileTab launch).

use pp_metrics::pr::PrCurve;
use serde::{Deserialize, Serialize};

/// A thresholded precompute policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecomputePolicy {
    threshold: f64,
    target_precision: Option<f64>,
}

impl PrecomputePolicy {
    /// Creates a policy with an explicit probability threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= threshold <= 1`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a probability"
        );
        Self {
            threshold,
            target_precision: None,
        }
    }

    /// Calibrates a policy on held-out scores so that precision stays at or
    /// above `target_precision` while recall is maximized. Returns `None`
    /// when no threshold achieves the target (the caller should then either
    /// lower the target or disable precompute).
    pub fn for_target_precision(
        scores: &[f64],
        labels: &[bool],
        target_precision: f64,
    ) -> Option<Self> {
        let curve = PrCurve::compute(scores, labels);
        curve
            .threshold_for_precision(target_precision)
            .map(|threshold| Self {
                threshold,
                target_precision: Some(target_precision),
            })
    }

    /// The probability threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The precision target this policy was calibrated for, if any.
    pub fn target_precision(&self) -> Option<f64> {
        self.target_precision
    }

    /// Whether to precompute for a predicted access probability.
    pub fn should_precompute(&self, probability: f64) -> bool {
        probability >= self.threshold
    }

    /// Fraction of the given scores that would trigger a precompute —
    /// a direct proxy for the precompute traffic the policy generates.
    pub fn trigger_rate(&self, scores: &[f64]) -> f64 {
        if scores.is_empty() {
            0.0
        } else {
            scores
                .iter()
                .filter(|&&s| self.should_precompute(s))
                .count() as f64
                / scores.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_policy_basics() {
        let p = PrecomputePolicy::with_threshold(0.6);
        assert!(p.should_precompute(0.6));
        assert!(p.should_precompute(0.9));
        assert!(!p.should_precompute(0.59));
        assert_eq!(p.target_precision(), None);
        assert!((p.trigger_rate(&[0.1, 0.7, 0.9]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.trigger_rate(&[]), 0.0);
    }

    #[test]
    fn calibration_meets_precision_target() {
        // Scores that rank positives mostly on top.
        let scores = [0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
        let labels = [
            true, true, false, true, false, false, true, false, false, false,
        ];
        let policy = PrecomputePolicy::for_target_precision(&scores, &labels, 0.75).unwrap();
        // Check the achieved precision on the same data.
        let (mut tp, mut fp) = (0, 0);
        for (&s, &l) in scores.iter().zip(&labels) {
            if policy.should_precompute(s) {
                if l {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let precision = tp as f64 / (tp + fp) as f64;
        assert!(precision >= 0.75, "achieved precision {precision}");
        assert_eq!(policy.target_precision(), Some(0.75));
    }

    #[test]
    fn impossible_target_returns_none() {
        let scores = [0.9, 0.8];
        let labels = [false, false];
        assert!(PrecomputePolicy::for_target_precision(&scores, &labels, 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold must be a probability")]
    fn invalid_threshold_panics() {
        let _ = PrecomputePolicy::with_threshold(1.5);
    }
}
