//! Precompute decision policies.
//!
//! A trained model produces an access probability; the *policy* turns it
//! into a precompute decision. The paper always uses a fixed threshold
//! "chosen to target a precision of X%" on held-out data (§8: constrain
//! precision, maximize recall; §9: 60% precision for the MobileTab launch).

use pp_metrics::pr::PrCurve;
use serde::{Deserialize, Serialize};

/// A thresholded precompute policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecomputePolicy {
    threshold: f64,
    target_precision: Option<f64>,
}

impl PrecomputePolicy {
    /// Creates a policy with an explicit probability threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= threshold <= 1`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a probability"
        );
        Self {
            threshold,
            target_precision: None,
        }
    }

    /// Creates a policy with an explicit threshold that *records* the
    /// precision target it is meant to defend — the form an online
    /// controller hands around while it nudges the threshold to hold the
    /// target on live traffic.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are probabilities in `[0, 1]`.
    pub fn with_threshold_for_target(threshold: f64, target_precision: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_precision),
            "target precision must be a probability"
        );
        let mut policy = Self::with_threshold(threshold);
        policy.target_precision = Some(target_precision);
        policy
    }

    /// Calibrates a policy on held-out scores so that precision stays at or
    /// above `target_precision` while recall is maximized. Returns `None`
    /// when no threshold achieves the target (the caller should then either
    /// lower the target or disable precompute).
    pub fn for_target_precision(
        scores: &[f64],
        labels: &[bool],
        target_precision: f64,
    ) -> Option<Self> {
        let curve = PrCurve::compute(scores, labels);
        curve
            .threshold_for_precision(target_precision)
            .map(|threshold| Self {
                threshold,
                target_precision: Some(target_precision),
            })
    }

    /// The probability threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Returns a copy of this policy with its threshold moved to
    /// `threshold`, *keeping* the recorded precision target. This is the
    /// hook an online controller uses to nudge the operating point while
    /// the target it is defending stays on record.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= threshold <= 1`.
    pub fn with_adjusted_threshold(&self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a probability"
        );
        Self {
            threshold,
            target_precision: self.target_precision,
        }
    }

    /// Re-fits the threshold for this policy's recorded precision target on
    /// a fresh held-out sample — the periodic recalibration step of a
    /// production deployment as traffic drifts. Returns `None` when the
    /// target has become unachievable on the new sample *or* the sample is
    /// degenerate (empty, all-positive or all-negative labels): an
    /// all-negative window cannot meet any positive target, and an
    /// all-positive window would "achieve" any target at the lowest observed
    /// score, collapsing the threshold on what is pure luck-of-the-window —
    /// both carry no calibration signal, so the caller must hold the current
    /// threshold instead. A policy without a recorded target is returned
    /// unchanged.
    pub fn recalibrate(&self, scores: &[f64], labels: &[bool]) -> Option<Self> {
        match self.target_precision {
            Some(target) => {
                let positives = labels.iter().filter(|&&l| l).count();
                if positives == 0 || positives == labels.len() {
                    return None;
                }
                Self::for_target_precision(scores, labels, target)
            }
            None => Some(*self),
        }
    }

    /// The precision target this policy was calibrated for, if any.
    pub fn target_precision(&self) -> Option<f64> {
        self.target_precision
    }

    /// Whether to precompute for a predicted access probability.
    pub fn should_precompute(&self, probability: f64) -> bool {
        probability >= self.threshold
    }

    /// Fraction of the given scores that would trigger a precompute —
    /// a direct proxy for the precompute traffic the policy generates.
    pub fn trigger_rate(&self, scores: &[f64]) -> f64 {
        if scores.is_empty() {
            0.0
        } else {
            scores
                .iter()
                .filter(|&&s| self.should_precompute(s))
                .count() as f64
                / scores.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_policy_basics() {
        let p = PrecomputePolicy::with_threshold(0.6);
        assert!(p.should_precompute(0.6));
        assert!(p.should_precompute(0.9));
        assert!(!p.should_precompute(0.59));
        assert_eq!(p.target_precision(), None);
        assert!((p.trigger_rate(&[0.1, 0.7, 0.9]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.trigger_rate(&[]), 0.0);
    }

    #[test]
    fn calibration_meets_precision_target() {
        // Scores that rank positives mostly on top.
        let scores = [0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
        let labels = [
            true, true, false, true, false, false, true, false, false, false,
        ];
        let policy = PrecomputePolicy::for_target_precision(&scores, &labels, 0.75).unwrap();
        // Check the achieved precision on the same data.
        let (mut tp, mut fp) = (0, 0);
        for (&s, &l) in scores.iter().zip(&labels) {
            if policy.should_precompute(s) {
                if l {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let precision = tp as f64 / (tp + fp) as f64;
        assert!(precision >= 0.75, "achieved precision {precision}");
        assert_eq!(policy.target_precision(), Some(0.75));
    }

    #[test]
    fn impossible_target_returns_none() {
        let scores = [0.9, 0.8];
        let labels = [false, false];
        assert!(PrecomputePolicy::for_target_precision(&scores, &labels, 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold must be a probability")]
    fn invalid_threshold_panics() {
        let _ = PrecomputePolicy::with_threshold(1.5);
    }

    #[test]
    fn with_threshold_for_target_records_both() {
        let p = PrecomputePolicy::with_threshold_for_target(0.5, 0.6);
        assert!((p.threshold() - 0.5).abs() < 1e-12);
        assert_eq!(p.target_precision(), Some(0.6));
    }

    #[test]
    #[should_panic(expected = "target precision must be a probability")]
    fn invalid_target_panics() {
        let _ = PrecomputePolicy::with_threshold_for_target(0.5, 1.2);
    }

    #[test]
    fn adjusted_threshold_keeps_target_on_record() {
        let scores = [0.9, 0.8, 0.7, 0.1];
        let labels = [true, false, true, false];
        let policy = PrecomputePolicy::for_target_precision(&scores, &labels, 0.6).unwrap();
        let nudged = policy.with_adjusted_threshold(0.42);
        assert!((nudged.threshold() - 0.42).abs() < 1e-12);
        assert_eq!(nudged.target_precision(), Some(0.6));
    }

    #[test]
    fn recalibrate_refits_threshold_on_fresh_scores() {
        let policy =
            PrecomputePolicy::for_target_precision(&[0.9, 0.2], &[true, false], 0.9).unwrap();
        // On a fresh sample where positives score lower, the threshold moves.
        let fresh_scores = [0.6, 0.5, 0.4, 0.3];
        let fresh_labels = [true, true, false, false];
        let refit = policy.recalibrate(&fresh_scores, &fresh_labels).unwrap();
        assert_eq!(refit.target_precision(), Some(0.9));
        assert!((refit.threshold() - 0.5).abs() < 1e-12);
        // An unachievable target on the new sample reports failure.
        assert!(policy.recalibrate(&[0.9], &[false]).is_none());
        // A target-less policy passes through unchanged.
        let fixed = PrecomputePolicy::with_threshold(0.3);
        assert_eq!(fixed.recalibrate(&[0.1], &[false]).unwrap(), fixed);
    }

    #[test]
    fn recalibrate_rejects_degenerate_windows() {
        let policy = PrecomputePolicy::with_threshold_for_target(0.5, 0.6);
        // All-negative: the target is unachievable.
        assert!(policy.recalibrate(&[0.9, 0.2, 0.4], &[false; 3]).is_none());
        // All-positive: "any threshold works" is no signal — before the fix
        // this collapsed the threshold to the lowest observed score.
        assert!(policy.recalibrate(&[0.9, 0.2, 0.4], &[true; 3]).is_none());
        // Empty window: nothing to calibrate on.
        assert!(policy.recalibrate(&[], &[]).is_none());
        // One positive among negatives is already enough to refit.
        assert!(policy
            .recalibrate(&[0.9, 0.2, 0.4], &[true, false, false])
            .is_some());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Precision achieved on `(scores, labels)` when precomputing at
    /// `score >= threshold`; `None` when nothing triggers.
    fn achieved_precision(scores: &[f64], labels: &[bool], threshold: f64) -> Option<f64> {
        let (mut tp, mut fp) = (0u64, 0u64);
        for (&s, &l) in scores.iter().zip(labels) {
            if s >= threshold {
                if l {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        (tp + fp > 0).then(|| tp as f64 / (tp + fp) as f64)
    }

    proptest! {
        #[test]
        fn calibrated_threshold_achieves_the_target(
            scores in prop::collection::vec(0.0f64..1.0, 1..150),
            labels in prop::collection::vec(any::<bool>(), 1..150),
            target in 0.05f64..0.95,
        ) {
            let n = scores.len().min(labels.len());
            let scores = &scores[..n];
            let labels = &labels[..n];
            if let Some(policy) =
                PrecomputePolicy::for_target_precision(scores, labels, target)
            {
                let precision = achieved_precision(scores, labels, policy.threshold())
                    .expect("calibrated threshold triggers at least once");
                prop_assert!(
                    precision >= target,
                    "target {target} but achieved {precision} at threshold {}",
                    policy.threshold()
                );
                prop_assert_eq!(policy.target_precision(), Some(target));
            }
        }

        #[test]
        fn threshold_is_monotone_in_the_target(
            scores in prop::collection::vec(0.0f64..1.0, 1..150),
            labels in prop::collection::vec(any::<bool>(), 1..150),
            t1 in 0.05f64..0.95,
            t2 in 0.05f64..0.95,
        ) {
            let n = scores.len().min(labels.len());
            let scores = &scores[..n];
            let labels = &labels[..n];
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let easy = PrecomputePolicy::for_target_precision(scores, labels, lo);
            let hard = PrecomputePolicy::for_target_precision(scores, labels, hi);
            // A harder target can become infeasible, but never *easier*:
            if easy.is_none() {
                prop_assert!(hard.is_none());
            }
            if let (Some(easy), Some(hard)) = (easy, hard) {
                prop_assert!(
                    easy.threshold() <= hard.threshold(),
                    "target {lo} -> threshold {}, target {hi} -> threshold {}",
                    easy.threshold(),
                    hard.threshold()
                );
            }
        }

        #[test]
        fn recalibration_is_a_no_op_on_degenerate_windows(
            scores in prop::collection::vec(0.0f64..1.0, 1..80),
            all_positive in any::<bool>(),
            target in 0.05f64..0.95,
            threshold in 0.0f64..1.0,
        ) {
            let policy = PrecomputePolicy::with_threshold_for_target(threshold, target);
            let labels = vec![all_positive; scores.len()];
            // A window whose labels are all one class carries no signal:
            // recalibrate must report `None` so the caller holds the
            // threshold it already has.
            prop_assert!(policy.recalibrate(&scores, &labels).is_none());
        }

        #[test]
        fn recalibrated_threshold_is_monotone_in_the_target_on_clean_windows(
            scores in prop::collection::vec(0.0f64..1.0, 2..120),
            labels in prop::collection::vec(any::<bool>(), 2..120),
            t1 in 0.05f64..0.95,
            t2 in 0.05f64..0.95,
        ) {
            let n = scores.len().min(labels.len());
            let scores = &scores[..n];
            let labels = &labels[..n];
            // Only clean (mixed-label) windows carry calibration signal.
            prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let easy = PrecomputePolicy::with_threshold_for_target(0.5, lo)
                .recalibrate(scores, labels);
            let hard = PrecomputePolicy::with_threshold_for_target(0.5, hi)
                .recalibrate(scores, labels);
            // A harder target can become infeasible, but never *easier*, and
            // when both refit the harder target demands a higher threshold.
            if easy.is_none() {
                prop_assert!(hard.is_none());
            }
            if let (Some(easy), Some(hard)) = (easy, hard) {
                prop_assert!(
                    easy.threshold() <= hard.threshold(),
                    "target {lo} -> {}, target {hi} -> {}",
                    easy.threshold(),
                    hard.threshold()
                );
            }
        }

        #[test]
        fn recalibration_achieves_the_recorded_target_on_fresh_data(
            old_scores in prop::collection::vec(0.0f64..1.0, 1..80),
            old_labels in prop::collection::vec(any::<bool>(), 1..80),
            new_scores in prop::collection::vec(0.0f64..1.0, 1..80),
            new_labels in prop::collection::vec(any::<bool>(), 1..80),
            target in 0.05f64..0.95,
        ) {
            let n_old = old_scores.len().min(old_labels.len());
            let n_new = new_scores.len().min(new_labels.len());
            let old = (&old_scores[..n_old], &old_labels[..n_old]);
            let new = (&new_scores[..n_new], &new_labels[..n_new]);
            if let Some(policy) = PrecomputePolicy::for_target_precision(old.0, old.1, target) {
                if let Some(refit) = policy.recalibrate(new.0, new.1) {
                    let precision = achieved_precision(new.0, new.1, refit.threshold())
                        .expect("recalibrated threshold triggers at least once");
                    prop_assert!(precision >= target);
                    prop_assert_eq!(refit.target_precision(), Some(target));
                }
            }
        }
    }
}
