//! End-to-end offline experiment drivers reproducing the paper's evaluation
//! protocol (§8): the same user-level train/test split for every model,
//! evaluation restricted to the last 7 days of the held-out users, PR-AUC
//! and recall@50%-precision as the headline metrics, and 4-fold
//! cross-validation for the small MPU dataset.
//!
//! These drivers are what the benchmark binaries in `crates/bench` and the
//! runnable examples call into.

use pp_baselines::{Gbdt, GbdtConfig, LogRegConfig, LogisticRegression, PercentageModel};
use pp_data::schema::{Dataset, DatasetKind, SECONDS_PER_DAY};
use pp_data::split::{KFoldSplit, UserSplit};
use pp_data::synth::build_peak_window_examples;
use pp_features::baseline::{
    build_session_examples, build_timeshift_examples, BaselineFeaturizer, ElapsedEncoding,
    FeatureSet,
};
use pp_metrics::pr::PrCurve;
use pp_metrics::report::EvalReport;
use pp_rnn::{RnnModel, RnnModelConfig, RnnTrainer, TaskKind, TrainerConfig};
use serde::{Deserialize, Serialize};

/// The model families compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// The smoothed per-user access percentage (§5.1).
    PercentageBased,
    /// Logistic regression on engineered features (§5.3).
    LogisticRegression,
    /// Gradient-boosted decision trees on engineered features (§5.4).
    Gbdt,
    /// The recurrent model (§6).
    Rnn,
}

impl ModelKind {
    /// The four models of Tables 3–4, in the paper's row order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::PercentageBased,
        ModelKind::LogisticRegression,
        ModelKind::Gbdt,
        ModelKind::Rnn,
    ];
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::PercentageBased => write!(f, "PercentageBased"),
            ModelKind::LogisticRegression => write!(f, "LR"),
            ModelKind::Gbdt => write!(f, "GBDT"),
            ModelKind::Rnn => write!(f, "RNN"),
        }
    }
}

/// Configuration of an offline experiment on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfflineExperimentConfig {
    /// Fraction of users held out as the test set (paper: 0.10).
    pub test_fraction: f64,
    /// Days at the end of the dataset used for evaluation (paper: 7).
    pub eval_last_days: u32,
    /// Days at the end of the dataset used to *train* the baselines
    /// (paper: 7, to give aggregations warm-up time).
    pub baseline_train_last_days: u32,
    /// Feature set for the baselines (Table 5 ablation axis).
    pub feature_set: FeatureSet,
    /// Hyper-parameters of the RNN model.
    pub rnn_model: RnnModelConfig,
    /// Training recipe for the RNN.
    pub rnn_trainer: TrainerConfig,
    /// GBDT configuration (depth may be overridden by the depth search).
    pub gbdt: GbdtConfig,
    /// Run the paper's exhaustive depth search on a validation split.
    pub gbdt_depth_search: bool,
    /// Logistic-regression configuration.
    pub logreg: LogRegConfig,
    /// Lead time for the timeshifted task.
    pub lead_time_secs: i64,
    /// Split / model seed.
    pub seed: u64,
}

impl Default for OfflineExperimentConfig {
    fn default() -> Self {
        Self {
            test_fraction: 0.10,
            eval_last_days: 7,
            baseline_train_last_days: 7,
            feature_set: FeatureSet::Full,
            rnn_model: RnnModelConfig::default(),
            rnn_trainer: TrainerConfig::default(),
            gbdt: GbdtConfig::default(),
            gbdt_depth_search: false,
            logreg: LogRegConfig::default(),
            lead_time_secs: 6 * 3_600,
            seed: 17,
        }
    }
}

impl OfflineExperimentConfig {
    /// A configuration small enough for CI-style runs and examples: a
    /// 32-dimensional GRU, one epoch, modest GBDT.
    pub fn fast() -> Self {
        Self {
            rnn_model: RnnModelConfig {
                hidden_dim: 32,
                mlp_width: 32,
                ..RnnModelConfig::default()
            },
            rnn_trainer: TrainerConfig {
                epochs: 1,
                ..TrainerConfig::default()
            },
            gbdt: GbdtConfig {
                num_trees: 40,
                max_depth: 5,
                ..GbdtConfig::default()
            },
            ..Default::default()
        }
    }
}

/// The scored evaluation of one model on one dataset slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Which model produced the scores.
    pub model: ModelKind,
    /// Metric summary (PR-AUC, recall@50%, log loss, …).
    pub report: EvalReport,
    /// Raw scores, aligned with `labels` (kept for PR curves / Figure 6).
    pub scores: Vec<f64>,
    /// Ground-truth labels.
    pub labels: Vec<bool>,
}

impl ModelEvaluation {
    /// Precision-recall curve of this evaluation (Figure 6).
    pub fn pr_curve(&self) -> PrCurve {
        PrCurve::compute(&self.scores, &self.labels)
    }
}

/// Scores the percentage baseline on the test users of a per-session
/// dataset: each prediction uses the user's full prior history, and only
/// sessions in the evaluation window are scored.
fn score_percentage_per_session(
    dataset: &Dataset,
    train_users: &[usize],
    test_users: &[usize],
    eval_last_days: u32,
) -> (Vec<f64>, Vec<bool>) {
    let model = PercentageModel::fit_sessions(train_users.iter().map(|&i| &dataset.users[i]));
    let cutoff = dataset.end_timestamp() - eval_last_days as i64 * SECONDS_PER_DAY;
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for &ui in test_users {
        let user = &dataset.users[ui];
        let per_session = model.score_user(user);
        for (s, p) in user.sessions.iter().zip(per_session) {
            if s.timestamp >= cutoff {
                scores.push(p);
                labels.push(s.accessed);
            }
        }
    }
    (scores, labels)
}

/// Scores the percentage baseline on the timeshifted task: one prediction
/// per user × peak window, using the fraction of *previous windows* with an
/// access (paper Eq. in §5.1 for `P(PA_d)`).
fn score_percentage_timeshift(
    dataset: &Dataset,
    train_users: &[usize],
    test_users: &[usize],
    eval_last_days: u32,
    lead_time_secs: i64,
) -> (Vec<f64>, Vec<bool>) {
    let windows = build_peak_window_examples(dataset, lead_time_secs);
    let train_set: std::collections::HashSet<_> = train_users
        .iter()
        .map(|&i| dataset.users[i].user_id)
        .collect();
    let model = PercentageModel::fit_labels(
        windows
            .iter()
            .filter(|w| train_set.contains(&w.user_id))
            .map(|w| w.accessed_in_window),
    );
    let first_eval_day = dataset.num_days.saturating_sub(eval_last_days);
    let first_day = dataset.start_timestamp.div_euclid(SECONDS_PER_DAY);
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for &ui in test_users {
        let user_id = dataset.users[ui].user_id;
        let mut prior_accesses = 0usize;
        let mut user_windows: Vec<_> = windows.iter().filter(|w| w.user_id == user_id).collect();
        user_windows.sort_by_key(|w| w.day_index);
        for (prior_windows, w) in user_windows.into_iter().enumerate() {
            let day_offset = (w.day_index - first_day).max(0) as u32;
            if day_offset >= first_eval_day {
                scores.push(model.predict(prior_windows, prior_accesses));
                labels.push(w.accessed_in_window);
            }
            prior_accesses += w.accessed_in_window as usize;
        }
    }
    (scores, labels)
}

/// Builds train / validation / test example sets for the feature-based
/// baselines on either task.
fn baseline_examples(
    dataset: &Dataset,
    users: &[usize],
    featurizer: &BaselineFeaturizer,
    last_days: u32,
    lead_time_secs: i64,
) -> Vec<pp_features::baseline::LabeledExample> {
    match dataset.kind {
        DatasetKind::Timeshift => {
            build_timeshift_examples(dataset, users, featurizer, lead_time_secs, Some(last_days))
        }
        _ => build_session_examples(dataset, users, featurizer, Some(last_days)),
    }
}

/// Evaluates one model on an explicit train/test user split.
pub fn evaluate_model_on_split(
    model: ModelKind,
    dataset: &Dataset,
    train_users: &[usize],
    test_users: &[usize],
    config: &OfflineExperimentConfig,
) -> ModelEvaluation {
    let dataset_name = dataset.kind.to_string();
    let (scores, labels) = match model {
        ModelKind::PercentageBased => match dataset.kind {
            DatasetKind::Timeshift => score_percentage_timeshift(
                dataset,
                train_users,
                test_users,
                config.eval_last_days,
                config.lead_time_secs,
            ),
            _ => score_percentage_per_session(
                dataset,
                train_users,
                test_users,
                config.eval_last_days,
            ),
        },
        ModelKind::LogisticRegression | ModelKind::Gbdt => {
            let encoding = if model == ModelKind::LogisticRegression {
                ElapsedEncoding::OneHotBuckets
            } else {
                ElapsedEncoding::Scalar
            };
            let featurizer = BaselineFeaturizer::new(dataset.kind, config.feature_set, encoding);
            let train_examples = baseline_examples(
                dataset,
                train_users,
                &featurizer,
                config.baseline_train_last_days,
                config.lead_time_secs,
            );
            let test_examples = baseline_examples(
                dataset,
                test_users,
                &featurizer,
                config.eval_last_days,
                config.lead_time_secs,
            );
            let labels: Vec<bool> = test_examples.iter().map(|e| e.label).collect();
            let scores = match model {
                ModelKind::LogisticRegression => {
                    let lr = LogisticRegression::train(&train_examples, config.logreg);
                    lr.predict_batch(&test_examples)
                }
                _ => {
                    let gbdt = if config.gbdt_depth_search {
                        // Split 10% of the training users off as validation
                        // (paper §5.4), approximated here at the example level
                        // by a user-index parity split for determinism.
                        let (valid_users, fit_users): (Vec<usize>, Vec<usize>) =
                            train_users.iter().partition(|&&u| u % 10 == 0);
                        let fit = baseline_examples(
                            dataset,
                            &fit_users,
                            &featurizer,
                            config.baseline_train_last_days,
                            config.lead_time_secs,
                        );
                        let valid = baseline_examples(
                            dataset,
                            &valid_users,
                            &featurizer,
                            config.baseline_train_last_days,
                            config.lead_time_secs,
                        );
                        if valid.is_empty() || fit.is_empty() {
                            Gbdt::train(&train_examples, config.gbdt)
                        } else {
                            Gbdt::train_with_depth_search(&fit, &valid, 1..=10, config.gbdt).0
                        }
                    } else {
                        Gbdt::train(&train_examples, config.gbdt)
                    };
                    gbdt.predict_batch(&test_examples)
                }
            };
            (scores, labels)
        }
        ModelKind::Rnn => {
            let task = match dataset.kind {
                DatasetKind::Timeshift => TaskKind::Timeshifted,
                _ => TaskKind::PerSession,
            };
            let mut rnn = RnnModel::new(dataset.kind, task, config.rnn_model, config.seed);
            let trainer = RnnTrainer::new(TrainerConfig {
                lead_time_secs: config.lead_time_secs,
                seed: config.seed,
                ..config.rnn_trainer
            });
            trainer.train(&mut rnn, dataset, train_users);
            let scored = trainer.evaluate(&rnn, dataset, test_users, Some(config.eval_last_days));
            (
                scored.iter().map(|s| s.score).collect(),
                scored.iter().map(|s| s.label).collect(),
            )
        }
    };
    let report = EvalReport::compute(model.to_string(), dataset_name, &scores, &labels);
    ModelEvaluation {
        model,
        report,
        scores,
        labels,
    }
}

/// Runs the paper's 90/10 user-split evaluation of several models on one
/// dataset (the protocol behind Tables 3–4 and Figure 6 for MobileTab and
/// Timeshift).
pub fn run_offline_experiment(
    dataset: &Dataset,
    models: &[ModelKind],
    config: &OfflineExperimentConfig,
) -> Vec<ModelEvaluation> {
    let split = UserSplit::new(dataset, config.test_fraction, config.seed);
    models
        .iter()
        .map(|&m| evaluate_model_on_split(m, dataset, &split.train, &split.test, config))
        .collect()
}

/// Runs the k-fold cross-validated evaluation used for MPU (paper §7:
/// k = 4, metrics over the combined out-of-fold predictions).
pub fn run_kfold_experiment(
    dataset: &Dataset,
    models: &[ModelKind],
    config: &OfflineExperimentConfig,
    k: usize,
) -> Vec<ModelEvaluation> {
    let kfold = KFoldSplit::new(dataset, k, config.seed);
    models
        .iter()
        .map(|&m| {
            let mut scores = Vec::new();
            let mut labels = Vec::new();
            for (train, test) in kfold.iter_folds() {
                let eval = evaluate_model_on_split(m, dataset, &train, &test, config);
                scores.extend(eval.scores);
                labels.extend(eval.labels);
            }
            let report =
                EvalReport::compute(m.to_string(), dataset.kind.to_string(), &scores, &labels);
            ModelEvaluation {
                model: m,
                report,
                scores,
                labels,
            }
        })
        .collect()
}

/// Runs the GBDT feature-engineering ablation of Table 5 on a dataset:
/// trains one GBDT per feature set (C, E+C, A+E+C) on the same split and
/// returns the evaluations in that order.
pub fn run_feature_ablation(
    dataset: &Dataset,
    config: &OfflineExperimentConfig,
) -> Vec<(FeatureSet, ModelEvaluation)> {
    [
        FeatureSet::Contextual,
        FeatureSet::ElapsedContextual,
        FeatureSet::Full,
    ]
    .into_iter()
    .map(|feature_set| {
        let cfg = OfflineExperimentConfig {
            feature_set,
            ..*config
        };
        let split = UserSplit::new(dataset, cfg.test_fraction, cfg.seed);
        let eval =
            evaluate_model_on_split(ModelKind::Gbdt, dataset, &split.train, &split.test, &cfg);
        (feature_set, eval)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::synth::{
        MobileTabConfig, MobileTabGenerator, SyntheticGenerator, TimeshiftConfig,
        TimeshiftGenerator,
    };

    fn small_config() -> OfflineExperimentConfig {
        OfflineExperimentConfig {
            rnn_model: RnnModelConfig::tiny(),
            rnn_trainer: TrainerConfig {
                epochs: 1,
                parallel: true,
                ..Default::default()
            },
            gbdt: GbdtConfig {
                num_trees: 15,
                max_depth: 4,
                ..Default::default()
            },
            logreg: LogRegConfig {
                epochs: 4,
                ..Default::default()
            },
            ..OfflineExperimentConfig::default()
        }
    }

    fn mobiletab(users: usize) -> Dataset {
        MobileTabGenerator::new(MobileTabConfig {
            num_users: users,
            num_days: 14,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn offline_experiment_runs_all_models_on_mobiletab() {
        let ds = mobiletab(60);
        let evals = run_offline_experiment(&ds, &ModelKind::ALL, &small_config());
        assert_eq!(evals.len(), 4);
        for e in &evals {
            assert!(e.report.pr_auc >= 0.0 && e.report.pr_auc <= 1.0);
            assert!(!e.scores.is_empty());
            assert_eq!(e.scores.len(), e.labels.len());
            // Every model is evaluated on the same set of examples.
            assert_eq!(e.labels.len(), evals[0].labels.len());
        }
        // Learned models should beat the percentage baseline on PR-AUC more
        // often than not; at minimum the GBDT should not be catastrophically
        // below it on this context-rich dataset.
        let pct = evals
            .iter()
            .find(|e| e.model == ModelKind::PercentageBased)
            .unwrap()
            .report
            .pr_auc;
        let gbdt = evals
            .iter()
            .find(|e| e.model == ModelKind::Gbdt)
            .unwrap()
            .report
            .pr_auc;
        assert!(gbdt > pct * 0.5, "GBDT {gbdt} vs percentage {pct}");
    }

    #[test]
    fn timeshift_experiment_uses_window_examples() {
        let ds = TimeshiftGenerator::new(TimeshiftConfig {
            num_users: 40,
            num_days: 14,
            ..Default::default()
        })
        .generate();
        let evals = run_offline_experiment(
            &ds,
            &[ModelKind::PercentageBased, ModelKind::Gbdt],
            &small_config(),
        );
        // 10% of 40 users = 4 test users × 7 eval days = 28 examples.
        assert_eq!(evals[0].labels.len(), 28);
        assert_eq!(evals[1].labels.len(), 28);
    }

    #[test]
    fn kfold_covers_every_user_once() {
        let ds = mobiletab(20);
        let evals = run_kfold_experiment(&ds, &[ModelKind::PercentageBased], &small_config(), 4);
        assert_eq!(evals.len(), 1);
        // Out-of-fold predictions cover the eval window of every user.
        let direct: usize = (0..20)
            .map(|ui| {
                let cutoff = ds.end_timestamp() - 7 * SECONDS_PER_DAY;
                ds.users[ui]
                    .sessions
                    .iter()
                    .filter(|s| s.timestamp >= cutoff)
                    .count()
            })
            .sum();
        assert_eq!(evals[0].labels.len(), direct);
    }

    #[test]
    fn ablation_produces_three_rows_with_growing_dims() {
        let ds = mobiletab(40);
        let rows = run_feature_ablation(&ds, &small_config());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, FeatureSet::Contextual);
        assert_eq!(rows[2].0, FeatureSet::Full);
        for (_, eval) in &rows {
            assert_eq!(eval.model, ModelKind::Gbdt);
            assert!(!eval.scores.is_empty());
        }
    }

    #[test]
    fn model_kind_display_names() {
        assert_eq!(ModelKind::Rnn.to_string(), "RNN");
        assert_eq!(ModelKind::Gbdt.to_string(), "GBDT");
        assert_eq!(ModelKind::ALL.len(), 4);
    }
}
