//! # pp-core
//!
//! The umbrella crate of the *Predictive Precompute with Recurrent Neural
//! Networks* reproduction: end-to-end experiment drivers tying together the
//! dataset generators (`pp-data`), feature engineering (`pp-features`), the
//! baseline models (`pp-baselines`), the recurrent model (`pp-rnn`), the
//! metrics (`pp-metrics`) and the serving simulation (`pp-serving`).
//!
//! * [`experiments`] — the §8 offline evaluation protocol: 90/10 user
//!   splits, last-7-days evaluation, k-fold cross-validation for MPU, and
//!   the Table 5 feature ablation;
//! * [`policy`] — threshold selection for a target precision, the operating
//!   point used by the production deployment in §9. `pp-precompute` keeps
//!   one [`PrecomputePolicy`] per activity and re-fits each through
//!   [`PrecomputePolicy::recalibrate`] on that activity's resolved
//!   (score, label) windows — see `ARCHITECTURE.md` at the repository root
//!   for the full loop.
//!
//! # Examples
//!
//! Run a miniature version of the paper's Table 3 on a synthetic MobileTab
//! dataset:
//!
//! ```
//! use pp_core::experiments::{run_offline_experiment, ModelKind, OfflineExperimentConfig};
//! use pp_data::synth::{MobileTabConfig, MobileTabGenerator, SyntheticGenerator};
//! use pp_rnn::RnnModelConfig;
//!
//! let dataset = MobileTabGenerator::new(MobileTabConfig {
//!     num_users: 30,
//!     num_days: 10,
//!     ..Default::default()
//! })
//! .generate();
//! let config = OfflineExperimentConfig {
//!     rnn_model: RnnModelConfig::tiny(),
//!     ..OfflineExperimentConfig::fast()
//! };
//! let evals = run_offline_experiment(&dataset, &[ModelKind::PercentageBased], &config);
//! assert_eq!(evals.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod policy;

pub use experiments::{
    evaluate_model_on_split, run_feature_ablation, run_kfold_experiment, run_offline_experiment,
    ModelEvaluation, ModelKind, OfflineExperimentConfig,
};
pub use policy::PrecomputePolicy;
