//! `unit-suffix` — values computed in a known unit must be named with the
//! matching suffix.
//!
//! Every latency histogram in the repo is nanoseconds (`*_ns`), report
//! periods are milliseconds or traffic-seconds, and cache payloads are
//! bytes. A `u64` named `wait` that actually holds milliseconds is a
//! factor-of-10⁶ bug waiting for an aggregation to merge it with a
//! nanosecond counter. The rule checks `let` bindings and struct-literal
//! field initializers whose right-hand side calls an unambiguous unit
//! conversion:
//!
//! | RHS contains        | name must end with |
//! |---------------------|--------------------|
//! | `as_nanos()`        | `_ns` (or be `ns`) |
//! | `as_micros()`       | `_us` (or `us`)    |
//! | `as_millis()`       | `_ms` (or `ms`)    |
//! | `size_of` / `size_of_val` | `_bytes` (or `bytes`) |
//!
//! A right-hand side mixing different units (a conversion) is skipped —
//! the scanner cannot know which unit survives. `as_secs*` is deliberately
//! not checked: seconds are routinely rescaled in the same expression
//! (`as_secs_f64() * 1e6`).

use super::Rule;
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct UnitSuffix;

/// `(trigger ident, unit label, accepted suffix, accepted bare name)`.
const UNITS: [(&str, &str, &str, &str); 4] = [
    ("as_nanos", "nanoseconds", "_ns", "ns"),
    ("as_micros", "microseconds", "_us", "us"),
    ("as_millis", "milliseconds", "_ms", "ms"),
    ("size_of", "bytes", "_bytes", "bytes"),
];

impl Rule for UnitSuffix {
    fn id(&self) -> &'static str {
        "unit-suffix"
    }

    fn description(&self) -> &'static str {
        "bindings and fields computed via as_nanos/as_micros/as_millis/size_of \
         must carry the matching _ns/_us/_ms/_bytes suffix"
    }

    fn check(&self, file: &SourceFile, _config: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut i = 0usize;
        while i < file.len() {
            if file.is_test(i) {
                i += 1;
                continue;
            }
            // `let [mut] name [: ty] = <expr> ;`
            if file.text(i) == "let" {
                let mut j = i + 1;
                if j < file.len() && file.text(j) == "mut" {
                    j += 1;
                }
                if j < file.len() && file.kind(j) == TokKind::Ident {
                    let name = file.text(j).to_string();
                    let line = file.line(j);
                    // Find the `=` at depth 0 before any `;`.
                    let mut k = j + 1;
                    let mut depth = 0i32;
                    let mut assign = None;
                    while k < file.len() {
                        match file.text(k) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "=" if depth == 0 => {
                                // Exclude `==` / `>=` / `<=` / `!=` forms.
                                let prev = file.text(k - 1);
                                let next = file.text(k + 1);
                                if next != "=" && !matches!(prev, "=" | "<" | ">" | "!") {
                                    assign = Some(k);
                                }
                                break;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(eq) = assign {
                        let end = stmt_end(file, eq + 1);
                        check_name(self, file, &name, line, eq + 1, end, out);
                        i = end;
                        continue;
                    }
                }
            }
            // Struct-literal field init: `{ … , name : <expr> , … }` — only
            // when the value expression actually calls a unit conversion.
            if file.text(i) == ":"
                && i >= 1
                && file.kind(i - 1) == TokKind::Ident
                && i >= 2
                && matches!(file.text(i - 2), "{" | ",")
                && (i + 1 >= file.len() || file.text(i + 1) != ":")
                && (i < 1 || file.text(i - 1) != ":")
            {
                let name = file.text(i - 1).to_string();
                let line = file.line(i - 1);
                let end = field_end(file, i + 1);
                check_name(self, file, &name, line, i + 1, end, out);
                i = end;
                continue;
            }
            i += 1;
        }
    }
}

/// `sig` index of the `;` ending the statement starting at `from` (depth-0).
fn stmt_end(file: &SourceFile, from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < file.len() {
        match file.text(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return i; // malformed; stop at scope close
                }
                depth -= 1;
            }
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    file.len()
}

/// `sig` index of the `,` or `}` ending a struct-literal field value
/// starting at `from`.
fn field_end(file: &SourceFile, from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < file.len() {
        match file.text(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            "," if depth == 0 => return i,
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    file.len()
}

/// Checks `name` against the unit conversions called in `[from, end)`.
#[allow(clippy::too_many_arguments)]
fn check_name(
    rule: &UnitSuffix,
    file: &SourceFile,
    name: &str,
    line: u32,
    from: usize,
    end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let mut found: Option<(&str, &str, &str)> = None;
    let stop = end.min(file.len());
    let mut i = from;
    while i < stop {
        // Skip `{ … }` sub-regions: a unit conversion inside a closure body
        // or nested block computes some *other* value's unit, not this
        // binding's (`let sampler = scope.spawn(|| { …as_millis()… });`).
        if file.text(i) == "{" {
            let mut d = 0i32;
            while i < stop {
                match file.text(i) {
                    "{" => d += 1,
                    "}" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        for &(trigger, label, suffix, bare) in &UNITS {
            let hit =
                file.text(i) == trigger || (trigger == "size_of" && file.text(i) == "size_of_val");
            if !hit {
                continue;
            }
            match found {
                None => found = Some((label, suffix, bare)),
                Some((prev, _, _)) if prev != label => return, // mixed units: skip
                Some(_) => {}
            }
        }
        i += 1;
    }
    let Some((label, suffix, bare)) = found else {
        return;
    };
    if name.ends_with(suffix) || name == bare || name == "_" {
        return;
    }
    out.push(Diagnostic {
        rule: rule.id().to_string(),
        path: file.path.clone(),
        line,
        message: format!(
            "`{name}` is computed in {label} but is not named `*{suffix}` — unit-suffix \
             the name so aggregations can't silently mix units"
        ),
    });
}
