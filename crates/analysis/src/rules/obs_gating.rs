//! `obs-gating` — span/trace emission in hot paths must be reachable only
//! behind the compile-time `enabled` feature or a runtime
//! `enabled()`/`is_enabled()` guard.
//!
//! The repo's CI gates instrumented throughput within 5% of the no-op
//! baseline. That gate only holds because every tracing call site either
//! folds away with the `enabled` feature or is skipped at runtime for
//! unsampled requests. A new call that hashes users, reads clocks, or
//! builds spans unconditionally silently erodes the budget — so any
//! function (outside `crates/obs` itself and test code) that touches the
//! trace-emission API must also contain a guard: a `.enabled()` /
//! `is_enabled()` check (a `debug_assert!(tracer.enabled(), …)` stating
//! the caller's obligation also counts) or a `cfg(feature = …)` gate.
//!
//! Metric counters/histograms are *not* triggers: their recording methods
//! are compile-time no-ops inside pp-obs, which is exactly the discipline
//! this rule protects for the trace path.

use super::Rule;
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct ObsGating;

/// Identifiers whose presence means the function emits or prepares spans.
const TRIGGERS: [&str; 4] = ["trace_for", "next_span_id", "next_batch_id", "SpanBuilder"];

impl Rule for ObsGating {
    fn id(&self) -> &'static str {
        "obs-gating"
    }

    fn description(&self) -> &'static str {
        "functions emitting trace spans must contain an enabled()/is_enabled() \
         guard or a cfg(feature) gate"
    }

    fn check(&self, file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>) {
        if config
            .obs_gating_exempt_paths
            .iter()
            .any(|p| file.path.contains(p))
        {
            return;
        }
        // Report at most once per function.
        let mut reported: Vec<(usize, usize)> = Vec::new();
        for i in 0..file.len() {
            let is_trigger = TRIGGERS.contains(&file.text(i))
                || (file.text(i) == "Tracer" && file.matches(i + 1, &[":", ":", "global"]));
            if !is_trigger || file.is_test(i) {
                continue;
            }
            let Some(extent) = file.enclosing_fn(i) else {
                continue;
            };
            let key = (extent.start, extent.end);
            if reported.contains(&key) || fn_has_guard(file, extent.start, extent.end) {
                continue;
            }
            reported.push(key);
            out.push(Diagnostic {
                rule: self.id().to_string(),
                path: file.path.clone(),
                line: file.line(i),
                message: format!(
                    "`{}` in `{}` emits trace spans without an obs gate — guard the path \
                     with `tracer.enabled()` / `pp_obs::is_enabled()` (or assert the \
                     caller's gate with `debug_assert!(tracer.enabled(), …)`)",
                    file.text(i),
                    extent.name
                ),
            });
        }
    }
}

/// Whether the function body `[start, end)` contains a recognized gate.
fn fn_has_guard(file: &SourceFile, start: usize, end: usize) -> bool {
    for i in start..end.min(file.len()) {
        match file.text(i) {
            "is_enabled" => return true,
            "enabled" if i > 0 && file.text(i - 1) == "." => return true,
            "cfg" if file.matches(i + 1, &["(", "feature"]) => return true,
            _ => {}
        }
    }
    false
}
