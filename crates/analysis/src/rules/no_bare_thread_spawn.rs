//! `no-bare-thread-spawn` — worker threads must keep their `JoinHandle`.
//!
//! The engine's shutdown story (drop → shutdown flag → wake everyone →
//! join every worker) only works because every spawned thread's handle is
//! retained and joined; a discarded handle is a thread that outlives the
//! engine, keeps Arcs alive, and races teardown — the exact failure mode
//! the drop-barrier in `BatchServingEngine` exists to prevent. The rule
//! flags `thread::spawn` calls in statement position (result discarded)
//! and `let _ = thread::spawn(…)` (explicitly discarded) outside test
//! code. Spawns whose handle is bound, pushed, or collected pass.

use super::{skip_balanced, Rule};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct NoBareThreadSpawn;

impl Rule for NoBareThreadSpawn {
    fn id(&self) -> &'static str {
        "no-bare-thread-spawn"
    }

    fn description(&self) -> &'static str {
        "thread::spawn results must be kept and joined (no discarded JoinHandles) \
         outside test code"
    }

    fn check(&self, file: &SourceFile, _config: &LintConfig, out: &mut Vec<Diagnostic>) {
        for i in 0..file.len() {
            if file.text(i) != "thread" || !file.matches(i + 1, &[":", ":", "spawn", "("]) {
                continue;
            }
            if file.is_test(i) {
                continue;
            }
            // Step back over a `std ::` qualifier to the statement context.
            let mut j = i;
            if j >= 2 && file.text(j - 1) == ":" && file.text(j - 2) == ":" {
                // `… :: thread :: spawn` — skip the leading path segment.
                j = j.saturating_sub(3);
            }
            // Statement position alone is not enough: a spawn that is the
            // tail expression of a closure/block (`{ let s = s.clone();
            // thread::spawn(…) }`) has a `;` before it but its handle IS the
            // block's value. The result is discarded only when the call
            // itself is terminated by `;`.
            let call_end = skip_balanced(file, i + 4);
            let ends_stmt = call_end < file.len() && file.text(call_end) == ";";
            let discarded = if j == 0 {
                ends_stmt
            } else {
                match file.text(j.saturating_sub(1)) {
                    ";" | "{" | "}" => ends_stmt,
                    "=" => {
                        // `let _ = thread::spawn(…)` discards the handle.
                        j >= 3 && file.text(j - 2) == "_" && file.text(j - 3) == "let"
                    }
                    _ => false,
                }
            };
            if discarded {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    path: file.path.clone(),
                    line: file.line(i),
                    message: "`thread::spawn` with a discarded JoinHandle — keep the handle \
                              and join it on shutdown (see BatchServingEngine's worker \
                              spawn/join pattern)"
                        .to_string(),
                });
            }
        }
    }
}
