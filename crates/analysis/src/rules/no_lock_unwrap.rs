//! `no-lock-unwrap` — `.lock().unwrap()` / `.lock().expect(…)` in non-test
//! code must go through the named poison-policy helpers.
//!
//! A poisoned mutex means another thread panicked *inside* a critical
//! section. What to do about that is a policy decision, not a call-site
//! decision, and 21 scattered `unwrap()`s each deciding "propagate" by
//! accident is how the policy stays unwritten. The workspace policy lives
//! in `pp_obs::sync`:
//!
//! * `lock_or_panic` — engine-critical state (shard queues, wakeup
//!   mutexes): escalate with context naming the lock, because continuing
//!   on torn queue state could violate per-user ordering;
//! * `lock_recover` — observability-only state (metric lanes, event
//!   rings, report sinks): recover the guard, because a torn counter is
//!   strictly better than taking the engine down with the instrumentation.
//!
//! (Both on `pp_obs::sync::LockPolicy`.) The same applies to
//! `.read()`/`.write()` on a std `RwLock`. Test code is exempt (a test
//! unwrapping a poisoned lock *wants* the panic).

use super::Rule;
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct NoLockUnwrap;

impl Rule for NoLockUnwrap {
    fn id(&self) -> &'static str {
        "no-lock-unwrap"
    }

    fn description(&self) -> &'static str {
        ".lock().unwrap()/expect() must go through the pp_obs::sync poison-policy \
         helpers (lock_or_panic / lock_recover) outside test code"
    }

    fn check(&self, file: &SourceFile, _config: &LintConfig, out: &mut Vec<Diagnostic>) {
        for i in 0..file.len() {
            // `. lock ( ) . unwrap|expect (` — the empty argument list
            // keeps io::Read::read(&mut buf) and friends from matching.
            if i + 6 >= file.len() {
                continue;
            }
            let method = file.text(i + 1);
            if file.text(i) != "."
                || !matches!(method, "lock" | "read" | "write")
                || file.text(i + 2) != "("
                || file.text(i + 3) != ")"
                || file.text(i + 4) != "."
                || !matches!(file.text(i + 5), "unwrap" | "expect")
                || file.text(i + 6) != "("
            {
                continue;
            }
            if file.is_test(i) {
                continue;
            }
            let consumer = file.text(i + 5);
            out.push(Diagnostic {
                rule: self.id().to_string(),
                path: file.path.clone(),
                line: file.line(i),
                message: format!(
                    "`.{method}().{consumer}(…)` decides the poison policy at the call site — \
                     use `pp_obs::sync::LockPolicy::{{lock_or_panic, lock_recover}}` so the \
                     policy is named and centralized"
                ),
            });
        }
    }
}
