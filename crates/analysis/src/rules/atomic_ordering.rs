//! `atomic-ordering` — `Ordering::Relaxed` is forbidden on cross-thread
//! *protocol* atomics.
//!
//! The serving engine's wakeup protocol hinges on a handful of atomics
//! (`shutdown`, the shard-queue `claimed` flag and `claimant` hint, the
//! lock-free `len` emptiness hint, bench `stop` flags): their stores
//! publish state a *different* thread's load must observe before acting,
//! so they need at least Release/Acquire pairing. Plain stat counters
//! (predictions, steals, idle_ns, histogram buckets, …) are intentionally
//! Relaxed and are not in the protocol table.
//!
//! A deliberate Relaxed on a protocol atomic (a pure hint where staleness
//! only costs a spurious wakeup) must say so:
//! `// pp-lint: allow(atomic-ordering)` plus a justification comment.

use super::Rule;
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct AtomicOrdering;

/// Atomic methods that take `Ordering` arguments.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

impl Rule for AtomicOrdering {
    fn id(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "Ordering::Relaxed is forbidden on cross-thread protocol atomics \
         (shutdown/claim/wakeup-hint); stat counters stay Relaxed"
    }

    fn check(&self, file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>) {
        for i in 0..file.len() {
            if file.text(i) != "Relaxed"
                || i < 2
                || file.text(i - 1) != ":"
                || file.text(i - 2) != ":"
                || i < 3
                || file.text(i - 3) != "Ordering"
            {
                continue;
            }
            if file.is_test(i) {
                continue;
            }
            let Some((method, receiver)) = enclosing_atomic_call(file, i) else {
                continue;
            };
            if config.is_protocol_atomic(&receiver) {
                out.push(Diagnostic {
                    rule: self.id().to_string(),
                    path: file.path.clone(),
                    line: file.line(i),
                    message: format!(
                        "`Ordering::Relaxed` in `{receiver}.{method}(…)` — `{receiver}` is a \
                         cross-thread protocol atomic and needs Acquire/Release (or stronger); \
                         annotate with `// pp-lint: allow(atomic-ordering)` if the relaxed \
                         ordering is deliberate"
                    ),
                });
            }
        }
    }
}

/// Walks outward from the `Relaxed` token at `i` to the innermost atomic
/// method call containing it, returning `(method, receiver_ident)`.
///
/// Non-atomic enclosing calls (`u64::try_from(x.load(Relaxed))` resolves
/// the `load`, not the `try_from`) are stepped through; an unmatchable
/// receiver (chained/indexed expression) yields `None`.
fn enclosing_atomic_call(file: &SourceFile, i: usize) -> Option<(String, String)> {
    let mut balance = 0i32;
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match file.text(j) {
            ")" | "]" | "}" => balance += 1,
            "{" => {
                if balance == 0 {
                    return None; // left the expression into a block
                }
                balance -= 1;
            }
            "(" | "[" => {
                if balance == 0 {
                    // `j` is an unmatched opening paren: a call we are
                    // inside. Is it an atomic method call?
                    if j >= 3
                        && ATOMIC_METHODS.contains(&file.text(j - 1))
                        && file.text(j - 2) == "."
                        && file.kind(j - 3) == TokKind::Ident
                    {
                        return Some((file.text(j - 1).to_string(), file.text(j - 3).to_string()));
                    }
                    if j >= 3
                        && ATOMIC_METHODS.contains(&file.text(j - 1))
                        && file.text(j - 2) == "."
                    {
                        return None; // atomic call, unclassifiable receiver
                    }
                    // Not an atomic call (a wrapper like `try_from`); keep
                    // walking outward.
                } else {
                    balance -= 1;
                }
            }
            ";" if balance == 0 => return None, // statement boundary
            _ => {}
        }
    }
}
