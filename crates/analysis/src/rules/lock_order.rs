//! `lock-order` — the declared lock hierarchy is the only legal
//! acquisition order.
//!
//! The multi-worker serving engine holds shard-queue claims across state
//! reads and write-backs while other threads take store-shard and
//! observability locks; one out-of-order nested acquisition is all a
//! deadlock needs. The hierarchy (see [`LintConfig::lock_classes`]) says:
//! shard job queue → store shard → store stats → obs lanes → wakeup
//! mutexes. Acquiring a lock whose rank is ≤ the rank of any lock already
//! held is a violation — including same-rank nesting, which is an
//! *undeclared* ordering.
//!
//! ## How held locks are tracked (and the limits of a token scanner)
//!
//! The rule is intra-procedural and guard-liveness is approximated:
//!
//! * `let g = x.lock()…;` (the whole statement is the acquisition chain)
//!   holds the lock until `drop(g)` or the end of the enclosing block;
//! * any other form — `*x.lock()…`, `x.lock()….method()`, an acquisition
//!   embedded in a larger expression — is a temporary, released at the end
//!   of the statement (`;`), mirroring Rust's temporary-drop rule;
//! * receivers that no [`LockClassEntry`](crate::config::LockClassEntry)
//!   classifies are ignored entirely.
//!
//! Calls into other functions are not followed; the hierarchy table is the
//! cross-function contract.

use super::{skip_balanced, Rule};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct LockOrder;

/// Methods that acquire one of the classified locks.
const ACQUIRE_METHODS: [&str; 5] = ["lock", "read", "write", "lock_or_panic", "lock_recover"];

#[derive(Debug)]
struct Held {
    class: &'static str,
    rank: u32,
    ident: String,
    /// Guard binding name (`None` for temporaries).
    binding: Option<String>,
    /// Brace depth at acquisition; scope exit below this depth releases.
    depth: i32,
    line: u32,
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "nested lock acquisitions must follow the declared hierarchy \
         (queue -> store shard -> store stats -> obs lane -> wakeup)"
    }

    fn check(&self, file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i32;
        // The binding of the current `let <ident> = …` statement, if any.
        let mut pending_let: Option<String> = None;
        // Whether a `*` deref appeared after the current statement's `=`
        // (the bound value is then a copy, not the guard).
        let mut saw_assign = false;
        let mut saw_deref_after_assign = false;

        let mut i = 0usize;
        while i < file.len() {
            match file.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                ";" => {
                    held.retain(|h| h.binding.is_some());
                    pending_let = None;
                    saw_assign = false;
                    saw_deref_after_assign = false;
                }
                "let" => {
                    pending_let = None;
                    saw_assign = false;
                    saw_deref_after_assign = false;
                    let mut j = i + 1;
                    if j < file.len() && file.text(j) == "mut" {
                        j += 1;
                    }
                    if j < file.len()
                        && file.kind(j) == crate::lexer::TokKind::Ident
                        && (j + 1 >= file.len()
                            || matches!(file.text(j + 1), ":" | "=" | ";"))
                    {
                        pending_let = Some(file.text(j).to_string());
                    }
                }
                "="
                    // Plain `=` only (not ==, =>, <=, …): in this token
                    // stream `=` is always emitted alone, so just note it.
                    if pending_let.is_some() => {
                        saw_assign = true;
                    }
                "*"
                    if saw_assign => {
                        saw_deref_after_assign = true;
                    }
                "drop"
                    if file.matches(i + 1, &["("])
                        && i + 3 < file.len()
                        && file.text(i + 3) == ")"
                    => {
                        let name = file.text(i + 2).to_string();
                        held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                    }
                "." => {
                    if let Some(acq) = match_acquisition(file, config, i) {
                        // Out-of-order check against everything held.
                        for h in &held {
                            if h.rank >= acq.rank {
                                out.push(Diagnostic {
                                    rule: self.id().to_string(),
                                    path: file.path.clone(),
                                    line: file.line(i),
                                    message: format!(
                                        "acquiring `{}` ({}, rank {}) while holding `{}` \
                                         ({}, rank {}, taken at line {}) violates the \
                                         declared lock hierarchy",
                                        acq.ident, acq.class, acq.rank, h.ident, h.class,
                                        h.rank, h.line
                                    ),
                                });
                            }
                        }
                        // Guard liveness: a clean `let g = <chain>;` binds.
                        let bound = pending_let.clone().filter(|_| {
                            saw_assign
                                && !saw_deref_after_assign
                                && acq.chain_end < file.len()
                                && file.text(acq.chain_end) == ";"
                        });
                        held.push(Held {
                            class: acq.class,
                            rank: acq.rank,
                            ident: acq.ident,
                            binding: bound,
                            depth,
                            line: file.line(i),
                        });
                        i = acq.call_end;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

struct Acquisition {
    class: &'static str,
    rank: u32,
    ident: String,
    /// `sig` index just past the acquisition call's closing paren.
    call_end: usize,
    /// `sig` index just past the whole `.unwrap()`/`.expect(…)`/`?` chain.
    chain_end: usize,
}

/// Matches `<receiver-ident> . <acquire-method> (` at the `.` token `i`,
/// classified by the config. Returns the call and chain extents.
fn match_acquisition(file: &SourceFile, config: &LintConfig, i: usize) -> Option<Acquisition> {
    if i == 0 || i + 2 >= file.len() {
        return None;
    }
    let method = file.text(i + 1);
    if !ACQUIRE_METHODS.contains(&method) || file.text(i + 2) != "(" {
        return None;
    }
    if file.kind(i - 1) != crate::lexer::TokKind::Ident {
        return None; // chained/indexed receiver — unclassifiable
    }
    let ident = file.text(i - 1).to_string();
    let (class, rank) = config.lock_class(&file.path, &ident)?;
    let call_end = skip_balanced(file, i + 2);
    // Skip a trailing `.unwrap()` / `.expect(…)` / `?` chain.
    let mut j = call_end;
    loop {
        if j < file.len() && file.text(j) == "?" {
            j += 1;
            continue;
        }
        if j + 2 < file.len()
            && file.text(j) == "."
            && matches!(file.text(j + 1), "unwrap" | "expect")
            && file.text(j + 2) == "("
        {
            j = skip_balanced(file, j + 2);
            continue;
        }
        break;
    }
    Some(Acquisition {
        class,
        rank,
        ident,
        call_end,
        chain_end: j,
    })
}
