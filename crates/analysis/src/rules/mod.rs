//! The rule set. Each rule is a pure function over one [`SourceFile`] —
//! no cross-file state — so rules are independently fixture-testable and
//! trivially parallelizable.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod atomic_ordering;
mod lock_order;
mod no_bare_thread_spawn;
mod no_lock_unwrap;
mod obs_gating;
mod unit_suffix;

pub use atomic_ordering::AtomicOrdering;
pub use lock_order::LockOrder;
pub use no_bare_thread_spawn::NoBareThreadSpawn;
pub use no_lock_unwrap::NoLockUnwrap;
pub use obs_gating::ObsGating;
pub use unit_suffix::UnitSuffix;

/// A single lint rule.
pub trait Rule {
    /// Stable rule id, as used in `// pp-lint: allow(<id>)`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn description(&self) -> &'static str;
    /// Appends diagnostics for `file` to `out`.
    fn check(&self, file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>);
}

/// All shipped rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(LockOrder),
        Box::new(AtomicOrdering),
        Box::new(NoLockUnwrap),
        Box::new(ObsGating),
        Box::new(UnitSuffix),
        Box::new(NoBareThreadSpawn),
    ]
}

/// Shared helper: the `sig` index just past a balanced `(…)` group whose
/// opening paren is at `open`. Returns `file.len()` on unbalanced input.
pub(crate) fn skip_balanced(file: &SourceFile, open: usize) -> usize {
    debug_assert_eq!(file.text(open), "(");
    let mut depth = 0i32;
    let mut i = open;
    while i < file.len() {
        match file.text(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    file.len()
}
