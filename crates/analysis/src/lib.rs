//! # pp-lint
//!
//! Workspace-native static analysis for the predictive-precompute repo:
//! the concurrency and instrumentation invariants PRs 7–8 introduced
//! (lock hierarchy, wakeup-protocol atomic orderings, poison policy,
//! obs gating, unit naming, thread-spawn discipline) as machine-checked
//! rules instead of review-lore.
//!
//! Std-only by design: a hand-rolled token scanner ([`lexer`]) rather
//! than `syn`, so the analysis pass has zero dependencies on the code it
//! analyzes (including the offline shims) and can never be broken by it.
//!
//! * [`lexer`] / [`source`] — token scanner and per-file source model
//!   (suppressions, test regions, function extents);
//! * [`rules`] — the six shipped rules, each a pure function per file;
//! * [`config`] — the workspace-specific tables (lock hierarchy, protocol
//!   atomics);
//! * [`engine`] — workspace walk, suppression accounting,
//!   unused-suppression reporting;
//! * [`diag`] — diagnostics plus human `file:line` and JSON renderings.
//!
//! Suppress a finding with a justification comment:
//!
//! ```text
//! // Stale hints only cost a spurious wakeup. pp-lint: allow(atomic-ordering)
//! let claimant = queue.claimant.load(Ordering::Relaxed);
//! ```
//!
//! Unused suppressions are themselves violations (`unused-suppression`),
//! so allows cannot go stale silently. See `docs/static-analysis.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use config::LintConfig;
pub use diag::{to_json, Diagnostic};
pub use engine::{find_workspace_root, lint_source, lint_workspace, LintReport};
