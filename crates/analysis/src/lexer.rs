//! A small Rust token scanner — just enough lexical structure for the
//! rule engine: identifiers, punctuation, literals, and comments, each
//! tagged with its 1-based source line.
//!
//! This is deliberately *not* a parser (no `syn` — the workspace builds
//! offline against shims, and the lint tool must never be broken by a
//! dependency it analyzes). The scanner is exact about the things that
//! would otherwise corrupt token-level matching: nested block comments,
//! string/char/byte/raw-string literals, and the lifetime-vs-char-literal
//! ambiguity. Everything the rules match on is therefore real code, never
//! text inside a literal or comment.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `lock`, `Ordering`, …).
    Ident,
    /// A single punctuation character (`.`, `(`, `;`, …).
    Punct,
    /// A string/char/byte/numeric literal (text preserved verbatim).
    Literal,
    /// A `//…` or `/*…*/` comment, text preserved (suppressions live here).
    Comment,
    /// A lifetime such as `'a` (kept distinct so `'a` never looks like an
    /// unterminated char literal).
    Lifetime,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Scans `src` into a token stream. Unknown bytes become single-character
/// punctuation tokens; the scanner never fails.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `line` for every newline in `bytes[from..to]`.
    let count_lines = |from: usize, to: usize, line: &mut u32| {
        *line += bytes[from..to].iter().filter(|&&b| b == b'\n').count() as u32;
    };

    while i < bytes.len() {
        let b = bytes[i];
        let start_line = line;
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = bytes[i..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(bytes.len(), |p| i + p);
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: src[i..end].to_string(),
                    line: start_line,
                });
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                count_lines(i, j, &mut line);
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            b'"' => {
                let j = scan_string(bytes, i);
                count_lines(i, j, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): after the
                // quote, an identifier character NOT followed by a closing
                // quote is a lifetime.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic())
                    && after != Some(b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                    {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line: start_line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    count_lines(i, j.min(bytes.len()), &mut line);
                    let j = j.min(bytes.len());
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: src[i..j].to_string(),
                        line: start_line,
                    });
                    i = j;
                }
            }
            // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#.
            b'r' | b'b' if is_raw_or_byte_string_start(bytes, i) => {
                let j = scan_raw_or_byte_string(bytes, i);
                count_lines(i, j, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                // Raw identifier `r#ident` — strip the prefix so rules see
                // the plain name.
                let mut text = &src[i..j];
                if text == "r" && bytes.get(j) == Some(&b'#') {
                    let mut k = j + 1;
                    while k < bytes.len() && (bytes[k] == b'_' || bytes[k].is_ascii_alphanumeric())
                    {
                        k += 1;
                    }
                    text = &src[j + 1..k];
                    i = k;
                } else {
                    i = j;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j];
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        j += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(bytes[j - 1], b'e' | b'E')
                        && !src[i..j].starts_with("0x")
                        && !src[i..j].starts_with("0b")
                        && !src[i..j].starts_with("0o")
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // Signed exponent: `1.5e-3` is one literal. The radix
                        // guard keeps hex digits (`0xAE-1`) out of this path.
                        j += 1;
                    } else if d == b'.'
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                        && !src[i..j].contains('.')
                    {
                        // `1.5` is one literal; `1.max(2)` is not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + 1].to_string(),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Scans a plain `"…"` string starting at `i` (the opening quote),
/// returning the index just past the closing quote.
fn scan_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Whether the `r`/`b` at `i` starts a raw or byte string/char literal
/// (as opposed to a plain identifier).
fn is_raw_or_byte_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return true; // byte char b'…'
        }
        if bytes.get(j) == Some(&b'"') {
            return true; // byte string b"…"
        }
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1; // br…
    } else {
        j += 1; // r…
    }
    // After `r`/`br`: any number of `#` then `"` makes a raw string. A bare
    // `r#ident` (raw identifier) has an identifier char after the `#`.
    let mut k = j;
    while bytes.get(k) == Some(&b'#') {
        k += 1;
    }
    bytes.get(k) == Some(&b'"')
}

/// Scans a raw/byte string (or byte char) starting at `i`, returning the
/// index just past its end.
fn scan_raw_or_byte_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            // b'…' byte char, escapes allowed.
            let mut k = j + 1;
            while k < bytes.len() {
                match bytes[k] {
                    b'\\' => k += 2,
                    b'\'' => return k + 1,
                    _ => k += 1,
                }
            }
            return bytes.len();
        }
        if bytes.get(j) == Some(&b'"') {
            return scan_string(bytes, j);
        }
        j += 1; // br
    } else {
        j += 1; // r
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'), "caller checked raw-string start");
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn scans_idents_puncts_and_lines() {
        let toks = lex("let x = a.lock();\nlet y = 2;");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "a", "lock", "let", "y"]);
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn code_inside_strings_and_comments_is_not_tokenized_as_code() {
        let toks = kinds("// x.lock().unwrap()\nlet s = \".lock().unwrap()\";");
        assert!(toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .all(|(_, t)| t != "lock" && t != "unwrap"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Comment).count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let toks = kinds("/* a /* b */ c */ fn f() { r#\"x \" y\"# }");
        let idents: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(idents, ["fn", "f"]);
    }

    #[test]
    fn lifetimes_do_not_swallow_following_code() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "'x'"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "str"));
    }

    #[test]
    fn numeric_literals_stay_single_tokens() {
        let toks = kinds("let a = 1.5e-3 + 0xff_u64 + 2.max(3);");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "1.5e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "0xff_u64"));
        // `2.max` must split so `max` stays an ident.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
    }
}
