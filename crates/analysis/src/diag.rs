//! Diagnostics and their human / machine renderings.
//!
//! JSON is emitted by hand (a ~20-line escaper) rather than through the
//! workspace serde shims: the lint tool analyzes those shims' consumers and
//! must stay dependency-free so it can never be broken by the code it
//! checks.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`lock-order`, …, or `unused-suppression`).
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of the violation and the expected idiom.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` for a JSON string body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a diagnostic list as a JSON array of objects with `rule`,
/// `path`, `line`, and `message` fields (stable field order), for the CI
/// artifact.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}{}\n",
            json_escape(&d.rule),
            json_escape(&d.path),
            d.line,
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_orders_fields() {
        let diags = vec![Diagnostic {
            rule: "lock-order".into(),
            path: "a/b.rs".into(),
            line: 7,
            message: "say \"no\"\n".into(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"rule\":\"lock-order\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("say \\\"no\\\"\\n"));
    }
}
