//! The workspace-specific knowledge the rules run against: the declared
//! lock hierarchy, the cross-thread protocol atomics, and path filters.
//!
//! This is the file to edit when the engine grows a new lock or protocol
//! atomic — see `docs/static-analysis.md` ("Adding a rule / extending the
//! tables").

/// One entry of the lock classification table: a receiver identifier (the
/// token before `.lock()` / `.read()` / `.write()`) mapped to a named lock
/// class and its rank in the acquisition order.
#[derive(Debug, Clone, Copy)]
pub struct LockClassEntry {
    /// Human name of the class (shared by several idents).
    pub class: &'static str,
    /// Acquisition rank: while holding a lock of rank `r`, only locks of
    /// strictly greater rank may be acquired.
    pub rank: u32,
    /// Receiver identifier that selects this class.
    pub ident: &'static str,
    /// Restrict the entry to paths containing this substring (`None` = any
    /// file). Receiver identifiers are not globally unique (`inner` is a
    /// store in pp-serving and an event ring in pp-obs), so entries are
    /// scoped to the files where the name means that lock.
    pub path_contains: Option<&'static str>,
}

/// Tunables + tables consumed by the rules.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// The declared lock hierarchy (see [`LockClassEntry`]). Ascending rank
    /// is the only legal acquisition order; same-rank nesting is a
    /// violation too (it is an undeclared ordering).
    pub lock_classes: Vec<LockClassEntry>,
    /// Field names of cross-thread *protocol* atomics: `Ordering::Relaxed`
    /// on these is a violation unless explicitly annotated. Plain stat
    /// counters (predictions, idle_ns, …) are not listed and stay Relaxed.
    pub protocol_atomics: Vec<&'static str>,
    /// Path substrings excluded from the workspace walk entirely.
    pub skip_paths: Vec<&'static str>,
    /// Path substrings where the obs-gating rule does not apply (the
    /// observability crate itself is the implementation, not a consumer).
    pub obs_gating_exempt_paths: Vec<&'static str>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            // The workspace lock hierarchy, outermost first:
            //   shard job queue (10) → store shard (20) → store stats (25)
            //     → obs lanes/rings (30) → wakeup mutexes (40).
            // The wakeup mutexes (work generation, per-worker signal) are
            // innermost: nothing may be acquired while holding them, which
            // is exactly the discipline the two-channel wakeup protocol in
            // pp-serving::batch relies on to stay deadlock-free.
            lock_classes: vec![
                LockClassEntry {
                    class: "queue",
                    rank: 10,
                    ident: "jobs",
                    path_contains: Some("crates/serving/"),
                },
                LockClassEntry {
                    class: "store-shard",
                    rank: 20,
                    ident: "inner",
                    path_contains: Some("crates/serving/src/kv_store.rs"),
                },
                LockClassEntry {
                    class: "store-shard",
                    rank: 20,
                    ident: "shard",
                    path_contains: Some("crates/precompute/src/cache.rs"),
                },
                LockClassEntry {
                    class: "store-shard",
                    rank: 20,
                    ident: "shards",
                    path_contains: Some("crates/precompute/src/cache.rs"),
                },
                LockClassEntry {
                    class: "store-stats",
                    rank: 25,
                    ident: "stats",
                    path_contains: Some("crates/serving/src/kv_store.rs"),
                },
                LockClassEntry {
                    class: "store-stats",
                    rank: 25,
                    ident: "stats",
                    path_contains: Some("crates/precompute/src/cache.rs"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "lane",
                    path_contains: Some("crates/obs/"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "lanes",
                    path_contains: Some("crates/obs/"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "inner",
                    path_contains: Some("crates/obs/src/events.rs"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "counters",
                    path_contains: Some("crates/obs/src/registry.rs"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "gauges",
                    path_contains: Some("crates/obs/src/registry.rs"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "histograms",
                    path_contains: Some("crates/obs/src/registry.rs"),
                },
                LockClassEntry {
                    class: "obs-lane",
                    rank: 30,
                    ident: "sink",
                    path_contains: Some("crates/bench/"),
                },
                LockClassEntry {
                    class: "wakeup",
                    rank: 40,
                    ident: "work_gen",
                    path_contains: Some("crates/serving/"),
                },
                LockClassEntry {
                    class: "wakeup",
                    rank: 40,
                    ident: "seq",
                    path_contains: Some("crates/serving/"),
                },
            ],
            // The wakeup / claim / shutdown protocol atomics. `len` is the
            // shard queues' lock-free emptiness hint — its Release store /
            // Acquire load pairing is what lets gather() skip idle shards
            // without locking, so Relaxed there is a real bug.
            protocol_atomics: vec!["shutdown", "stop", "claimed", "claimant", "len"],
            skip_paths: vec!["/target/", "shims/", "crates/analysis/tests/fixtures/"],
            obs_gating_exempt_paths: vec!["crates/obs/"],
        }
    }
}

impl LintConfig {
    /// Classifies a lock receiver identifier in `path`, returning the
    /// matching `(class, rank)`.
    pub fn lock_class(&self, path: &str, ident: &str) -> Option<(&'static str, u32)> {
        self.lock_classes
            .iter()
            .find(|e| {
                e.ident == ident && e.path_contains.is_none_or(|needle| path.contains(needle))
            })
            .map(|e| (e.class, e.rank))
    }

    /// Whether `ident` names a cross-thread protocol atomic.
    pub fn is_protocol_atomic(&self, ident: &str) -> bool {
        self.protocol_atomics.contains(&ident)
    }
}
