//! `pp-lint` CLI: lint the workspace, print human `file:line` diagnostics,
//! optionally write machine-readable JSON, and (with `--deny`) fail on any
//! violation or unused suppression — the CI entry point.

use pp_lint::{find_workspace_root, lint_workspace, rules, to_json, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pp-lint — workspace-native static analysis for concurrency and instrumentation invariants

USAGE:
    pp-lint [--root <dir>] [--json <path>] [--deny] [--list-rules]

OPTIONS:
    --root <dir>    Workspace root to lint (default: nearest ancestor whose
                    Cargo.toml declares [workspace])
    --json <path>   Also write diagnostics as a JSON array to <path>
    --deny          Exit non-zero if any diagnostic (including an unused
                    suppression) is reported — the CI gate mode
    --list-rules    Print the rule ids and descriptions, then exit
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a value"),
            },
            "--deny" => deny = true,
            "--list-rules" => {
                for rule in rules::all_rules() {
                    println!("{:<22} {}", rule.id(), rule.description());
                }
                println!(
                    "{:<22} every `pp-lint: allow(…)` must suppress something",
                    "unused-suppression"
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("pp-lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config = LintConfig::default();
    let report = match lint_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pp-lint: walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, to_json(&report.diagnostics)) {
            eprintln!("pp-lint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "pp-lint: {} violation{} across {} files ({} rules, {} suppression{} honored)",
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        report.files_scanned,
        rules::all_rules().len(),
        report.suppressions_used,
        if report.suppressions_used == 1 {
            ""
        } else {
            "s"
        },
    );

    if deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pp-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
