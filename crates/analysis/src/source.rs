//! Per-file source model shared by every rule: the significant (non-comment)
//! token view, `// pp-lint: allow(rule)` suppressions, `#[cfg(test)]` /
//! `#[test]` region detection, and function extents.

use crate::lexer::{lex, Tok, TokKind};

/// One `// pp-lint: allow(rule, …)` suppression comment.
///
/// A suppression covers diagnostics on its own line (trailing comment) and
/// on the following line (own-line comment above the offending statement).
/// Every suppression must suppress at least one diagnostic or the engine
/// reports it as `unused-suppression`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id being allowed.
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// A lexed source file plus the derived structure rules match against.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Whether the whole file is test code (under a `tests/` or `benches/`
    /// directory) — rules that exempt test code skip it entirely.
    pub is_test_file: bool,
    /// The full token stream (comments included).
    pub toks: Vec<Tok>,
    /// Indices into `toks` of significant (non-comment) tokens. All rule
    /// matching walks this view so literals/comments can never match.
    pub sig: Vec<usize>,
    /// Per-`sig`-index flag: true when the token sits inside a
    /// `#[cfg(test)]` module or a `#[test]` function.
    pub in_test: Vec<bool>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Extents of function bodies as `[start, end)` ranges over `sig`
    /// indices (the braces themselves are included), with the function name.
    pub fns: Vec<FnExtent>,
}

/// One function body's extent over the significant-token view.
#[derive(Debug, Clone)]
pub struct FnExtent {
    /// Function name.
    pub name: String,
    /// First `sig` index of the body's opening `{`.
    pub start: usize,
    /// One past the `sig` index of the body's closing `}`.
    pub end: usize,
}

impl SourceFile {
    /// Lexes `src` and derives the structure rules need. `path` should be
    /// workspace-relative with `/` separators; `is_test_file` marks whole
    /// files of test code (integration tests, benches).
    pub fn parse(path: &str, src: &str, is_test_file: bool) -> Self {
        let toks = lex(src);
        let sig: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let suppressions = parse_suppressions(&toks);
        let in_test = mark_test_regions(&toks, &sig);
        let fns = find_fn_extents(&toks, &sig);
        Self {
            path: path.to_string(),
            is_test_file,
            toks,
            sig,
            in_test,
            suppressions,
            fns,
        }
    }

    /// The text of significant token `i` (an index into [`SourceFile::sig`]).
    pub fn text(&self, i: usize) -> &str {
        &self.toks[self.sig[i]].text
    }

    /// The kind of significant token `i`.
    pub fn kind(&self, i: usize) -> TokKind {
        self.toks[self.sig[i]].kind
    }

    /// The 1-based line of significant token `i`.
    pub fn line(&self, i: usize) -> u32 {
        self.toks[self.sig[i]].line
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// Whether significant token `i` is inside test code (either a test
    /// region or a whole-file test).
    pub fn is_test(&self, i: usize) -> bool {
        self.is_test_file || self.in_test[i]
    }

    /// The innermost function extent containing significant token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnExtent> {
        self.fns
            .iter()
            .filter(|f| f.start <= i && i < f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// Whether tokens `[i, i + pat.len())` match `pat` textually.
    pub fn matches(&self, i: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, p)| i + k < self.len() && self.text(i + k) == *p)
    }
}

/// Extracts `pp-lint: allow(rule, …)` suppressions from comment tokens.
fn parse_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for tok in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation text —
        // prose *about* suppressions must not itself suppress (or count as
        // unused); only plain `//` and `/*` comments are annotations.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| tok.text.starts_with(p))
        {
            continue;
        }
        let Some(pos) = tok.text.find("pp-lint:") else {
            continue;
        };
        let rest = tok.text[pos + "pp-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(end) = rest.find(')') else {
            continue;
        };
        for rule in rest[..end].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(Suppression {
                    rule: rule.to_string(),
                    line: tok.line,
                });
            }
        }
    }
    out
}

/// Marks `sig` tokens inside `#[cfg(test)]` items and `#[test]` functions.
fn mark_test_regions(toks: &[Tok], sig: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; sig.len()];
    let text = |i: usize| -> &str { &toks[sig[i]].text };
    let mut i = 0usize;
    while i < sig.len() {
        // Match `#[cfg(test)]` or `#[test]` (also `#[cfg(all(test, …))]`
        // loosely: any attribute whose first path segment list contains a
        // bare `test` token before the closing `]`).
        if text(i) == "#" && i + 1 < sig.len() && text(i + 1) == "[" {
            // Find the attribute's closing `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut has_test = false;
            while j < sig.len() {
                match text(j) {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && j < sig.len() {
                // The attribute gates the next item: skip further
                // attributes, then mark from the item's first token to the
                // end of its brace-matched body.
                let mut k = j + 1;
                while k + 1 < sig.len() && text(k) == "#" && text(k + 1) == "[" {
                    let mut d = 0i32;
                    while k < sig.len() {
                        match text(k) {
                            "[" | "(" => d += 1,
                            "]" | ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Find the body's opening brace, then match it.
                let mut open = k;
                while open < sig.len() && text(open) != "{" && text(open) != ";" {
                    open += 1;
                }
                if open < sig.len() && text(open) == "{" {
                    let mut d = 0i32;
                    let mut end = open;
                    while end < sig.len() {
                        match text(end) {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    for flag in in_test.iter_mut().take((end + 1).min(sig.len())).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = j.max(i) + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Finds function-body extents: for each `fn name…{`, the `sig` range of
/// the brace-matched body.
fn find_fn_extents(toks: &[Tok], sig: &[usize]) -> Vec<FnExtent> {
    let text = |i: usize| -> &str { &toks[sig[i]].text };
    let mut fns = Vec::new();
    for i in 0..sig.len() {
        if text(i) != "fn" || toks[sig[i]].kind != TokKind::Ident {
            continue;
        }
        let Some(name_idx) = (i + 1 < sig.len()).then_some(i + 1) else {
            continue;
        };
        if toks[sig[name_idx]].kind != TokKind::Ident {
            continue; // `fn` in a type position (`fn()` pointers)
        }
        let name = text(name_idx).to_string();
        // Scan to the body's opening `{` at paren depth 0 (skipping the
        // argument list and any parenthesized where-clause bounds). A `;`
        // at depth 0 first means a bodyless declaration (trait method).
        let mut depth = 0i32;
        let mut j = name_idx + 1;
        let mut open = None;
        while j < sig.len() {
            match text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let mut d = 0i32;
        let mut end = open;
        while end < sig.len() {
            match text(end) {
                "{" => d += 1,
                "}" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        fns.push(FnExtent {
            name,
            start: open,
            end: (end + 1).min(sig.len()),
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressions_parse_rule_lists() {
        let f = SourceFile::parse(
            "x.rs",
            "// pp-lint: allow(lock-order, atomic-ordering)\nlet a = 1;",
            false,
        );
        let rules: Vec<&str> = f.suppressions.iter().map(|s| s.rule.as_str()).collect();
        assert_eq!(rules, ["lock-order", "atomic-ordering"]);
        assert_eq!(f.suppressions[0].line, 1);
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn helper() { spawn(); }\n}\nfn live2() {}";
        let f = SourceFile::parse("x.rs", src, false);
        let spawn = (0..f.len()).find(|&i| f.text(i) == "spawn").unwrap();
        assert!(f.is_test(spawn));
        let live2 = (0..f.len()).find(|&i| f.text(i) == "live2").unwrap();
        assert!(!f.is_test(live2));
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[test]\nfn check() { body(); }\nfn live() { other(); }";
        let f = SourceFile::parse("x.rs", src, false);
        let body = (0..f.len()).find(|&i| f.text(i) == "body").unwrap();
        assert!(f.is_test(body));
        let other = (0..f.len()).find(|&i| f.text(i) == "other").unwrap();
        assert!(!f.is_test(other));
    }

    #[test]
    fn fn_extents_cover_bodies_and_nested_fns_resolve_innermost() {
        let src = "fn outer() { inner_call(); fn inner() { deep(); } }";
        let f = SourceFile::parse("x.rs", src, false);
        assert_eq!(f.fns.len(), 2);
        let deep = (0..f.len()).find(|&i| f.text(i) == "deep").unwrap();
        assert_eq!(f.enclosing_fn(deep).unwrap().name, "inner");
        let call = (0..f.len()).find(|&i| f.text(i) == "inner_call").unwrap();
        assert_eq!(f.enclosing_fn(call).unwrap().name, "outer");
    }
}
