//! The driver: walk the workspace, run every rule over every file, apply
//! suppressions, and report unused suppressions.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::{all_rules, Rule};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving diagnostics (post-suppression, including any
    /// `unused-suppression` findings), sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of suppressions that matched at least one diagnostic.
    pub suppressions_used: usize,
}

/// Lints one in-memory source. `path` selects path-scoped config entries
/// (lock classes, exemptions); `is_test_file` marks whole-file test code.
/// Suppressions are applied and unused ones reported, exactly as in a
/// workspace run — this is the entry point the fixture tests use.
pub fn lint_source(
    path: &str,
    src: &str,
    is_test_file: bool,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let rules = all_rules();
    lint_file(&rules, path, src, is_test_file, config, &mut 0)
}

fn lint_file(
    rules: &[Box<dyn Rule>],
    path: &str,
    src: &str,
    is_test_file: bool,
    config: &LintConfig,
    suppressions_used: &mut usize,
) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, src, is_test_file);
    let mut raw = Vec::new();
    for rule in rules {
        rule.check(&file, config, &mut raw);
    }
    // A suppression on line L covers diagnostics on L (trailing comment)
    // and L+1 (comment on its own line above the offending statement).
    let mut used = vec![false; file.suppressions.len()];
    let mut kept = Vec::new();
    for diag in raw {
        let mut suppressed = false;
        for (k, sup) in file.suppressions.iter().enumerate() {
            if sup.rule == diag.rule && (sup.line == diag.line || sup.line + 1 == diag.line) {
                used[k] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(diag);
        }
    }
    for (k, sup) in file.suppressions.iter().enumerate() {
        if used[k] {
            *suppressions_used += 1;
        } else {
            kept.push(Diagnostic {
                rule: "unused-suppression".to_string(),
                path: path.to_string(),
                line: sup.line,
                message: format!(
                    "`pp-lint: allow({})` suppresses nothing — remove it (stale allows \
                     hide future violations)",
                    sup.rule
                ),
            });
        }
    }
    kept
}

/// Lints every `.rs` file under `root` (the workspace checkout), honoring
/// [`LintConfig::skip_paths`].
pub fn lint_workspace(root: &Path, config: &LintConfig) -> std::io::Result<LintReport> {
    let rules = all_rules();
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let is_test_file = rel_str.contains("/tests/")
            || rel_str.starts_with("tests/")
            || rel_str.contains("/benches/");
        report.files_scanned += 1;
        report.diagnostics.extend(lint_file(
            &rules,
            &rel_str,
            &src,
            is_test_file,
            config,
            &mut report.suppressions_used,
        ));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &LintConfig,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if config
            .skip_paths
            .iter()
            .any(|skip| rel.contains(skip) || format!("{rel}/").contains(skip))
        {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
