// Fixture: named poison policies and test code that must NOT trip
// no-lock-unwrap. Never compiled — token-scanned only.

fn named_policies(state: &State, lanes: &Lanes) {
    let g = state.inner.lock_or_panic("engine state");
    drop(g);
    let h = lanes.ring.lock_recover();
    drop(h);
}

fn fallible(state: &State) -> Option<usize> {
    // Propagating the result is a policy too — just not an inline unwrap.
    state.inner.lock().ok().map(|g| g.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let g = STATE.inner.lock().unwrap();
        drop(g);
    }
}
