// Fixture: gated span emission that must NOT trip obs-gating. Never
// compiled — token-scanned only.

fn runtime_gated(tracer: &Tracer, user: u64) {
    if !tracer.enabled() {
        return;
    }
    let trace = tracer.trace_for(user);
    let _ = trace;
}

fn const_gated(user: u64) {
    if pp_obs::is_enabled() {
        let trace = Tracer::global().trace_for(user);
        let _ = trace;
    }
}

fn caller_contract(tracer: &Tracer, user: u64) {
    // The debug_assert documents (and checks) the caller's gate.
    debug_assert!(tracer.enabled(), "span emission must be trace-gated");
    let trace = tracer.trace_for(user);
    let _ = trace;
}

fn feature_gated(tracer: &Tracer) -> u64 {
    #[cfg(feature = "enabled")]
    {
        return tracer.next_batch_id();
    }
    0
}

fn metrics_are_not_triggers(obs: &ServingObs) {
    // Counters/histograms fold to no-ops inside pp-obs; not span emission.
    obs.batches.inc();
    obs.batch_latency.record_ns(5);
}
