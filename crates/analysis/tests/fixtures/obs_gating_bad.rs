// Fixture: span emission with no obs gate anywhere in the function.
// Never compiled — token-scanned only.

fn emit_ungated(tracer: &Tracer, user: u64) {
    let trace = tracer.trace_for(user); // EXPECT: obs-gating
    let span = SpanBuilder::new(trace).stage(Stage::Forward);
    span.finish();
}

fn ids_ungated(tracer: &Tracer) -> u64 {
    tracer.next_batch_id() // EXPECT: obs-gating
}
