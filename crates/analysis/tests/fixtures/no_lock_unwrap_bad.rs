// Fixture: call sites deciding the poison policy inline instead of naming
// it through pp_obs::sync::LockPolicy. Never compiled — token-scanned only.

fn inline_policy(state: &State) {
    let g = state.inner.lock().unwrap(); // EXPECT: no-lock-unwrap
    drop(g);
    let h = state.inner.lock().expect("state poisoned"); // EXPECT: no-lock-unwrap
    drop(h);
}

fn chained(state: &State) -> usize {
    state.inner.lock().unwrap().len() // EXPECT: no-lock-unwrap
}
