// Fixture: out-of-order and same-rank nested acquisitions, linted under the
// synthetic path crates/serving/src/fixture.rs (queue rank 10, wakeup rank
// 40). Never compiled — token-scanned only.

fn inverted_hierarchy(shared: &Shared, queue: &ShardQueue) {
    let gen = shared.work_gen.lock_or_panic("work generation"); // wakeup, rank 40
    let q = queue.jobs.lock_or_panic("shard queue"); // EXPECT: lock-order
    drop(q);
    drop(gen);
}

fn same_rank_nesting(a: &ShardQueue, b: &ShardQueue) {
    let qa = a.jobs.lock_or_panic("shard queue");
    let qb = b.jobs.lock_or_panic("shard queue"); // EXPECT: lock-order
    drop(qb);
    drop(qa);
}

fn held_across_scope(shared: &Shared, queue: &ShardQueue) {
    let gen = shared.work_gen.lock_or_panic("work generation");
    {
        let q = queue.jobs.lock_or_panic("shard queue"); // EXPECT: lock-order
        drop(q);
    }
    drop(gen);
}
