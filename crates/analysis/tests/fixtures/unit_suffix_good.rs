// Fixture: unit-suffixed (or out-of-scope) bindings that must NOT trip
// unit-suffix. Never compiled — token-scanned only.

fn suffixed(started: Instant, payload: &[u8]) {
    let wait_ms = started.elapsed().as_millis();
    let idle_ns = started.elapsed().as_nanos();
    let ms = started.elapsed().as_millis();
    let payload_bytes = core::mem::size_of_val(payload);
    let _ = (wait_ms, idle_ns, ms, payload_bytes);
}

fn converted(started: Instant) {
    // Mixed units in one expression: a conversion, so the scanner skips it.
    let ratio = started.elapsed().as_nanos() as f64 / WINDOW.as_millis() as f64;
    // Seconds are deliberately out of scope (routinely rescaled inline).
    let sorted_us = started.elapsed().as_secs_f64() * 1e6;
    let _ = (ratio, sorted_us);
}

fn closure_bodies_are_not_this_binding(sink: &Sink, scope: &Scope) {
    // The ms value is computed *inside* the spawned closure; the binding
    // itself holds a JoinHandle.
    let sampler = scope.spawn(|| {
        let tick_ms = now().as_millis();
        sink.tick(tick_ms);
    });
    let _ = sampler;
}

fn fields(started: Instant) -> Sample {
    Sample {
        elapsed_us: started.elapsed().as_micros(),
        label: "x",
    }
}
