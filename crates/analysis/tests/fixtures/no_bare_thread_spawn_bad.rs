// Fixture: spawned threads whose JoinHandle is discarded. Never compiled —
// token-scanned only.

fn fire_and_forget(shared: &Shared) {
    thread::spawn(|| background(shared)); // EXPECT: no-bare-thread-spawn
    let _ = thread::spawn(|| background(shared)); // EXPECT: no-bare-thread-spawn
    std::thread::spawn(move || background(shared)); // EXPECT: no-bare-thread-spawn
}
