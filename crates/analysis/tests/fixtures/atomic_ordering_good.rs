// Fixture: orderings that must NOT trip atomic-ordering — stat counters
// stay Relaxed, protocol atomics already Acquire/Release/SeqCst, annotated
// deliberate Relaxed, and test code. Never compiled — token-scanned only.

fn stat_counters(shared: &Shared) {
    // Not in the protocol table: monotonic stat counters are fine Relaxed.
    shared.predictions.fetch_add(1, Ordering::Relaxed);
    shared.idle_ns.fetch_add(5, Ordering::Relaxed);
    let _ = shared.batches.load(Ordering::Relaxed);
}

fn protocol_strong(shared: &Shared, queue: &ShardQueue) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = queue.claimant.load(Ordering::Acquire);
    queue.claimant.store(1, Ordering::Release);
    queue.len.store(0, Ordering::Release);
}

fn deliberate_relaxed(queue: &ShardQueue) {
    // A stale hint only costs a spurious wakeup. pp-lint: allow(atomic-ordering)
    let hint = queue.claimant.load(Ordering::Relaxed);
    let _ = hint;
}

#[cfg(test)]
mod tests {
    #[test]
    fn relaxed_is_fine_in_tests() {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
}
