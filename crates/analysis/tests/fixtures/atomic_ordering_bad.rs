// Fixture: Relaxed orderings on cross-thread protocol atomics (shutdown,
// claimed, claimant, stop, len). Never compiled — token-scanned only.

fn protocol_relaxed(shared: &Shared, queue: &ShardQueue) {
    shared.shutdown.store(true, Ordering::Relaxed); // EXPECT: atomic-ordering
    let c = queue.claimant.load(Ordering::Relaxed); // EXPECT: atomic-ordering
    let _ = c;
    if queue
        .claimed
        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed) // EXPECT: atomic-ordering
        .is_ok()
    {
        queue.claimant.store(0, Ordering::Relaxed); // EXPECT: atomic-ordering
    }
}

fn stop_flag(stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) { // EXPECT: atomic-ordering
        work();
    }
}
