// Fixture: the suppression lifecycle — a trailing allow, an own-line allow
// covering the next line, and a stale allow that suppresses nothing (which
// must surface as unused-suppression). Never compiled — token-scanned only.

fn trailing_allow(state: &State) {
    let g = state.inner.lock().unwrap(); // poison = abort is fine here. pp-lint: allow(no-lock-unwrap)
    drop(g);
}

fn own_line_allow(queue: &ShardQueue) {
    // A stale hint only costs one spurious wakeup. pp-lint: allow(atomic-ordering)
    let hint = queue.claimant.load(Ordering::Relaxed);
    let _ = hint;
}

fn stale_allow(state: &State) {
    // pp-lint: allow(lock-order) EXPECT: unused-suppression
    let g = state.inner.lock_or_panic("state");
    drop(g);
}
