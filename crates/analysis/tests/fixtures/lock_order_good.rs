// Fixture: hierarchy-respecting and temporary acquisitions that must NOT
// trip lock-order. Never compiled — token-scanned only.

fn declared_order(shared: &Shared, queue: &ShardQueue) {
    let q = queue.jobs.lock_or_panic("shard queue"); // queue, rank 10
    drop(q);
    // Released before the wakeup lock: fine.
    let gen = shared.work_gen.lock_or_panic("work generation"); // rank 40
    drop(gen);
}

fn increasing_rank(shared: &Shared, queue: &ShardQueue) {
    let q = queue.jobs.lock_or_panic("shard queue"); // rank 10
    let gen = shared.work_gen.lock_or_panic("work generation"); // rank 40: up is fine
    drop(gen);
    drop(q);
}

fn temporary_released_at_statement_end(shared: &Shared, queue: &ShardQueue) {
    // `*…lock()` is a temporary: the guard dies at the `;`, so the next
    // acquisition is not nested.
    let before = *shared.work_gen.lock_or_panic("work generation");
    let q = queue.jobs.lock_or_panic("shard queue");
    drop(q);
    let _ = before;
}

fn drop_releases_early(shared: &Shared, queue: &ShardQueue) {
    let gen = shared.work_gen.lock_or_panic("work generation");
    drop(gen);
    let q = queue.jobs.lock_or_panic("shard queue");
    drop(q);
}

fn unclassified_receivers_ignored(misc: &Misc) {
    let a = misc.stuff.lock().unwrap();
    let b = misc.other.lock().unwrap();
    drop(b);
    drop(a);
}
