// Fixture: spawns whose handle is kept (bound, pushed, collected, or the
// value of a closure) that must NOT trip no-bare-thread-spawn. Never
// compiled — token-scanned only.

fn kept_handles(shared: &Shared) {
    let handle = thread::spawn(|| background(shared));
    handle.join().unwrap();

    let mut handles = Vec::new();
    handles.push(std::thread::spawn(|| background(shared)));

    // Tail expression of a closure: the handle IS the closure's value.
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            let shared = shared.clone();
            std::thread::spawn(move || worker_loop(&shared, worker))
        })
        .collect();
    let _ = (handles, workers);
}

#[cfg(test)]
mod tests {
    #[test]
    fn discard_is_fine_in_tests() {
        thread::spawn(|| ());
    }
}
