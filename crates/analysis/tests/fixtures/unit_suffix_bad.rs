// Fixture: unit-bearing computations bound to unit-less names. Never
// compiled — token-scanned only.

fn bindings(started: Instant, payload: &[u8]) {
    let wait = started.elapsed().as_millis(); // EXPECT: unit-suffix
    let spent = started.elapsed().as_nanos(); // EXPECT: unit-suffix
    let footprint = core::mem::size_of::<Job>() * payload.len(); // EXPECT: unit-suffix
    let _ = (wait, spent, footprint);
}

fn fields(started: Instant) -> Sample {
    Sample {
        elapsed: started.elapsed().as_micros(), // EXPECT: unit-suffix
        label: "x",
    }
}
