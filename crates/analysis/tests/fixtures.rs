//! Fixture tests: every rule has a failing (`*_bad.rs`) and passing
//! (`*_good.rs`) fixture under `tests/fixtures/`, lexed and linted through
//! the same [`pp_lint::lint_source`] path the workspace run uses. Offending
//! lines carry an `EXPECT: <rule>` marker; the harness asserts the rule's
//! diagnostics land on exactly the marked lines (and nowhere on the good
//! fixtures). Fixtures are never compiled — the engine's workspace walk
//! skips `tests/fixtures/` too, so they can't self-flag a clean run.

use pp_lint::{lint_source, LintConfig};

/// Synthetic path placing a fixture inside pp-serving, where the lock
/// hierarchy's `jobs`/`work_gen` classes and the obs-gating rule apply.
const SERVING_PATH: &str = "crates/serving/src/fixture.rs";

/// 1-based lines of `src` marked `EXPECT: <rule>`.
fn expected_lines(src: &str, rule: &str) -> Vec<u32> {
    let marker = format!("EXPECT: {rule}");
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(&marker))
        .map(|(i, _)| u32::try_from(i).unwrap() + 1)
        .collect()
}

/// Lints `src` as `path` and asserts `rule`'s diagnostics hit exactly the
/// `EXPECT: <rule>` lines.
fn check(src: &str, path: &str, rule: &str) {
    let config = LintConfig::default();
    let diags = lint_source(path, src, false, &config);
    let mut actual: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    actual.sort_unstable();
    let expected = expected_lines(src, rule);
    assert_eq!(
        actual,
        expected,
        "{rule} diagnostics for {path} (got {actual:?}, fixture marks {expected:?}):\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lock_order_bad_fixture_fails() {
    let src = include_str!("fixtures/lock_order_bad.rs");
    assert!(!expected_lines(src, "lock-order").is_empty());
    check(src, SERVING_PATH, "lock-order");
}

#[test]
fn lock_order_good_fixture_passes() {
    check(
        include_str!("fixtures/lock_order_good.rs"),
        SERVING_PATH,
        "lock-order",
    );
}

#[test]
fn atomic_ordering_bad_fixture_fails() {
    let src = include_str!("fixtures/atomic_ordering_bad.rs");
    assert!(!expected_lines(src, "atomic-ordering").is_empty());
    check(src, SERVING_PATH, "atomic-ordering");
}

#[test]
fn atomic_ordering_good_fixture_passes() {
    check(
        include_str!("fixtures/atomic_ordering_good.rs"),
        SERVING_PATH,
        "atomic-ordering",
    );
}

#[test]
fn no_lock_unwrap_bad_fixture_fails() {
    let src = include_str!("fixtures/no_lock_unwrap_bad.rs");
    assert!(!expected_lines(src, "no-lock-unwrap").is_empty());
    check(src, SERVING_PATH, "no-lock-unwrap");
}

#[test]
fn no_lock_unwrap_good_fixture_passes() {
    check(
        include_str!("fixtures/no_lock_unwrap_good.rs"),
        SERVING_PATH,
        "no-lock-unwrap",
    );
}

#[test]
fn no_lock_unwrap_exempts_whole_test_files() {
    // The same bad fixture linted as an integration test file is clean.
    let src = include_str!("fixtures/no_lock_unwrap_bad.rs");
    let diags = lint_source(
        "crates/serving/tests/fixture.rs",
        src,
        true,
        &LintConfig::default(),
    );
    assert!(
        diags.iter().all(|d| d.rule != "no-lock-unwrap"),
        "test files must be exempt: {diags:?}"
    );
}

#[test]
fn obs_gating_bad_fixture_fails() {
    let src = include_str!("fixtures/obs_gating_bad.rs");
    assert!(!expected_lines(src, "obs-gating").is_empty());
    check(src, SERVING_PATH, "obs-gating");
}

#[test]
fn obs_gating_good_fixture_passes() {
    check(
        include_str!("fixtures/obs_gating_good.rs"),
        SERVING_PATH,
        "obs-gating",
    );
}

#[test]
fn obs_gating_exempts_the_obs_crate_itself() {
    // pp-obs implements the emission API; inside it the rule is off.
    let src = include_str!("fixtures/obs_gating_bad.rs");
    let diags = lint_source(
        "crates/obs/src/fixture.rs",
        src,
        false,
        &LintConfig::default(),
    );
    assert!(
        diags.iter().all(|d| d.rule != "obs-gating"),
        "crates/obs must be exempt: {diags:?}"
    );
}

#[test]
fn unit_suffix_bad_fixture_fails() {
    let src = include_str!("fixtures/unit_suffix_bad.rs");
    assert!(!expected_lines(src, "unit-suffix").is_empty());
    check(src, SERVING_PATH, "unit-suffix");
}

#[test]
fn unit_suffix_good_fixture_passes() {
    check(
        include_str!("fixtures/unit_suffix_good.rs"),
        SERVING_PATH,
        "unit-suffix",
    );
}

#[test]
fn no_bare_thread_spawn_bad_fixture_fails() {
    let src = include_str!("fixtures/no_bare_thread_spawn_bad.rs");
    assert!(!expected_lines(src, "no-bare-thread-spawn").is_empty());
    check(src, SERVING_PATH, "no-bare-thread-spawn");
}

#[test]
fn no_bare_thread_spawn_good_fixture_passes() {
    check(
        include_str!("fixtures/no_bare_thread_spawn_good.rs"),
        SERVING_PATH,
        "no-bare-thread-spawn",
    );
}

#[test]
fn suppressions_round_trip() {
    // Two live allows (trailing and own-line) suppress their diagnostics;
    // the stale allow surfaces as unused-suppression — and nothing else.
    let src = include_str!("fixtures/suppression_roundtrip.rs");
    let diags = lint_source(SERVING_PATH, src, false, &LintConfig::default());
    let summary: Vec<(String, u32)> = diags.iter().map(|d| (d.rule.clone(), d.line)).collect();
    let expected: Vec<(String, u32)> = expected_lines(src, "unused-suppression")
        .into_iter()
        .map(|l| ("unused-suppression".to_string(), l))
        .collect();
    assert_eq!(
        summary,
        expected,
        "only the stale allow may surface:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_shipped_rule_has_fixture_coverage() {
    // The bad-fixture tests above must cover all rules the binary ships.
    let covered = [
        "lock-order",
        "atomic-ordering",
        "no-lock-unwrap",
        "obs-gating",
        "unit-suffix",
        "no-bare-thread-spawn",
    ];
    let shipped: Vec<&str> = pp_lint::rules::all_rules().iter().map(|r| r.id()).collect();
    for rule in &shipped {
        assert!(covered.contains(rule), "rule {rule} has no fixture");
    }
    assert_eq!(shipped.len(), covered.len());
}

#[test]
fn the_workspace_itself_is_clean() {
    // The self-test behind CI's `pp-lint --deny`: the checked-in tree has
    // zero violations and zero stale suppressions.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = pp_lint::lint_workspace(&root, &LintConfig::default()).expect("walk workspace");
    assert!(report.files_scanned > 50, "walk found too few files");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
