//! Trace well-formedness under multi-worker stress: every sampled span tree
//! emitted by the engine must be closed and consistent — child stage spans
//! tile the request's end-to-end interval exactly, requests link to a batch
//! span, worker ids are real workers — and span counts must reconcile with
//! the engine's own [`WorkerStats`] counters. Sampling is a seeded hash of
//! the user id, so the expected sampled set (and therefore the exact span
//! counts) is computable up front.
//!
//! This file owns the process-global [`pp_obs::Tracer`]: it is the only
//! test here that records through it, and it sets the sampling knobs before
//! the first `Tracer::global()` touch. The property tests below operate on
//! locally constructed spans and tracers only.

use pp_data::schema::{Context, DatasetKind, Tab, UserId};
use pp_obs::trace::trace_hash;
use pp_obs::{tail_report, Span, SpanId, Stage, Tracer, TracerConfig};
use pp_rnn::{RnnModel, RnnModelConfig, TaskKind};
use pp_serving::{BatchServingEngine, PredictRequest, ShardedStateStore, UpdateRequest};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const CLIENTS: usize = 4;
const WORKERS: usize = 4;
const USERS_PER_CLIENT: u64 = 12;
const ROUNDS: i64 = 4;
const SAMPLE_EVERY: u64 = 4;
const SEED: u64 = 17;

fn model() -> RnnModel {
    RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig::tiny(),
        7,
    )
}

fn context(i: i64) -> Context {
    Context::MobileTab {
        unread_count: (i % 9) as u8,
        active_tab: Tab::ALL[(i as usize) % Tab::ALL.len()],
    }
}

fn user_of(client: usize, user: u64) -> UserId {
    UserId(client as u64 * 1_000 + user)
}

/// The stage chain a request's children must form, in causal order.
/// `StateWriteBack` appears only for update jobs (prediction batches do not
/// write hidden states back).
const CHAIN: [Stage; 6] = [
    Stage::QueueWait,
    Stage::CoalesceHold,
    Stage::BatchAssembly,
    Stage::ForwardPass,
    Stage::StateWriteBack,
    Stage::Reply,
];

#[test]
fn engine_spans_are_wellformed_and_reconcile_with_worker_stats() {
    // Before the first Tracer::global() touch in this process.
    std::env::set_var("PP_TRACE_SAMPLE", SAMPLE_EVERY.to_string());
    std::env::set_var("PP_TRACE_SEED", SEED.to_string());

    let m = Arc::new(model());
    let store = Arc::new(ShardedStateStore::new(8));
    let engine = Arc::new(BatchServingEngine::start(
        m.clone(),
        store.clone(),
        WORKERS,
        8,
    ));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let predicts: Vec<PredictRequest> = (0..USERS_PER_CLIENT)
                        .map(|u| {
                            let i = round * USERS_PER_CLIENT as i64 + u as i64;
                            PredictRequest {
                                user_id: user_of(client, u),
                                timestamp: 50_000 + i * 31,
                                context: context(i + client as i64),
                                elapsed_secs: 120 + i,
                            }
                        })
                        .collect();
                    let updates: Vec<UpdateRequest> = (0..USERS_PER_CLIENT)
                        .map(|u| {
                            let i = round * USERS_PER_CLIENT as i64 + u as i64;
                            UpdateRequest {
                                user_id: user_of(client, u),
                                timestamp: 50_000 + i * 31,
                                context: context(i + client as i64),
                                delta_t_secs: 300 + i,
                                accessed: (i + client as i64) % 3 == 0,
                            }
                        })
                        .collect();
                    for receiver in engine.submit_many(&predicts) {
                        receiver.recv().unwrap();
                    }
                    for receiver in engine.submit_updates(&updates) {
                        receiver.recv().unwrap();
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let stats = engine.stats();
    let worker_stats = engine.worker_stats();
    // Workers emit a batch's spans after its replies are sent, so a client
    // can observe its reply before the spans exist; joining the workers
    // (via Drop) is the barrier that makes the drain complete.
    drop(
        Arc::try_unwrap(engine)
            .map_err(|_| "engine still shared")
            .unwrap(),
    );

    let tracer = Tracer::global();
    assert_eq!(tracer.config().sample_every, SAMPLE_EVERY);
    assert_eq!(tracer.config().seed, SEED);
    assert_eq!(tracer.dropped(), 0, "lanes must not overflow at this scale");
    let spans = tracer.drain();

    // The sampled set is a pure function of (seed, user id): exact counts.
    let sampled_users: Vec<u64> = (0..CLIENTS)
        .flat_map(|c| (0..USERS_PER_CLIENT).map(move |u| user_of(c, u).0))
        .filter(|&u| trace_hash(SEED, u).is_multiple_of(SAMPLE_EVERY))
        .collect();
    assert!(
        !sampled_users.is_empty(),
        "seed {SEED} sampled no users — pick a different seed"
    );
    let expected_requests = sampled_users.len() as u64 * ROUNDS as u64 * 2;

    let requests: Vec<&Span> = spans.iter().filter(|s| s.stage == Stage::Request).collect();
    assert_eq!(
        requests.len() as u64,
        expected_requests,
        "one request span per sampled job, exactly"
    );
    for request in &requests {
        assert!(
            sampled_users.contains(&request.user),
            "unsampled user {} traced",
            request.user
        );
    }

    let mut children: HashMap<u64, Vec<&Span>> = HashMap::new();
    for span in spans.iter().filter(|s| s.parent != SpanId::NONE) {
        children.entry(span.parent.0).or_default().push(span);
    }
    let batches: HashMap<u64, &Span> = spans
        .iter()
        .filter(|s| s.stage == Stage::Batch)
        .map(|s| (s.batch, s))
        .collect();

    for request in &requests {
        let mut kids = children.remove(&request.span.0).unwrap_or_default();
        kids.sort_by_key(|s| s.start_ns);
        assert!(
            kids.len() == 5 || kids.len() == 6,
            "request {} has {} children (predict jobs skip state write-back)",
            request.span.0,
            kids.len()
        );
        // The stage chain tiles [arrival, done] exactly: contiguous,
        // non-overlapping, in causal order, durations summing to the
        // end-to-end span by construction.
        let mut cursor = request.start_ns;
        let mut chain = CHAIN
            .iter()
            .filter(|&&s| kids.len() == 6 || s != Stage::StateWriteBack);
        for kid in &kids {
            assert_eq!(kid.stage, *chain.next().expect("chain length matches"));
            assert_eq!(
                kid.start_ns,
                cursor,
                "stage {} does not start where the previous ended",
                kid.stage.name()
            );
            assert!(kid.end_ns >= kid.start_ns);
            assert!(kid.end_ns <= request.end_ns, "child escapes its parent");
            assert_eq!(kid.trace, request.trace);
            assert_eq!(kid.worker, request.worker);
            assert_eq!(kid.batch, request.batch);
            cursor = kid.end_ns;
        }
        assert_eq!(
            cursor, request.end_ns,
            "stage durations must tile the end-to-end span exactly"
        );
        let durations: u64 = kids.iter().map(|k| k.end_ns - k.start_ns).sum();
        assert_eq!(durations, request.end_ns - request.start_ns);

        // Every request links to an emitted batch span that closes with it.
        let batch = batches
            .get(&request.batch)
            .unwrap_or_else(|| panic!("request {} links no batch span", request.span.0));
        assert_eq!(batch.end_ns, request.end_ns);
        assert_eq!(batch.worker, request.worker);
        assert!((request.worker as usize) < WORKERS);
    }
    assert!(
        children.is_empty(),
        "orphan child spans with no request root: {:?}",
        children.keys().collect::<Vec<_>>()
    );

    // Reconciliation with the engine's own counters: the engine served
    // every job, traced span counts never exceed what the workers report,
    // and per-worker span attribution only names workers that ran batches.
    let total = CLIENTS as u64 * USERS_PER_CLIENT * ROUNDS as u64;
    assert_eq!(stats.predictions, total);
    assert_eq!(stats.updates, total);
    assert_eq!(
        worker_stats.iter().map(|w| w.batches).sum::<u64>(),
        stats.batches
    );
    assert!(batches.len() as u64 <= stats.batches);
    for (worker, _) in worker_stats.iter().enumerate() {
        let traced_jobs = requests
            .iter()
            .filter(|r| r.worker as usize == worker)
            .count() as u64;
        let served = worker_stats[worker].predictions + worker_stats[worker].updates;
        assert!(
            traced_jobs <= served,
            "worker {worker} traced {traced_jobs} jobs but served only {served}"
        );
    }
    let report = tail_report(&spans, SAMPLE_EVERY, 0);
    assert_eq!(report.sampled_requests, expected_requests);
}

/// Builds one synthetic request tree from stage durations; returns the
/// spans. Mirrors the engine's emission shape: contiguous children tiling
/// the root.
fn request_tree(first_id: u64, user: u64, start: u64, durations: &[u64; 6]) -> Vec<Span> {
    let trace = pp_obs::TraceId(trace_hash(SEED, user).max(1));
    let end = start + durations.iter().sum::<u64>();
    let root = Span {
        trace,
        span: SpanId(first_id),
        parent: SpanId::NONE,
        stage: Stage::Request,
        worker: (user % WORKERS as u64) as u32,
        user,
        batch: 1 + user / 7,
        start_ns: start,
        end_ns: end,
    };
    let mut spans = vec![root];
    let mut cursor = start;
    for (i, (&stage, &duration)) in CHAIN.iter().zip(durations).enumerate() {
        spans.push(Span {
            span: SpanId(first_id + 1 + i as u64),
            parent: SpanId(first_id),
            stage,
            start_ns: cursor,
            end_ns: cursor + duration,
            ..root
        });
        cursor += duration;
    }
    spans
}

proptest! {
    /// For any set of synthetic request trees, the tail report's shares are
    /// internally consistent: per-stage shares of request time sum to 1,
    /// tail queue + service shares sum to 1, and the end-to-end quantiles
    /// are monotone.
    #[test]
    fn tail_report_shares_are_consistent_for_any_span_forest(
        trees in prop::collection::vec(
            prop::collection::vec(0u64..200_000, 6..7),
            1..40,
        ),
    ) {
        let mut spans = Vec::new();
        for (i, durations) in trees.iter().enumerate() {
            let durations: [u64; 6] = durations.clone().try_into().unwrap();
            spans.extend(request_tree(
                1 + 10 * i as u64,
                1_000 + i as u64,
                i as u64 * 1_000_000,
                &durations,
            ));
        }
        let report = tail_report(&spans, SAMPLE_EVERY, 0);
        prop_assert_eq!(report.sampled_requests, trees.len() as u64);
        prop_assert!(report.e2e_p50_us <= report.e2e_p90_us);
        prop_assert!(report.e2e_p90_us <= report.e2e_p99_us);
        prop_assert!(report.e2e_p99_us <= report.e2e_max_us + 1e-9);
        prop_assert!(report.tail_requests >= 1, "the slowest request is always in the tail");
        let total_request_us: f64 = spans
            .iter()
            .filter(|s| s.stage == Stage::Request)
            .map(|s| (s.end_ns - s.start_ns) as f64)
            .sum();
        if total_request_us > 0.0 {
            let child_share: f64 = report
                .stages
                .iter()
                .filter(|s| s.stage != "request")
                .map(|s| s.share_of_request_time)
                .sum();
            prop_assert!(
                (child_share - 1.0).abs() < 1e-9,
                "stage shares sum to {child_share}, not 1"
            );
            let tail_share = report.tail_queue_share + report.tail_service_share;
            prop_assert!(
                (tail_share - 1.0).abs() < 1e-9,
                "tail shares sum to {tail_share}, not 1"
            );
        }
    }

    /// Sampling is a pure seeded function of the user id: two tracers with
    /// the same config agree on every user, and the sampled fraction is in
    /// the right ballpark for a uniform hash.
    #[test]
    fn local_tracers_sample_identically(seed in 0u64..1_000, base in 0u64..1_000_000) {
        let config = TracerConfig { sample_every: SAMPLE_EVERY, seed, ..TracerConfig::default() };
        let a = Tracer::new(config);
        let b = Tracer::new(config);
        let sampled = (base..base + 512).filter(|&u| a.sampled(u)).count();
        for user in base..base + 512 {
            prop_assert_eq!(a.sampled(user), b.sampled(user));
            if a.sampled(user) {
                prop_assert_eq!(a.trace_for(user), b.trace_for(user));
            }
        }
        // ~1/4 of 512 users; a uniform hash stays within wide bounds.
        prop_assert!((32..=224).contains(&sampled), "sampled {sampled} of 512");
    }
}
