//! Multi-worker stress: four client threads drive four engine workers with
//! interleaved predictions and updates, and every result must match the
//! single-threaded sequential reference to 1e-6 — shard claims, work
//! stealing and per-shard FIFO draining may reorder work *across* users,
//! but never within one.

use pp_data::schema::{Context, DatasetKind, Tab, UserId};
use pp_rnn::{RnnModel, RnnModelConfig, TaskKind};
use pp_serving::{BatchServingEngine, PredictRequest, ShardedStateStore, UpdateRequest};
use std::sync::Arc;

const CLIENTS: usize = 4;
const WORKERS: usize = 4;
const USERS_PER_CLIENT: u64 = 12;
const ROUNDS: i64 = 6;

fn model() -> RnnModel {
    RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig::tiny(),
        7,
    )
}

fn context(i: i64) -> Context {
    Context::MobileTab {
        unread_count: (i % 9) as u8,
        active_tab: Tab::ALL[(i as usize) % Tab::ALL.len()],
    }
}

fn predict_request(client: usize, user: u64, round: i64) -> PredictRequest {
    let i = round * USERS_PER_CLIENT as i64 + user as i64;
    PredictRequest {
        user_id: UserId(client as u64 * 1_000 + user),
        timestamp: 50_000 + i * 31,
        context: context(i + client as i64),
        elapsed_secs: 120 + i,
    }
}

fn update_request(client: usize, user: u64, round: i64) -> UpdateRequest {
    let i = round * USERS_PER_CLIENT as i64 + user as i64;
    UpdateRequest {
        user_id: UserId(client as u64 * 1_000 + user),
        timestamp: 50_000 + i * 31,
        context: context(i + client as i64),
        delta_t_secs: 300 + i,
        accessed: (i + client as i64) % 3 == 0,
    }
}

#[test]
fn concurrent_clients_match_the_sequential_reference() {
    let m = Arc::new(model());
    let store = Arc::new(ShardedStateStore::new(8));
    let engine = Arc::new(BatchServingEngine::start(
        m.clone(),
        store.clone(),
        WORKERS,
        8,
    ));

    // Each client owns a disjoint user range and submits, per round, one
    // batch of predictions followed by one batch of updates — without
    // waiting for the predictions before the updates go in, so the engine
    // must enforce per-user ordering itself.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let mut probabilities = Vec::new();
                for round in 0..ROUNDS {
                    let predicts: Vec<PredictRequest> = (0..USERS_PER_CLIENT)
                        .map(|u| predict_request(client, u, round))
                        .collect();
                    let updates: Vec<UpdateRequest> = (0..USERS_PER_CLIENT)
                        .map(|u| update_request(client, u, round))
                        .collect();
                    let predict_receivers = engine.submit_many(&predicts);
                    let update_receivers = engine.submit_updates(&updates);
                    for receiver in predict_receivers {
                        probabilities.push(receiver.recv().unwrap().probability);
                    }
                    for receiver in update_receivers {
                        receiver.recv().unwrap();
                    }
                }
                probabilities
            })
        })
        .collect();
    let served: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Sequential reference, one user at a time.
    for (client, probabilities) in served.iter().enumerate() {
        for user in 0..USERS_PER_CLIENT {
            let mut state = m.initial_state();
            for round in 0..ROUNDS {
                let p = predict_request(client, user, round);
                let input = m
                    .featurizer()
                    .predict_input(p.timestamp, &p.context, p.elapsed_secs);
                let expected = m.predict_proba(&state, &input);
                let got = probabilities[(round * USERS_PER_CLIENT as i64 + user as i64) as usize];
                assert!(
                    (got - expected).abs() < 1e-6,
                    "client {client} user {user} round {round}: engine {got} vs reference {expected}"
                );
                let u = update_request(client, user, round);
                state = m.advance_state(
                    &state,
                    &m.featurizer().update_input(
                        u.timestamp,
                        &u.context,
                        u.delta_t_secs,
                        u.accessed,
                    ),
                );
            }
            // The stored hidden state equals the reference chain's end.
            let stored = store
                .get_state(UserId(client as u64 * 1_000 + user))
                .unwrap();
            for (a, b) in stored.iter().zip(&state) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    let total = CLIENTS as u64 * USERS_PER_CLIENT * ROUNDS as u64;
    let stats = engine.stats();
    assert_eq!(stats.predictions, total);
    assert_eq!(stats.updates, total);
    // Per-worker counters partition the aggregate counters exactly.
    let workers = engine.worker_stats();
    assert_eq!(workers.len(), WORKERS);
    assert_eq!(workers.iter().map(|w| w.predictions).sum::<u64>(), total);
    assert_eq!(workers.iter().map(|w| w.updates).sum::<u64>(), total);
    assert_eq!(
        workers.iter().map(|w| w.batches).sum::<u64>(),
        stats.batches
    );
}
