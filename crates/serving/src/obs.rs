//! Cached `pp-obs` instrumentation handles for the serving hot paths.
//!
//! Metric handles are looked up once (per registry) and then recorded
//! through raw atomics, so batch workers never touch the registry locks.
//! All names live under the `serving.` prefix; `_ns` histograms hold
//! nanoseconds. See `docs/observability.md` for the full catalogue.

use pp_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::{Arc, OnceLock};

/// The serving layer's metric handles.
#[derive(Debug, Clone)]
pub struct ServingObs {
    /// `serving.queue_depth` — jobs waiting in the batch engine's queue.
    pub queue_depth: Arc<Gauge>,
    /// `serving.coalesce_wait_ns` — how long a worker held a non-full
    /// batch open before serving it.
    pub coalesce_wait_ns: Arc<Histogram>,
    /// `serving.batch_size` — requests per served batch.
    pub batch_size: Arc<Histogram>,
    /// `serving.batch_assembly_ns` — state fetch + featurization per batch.
    pub batch_assembly_ns: Arc<Histogram>,
    /// `serving.forward_pass_ns` — the RNN forward pass per batch.
    pub forward_pass_ns: Arc<Histogram>,
    /// `serving.store.reads` — hidden-state store lookups.
    pub store_reads: Arc<Counter>,
    /// `serving.store.hits` — lookups that found a state.
    pub store_hits: Arc<Counter>,
    /// `serving.store.writes` — hidden-state store writes.
    pub store_writes: Arc<Counter>,
    /// `serving.store.evictions` — states evicted by bounded stores.
    pub store_evictions: Arc<Counter>,
    /// `serving.worker.batches` — batches served across all workers.
    pub worker_batches: Arc<Counter>,
    /// `serving.worker.steals` — batches that drained at least one job from
    /// a shard the serving worker does not own (work stealing).
    pub worker_steals: Arc<Counter>,
    /// `serving.worker.idle_ns` — total nanoseconds workers spent parked
    /// waiting for work (sums across workers; divide by worker count and
    /// wall time for mean idle fraction).
    pub worker_idle_ns: Arc<Counter>,
}

impl ServingObs {
    /// Registers (or re-resolves) the serving metrics on `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            queue_depth: registry.gauge("serving.queue_depth"),
            coalesce_wait_ns: registry.histogram("serving.coalesce_wait_ns"),
            batch_size: registry.histogram("serving.batch_size"),
            batch_assembly_ns: registry.histogram("serving.batch_assembly_ns"),
            forward_pass_ns: registry.histogram("serving.forward_pass_ns"),
            store_reads: registry.counter("serving.store.reads"),
            store_hits: registry.counter("serving.store.hits"),
            store_writes: registry.counter("serving.store.writes"),
            store_evictions: registry.counter("serving.store.evictions"),
            worker_batches: registry.counter("serving.worker.batches"),
            worker_steals: registry.counter("serving.worker.steals"),
            worker_idle_ns: registry.counter("serving.worker.idle_ns"),
        }
    }

    /// The handles bound to [`MetricsRegistry::global`], resolved once.
    #[must_use]
    pub fn global() -> &'static ServingObs {
        static GLOBAL: OnceLock<ServingObs> = OnceLock::new();
        GLOBAL.get_or_init(|| Self::register(MetricsRegistry::global()))
    }
}
