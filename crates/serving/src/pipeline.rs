//! Discrete-event simulation of the production serving pipeline of §9:
//!
//! 1. At session start, the predictor fetches the user's hidden state from
//!    the key-value store, runs `RNN_predict`, and precomputes when the
//!    probability exceeds a threshold.
//! 2. Context variables and (later) the access flag are sent to a stream
//!    processor keyed by session id; when the session-length timer fires,
//!    the joined `(context, access flag)` record triggers `RNN_update` and a
//!    write of the new hidden state.
//!
//! The simulator replays a dataset's sessions in timestamp order, maintains
//! the stream-join buffer and timers explicitly, and reports both accuracy
//! (successful/wasted prefetches) and systems counters (store traffic,
//! FLOPs).

use crate::kv_store::{decode_state_f32, encode_state_f32, KvStore};
use pp_data::schema::{Dataset, UserId};
use pp_rnn::sequence::LagConfig;
use pp_rnn::RnnModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Outcome counters of a serving replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Sessions replayed (= predictions served).
    pub predictions: u64,
    /// Precomputations triggered (score ≥ threshold).
    pub precomputes: u64,
    /// Precomputations followed by an actual access ("successful
    /// prefetches").
    pub successful_prefetches: u64,
    /// Precomputations not followed by an access (wasted work).
    pub wasted_prefetches: u64,
    /// Accesses that were not precomputed (missed opportunities).
    pub missed_accesses: u64,
    /// Total accesses observed.
    pub accesses: u64,
    /// Hidden-state updates executed by the stream processor.
    pub hidden_updates: u64,
    /// Total prediction FLOPs.
    pub predict_flops: u64,
    /// Total update FLOPs.
    pub update_flops: u64,
}

impl ServingOutcome {
    /// Precision of the triggered precomputations.
    pub fn precision(&self) -> f64 {
        if self.precomputes == 0 {
            0.0
        } else {
            self.successful_prefetches as f64 / self.precomputes as f64
        }
    }

    /// Recall over all accesses ("% of accesses that were successfully
    /// precomputed" — the paper's proxy for latency wins).
    pub fn recall(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.successful_prefetches as f64 / self.accesses as f64
        }
    }
}

/// An event buffered by the stream processor, keyed by session id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BufferedSession {
    user_id: UserId,
    user_index: usize,
    session_index: usize,
    start_ts: i64,
    accessed: bool,
}

/// The serving pipeline simulator.
#[derive(Debug)]
pub struct ServingPipeline<'a> {
    model: &'a RnnModel,
    store: KvStore,
    lag: LagConfig,
    threshold: f64,
    /// Stream-join buffer: timer fire time → sessions whose window closes
    /// then.
    timers: BTreeMap<i64, Vec<BufferedSession>>,
    /// Timestamp of the last session already folded into each user's stored
    /// hidden state (needed for the `T(t_i − t_k)` prediction input).
    last_update_ts: HashMap<UserId, i64>,
    /// Context lookup for buffered sessions (populated by `replay`); in the
    /// real pipeline the context arrives as a stream message keyed by
    /// session id.
    pending_context: HashMap<(usize, usize), pp_data::schema::Context>,
    outcome: ServingOutcome,
}

impl<'a> ServingPipeline<'a> {
    /// Creates a pipeline around a trained model.
    pub fn new(model: &'a RnnModel, threshold: f64) -> Self {
        let lag = LagConfig::for_kind(model.kind());
        Self {
            model,
            store: KvStore::new(),
            lag,
            threshold,
            timers: BTreeMap::new(),
            last_update_ts: HashMap::new(),
            pending_context: HashMap::new(),
            outcome: ServingOutcome::default(),
        }
    }

    /// The decision threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The hidden-state store (for inspecting traffic counters).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Counters accumulated so far.
    pub fn outcome(&self) -> ServingOutcome {
        self.outcome
    }

    /// Number of sessions still buffered waiting for their window to close.
    pub fn pending_sessions(&self) -> usize {
        self.timers.values().map(std::vec::Vec::len).sum()
    }

    fn fire_timers_up_to(&mut self, now: i64) {
        // Timers strictly before `now` have fired: the session window closed
        // and the stream processor joined context + access flag.
        let due: Vec<i64> = self.timers.range(..=now).map(|(&t, _)| t).collect();
        for t in due {
            let sessions = self.timers.remove(&t).unwrap_or_default();
            for s in sessions {
                self.apply_update(&s);
            }
        }
    }

    fn apply_update(&mut self, buffered: &BufferedSession) {
        let key = format!("hidden/{}", buffered.user_id);
        let prev_state = self
            .store
            .get(&key)
            .map_or_else(|| self.model.initial_state(), |b| decode_state_f32(&b));
        let prev_ts = self.last_update_ts.get(&buffered.user_id).copied();
        let delta_t = prev_ts.map_or(0, |t| (buffered.start_ts - t).max(0));
        // The update input needs the original context; we fetch it lazily via
        // the stored session reference held by the caller (see `replay`).
        let context = self.pending_context[&(buffered.user_index, buffered.session_index)];
        let update_input = self.model.featurizer().update_input(
            buffered.start_ts,
            &context,
            delta_t,
            buffered.accessed,
        );
        let next = self.model.advance_state(&prev_state, &update_input);
        self.store.put(key, encode_state_f32(&next));
        self.last_update_ts
            .insert(buffered.user_id, buffered.start_ts);
        self.outcome.hidden_updates += 1;
        self.outcome.update_flops += self.model.update_flops();
    }

    /// Replays every session of the selected users in global timestamp
    /// order, serving a prediction at each session start and advancing
    /// hidden states when session windows close. Returns the accumulated
    /// outcome.
    pub fn replay(&mut self, dataset: &Dataset, user_indices: &[usize]) -> ServingOutcome {
        // Gather (timestamp, user_index, session_index) triples and sort.
        let mut events: Vec<(i64, usize, usize)> = Vec::new();
        for &ui in user_indices {
            for (si, s) in dataset.users[ui].sessions.iter().enumerate() {
                events.push((s.timestamp, ui, si));
            }
        }
        events.sort_unstable();
        // Stash contexts for the update path (the stream processor receives
        // them as messages; here we look them up by (user, session)).
        self.pending_context = events
            .iter()
            .map(|&(_, ui, si)| ((ui, si), dataset.users[ui].sessions[si].context))
            .collect();

        for (ts, ui, si) in events {
            // 1. Close any session windows that have elapsed.
            self.fire_timers_up_to(ts - self.lag.delta());
            let session = &dataset.users[ui].sessions[si];
            let user_id = dataset.users[ui].user_id;

            // 2. Serve the prediction from the stored hidden state.
            let key = format!("hidden/{user_id}");
            let state = self
                .store
                .get(&key)
                .map_or_else(|| self.model.initial_state(), |b| decode_state_f32(&b));
            let last_ts = self.last_update_ts.get(&user_id).copied();
            let elapsed = last_ts.map_or(0, |t| (ts - t).max(0));
            let predict_input =
                self.model
                    .featurizer()
                    .predict_input(ts, &session.context, elapsed);
            let score = self.model.predict_proba(&state, &predict_input);
            self.outcome.predictions += 1;
            self.outcome.predict_flops += self.model.predict_flops();
            let precompute = score >= self.threshold;
            if precompute {
                self.outcome.precomputes += 1;
            }
            if session.accessed {
                self.outcome.accesses += 1;
                if precompute {
                    self.outcome.successful_prefetches += 1;
                } else {
                    self.outcome.missed_accesses += 1;
                }
            } else if precompute {
                self.outcome.wasted_prefetches += 1;
            }

            // 3. Buffer the session; its timer fires after the session
            //    window closes plus the update latency.
            let fire_at = ts + self.lag.delta();
            self.timers
                .entry(fire_at)
                .or_default()
                .push(BufferedSession {
                    user_id,
                    user_index: ui,
                    session_index: si,
                    start_ts: ts,
                    accessed: session.accessed,
                });
        }
        // Drain remaining timers.
        self.fire_timers_up_to(i64::MAX);
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::DatasetKind;
    use pp_data::synth::{MobileTabConfig, MobileTabGenerator, SyntheticGenerator};
    use pp_rnn::{RnnModelConfig, TaskKind};

    fn dataset() -> Dataset {
        MobileTabGenerator::new(MobileTabConfig {
            num_users: 8,
            num_days: 5,
            ..Default::default()
        })
        .generate()
    }

    fn model() -> RnnModel {
        RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            3,
        )
    }

    #[test]
    fn replay_counts_are_consistent() {
        let ds = dataset();
        let m = model();
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let mut pipeline = ServingPipeline::new(&m, 0.1);
        let outcome = pipeline.replay(&ds, &idx);
        assert_eq!(outcome.predictions as usize, ds.num_sessions());
        assert_eq!(outcome.accesses as usize, ds.num_accesses());
        assert_eq!(
            outcome.successful_prefetches + outcome.wasted_prefetches,
            outcome.precomputes
        );
        assert_eq!(
            outcome.successful_prefetches + outcome.missed_accesses,
            outcome.accesses
        );
        // Every session eventually updates the hidden state.
        assert_eq!(outcome.hidden_updates as usize, ds.num_sessions());
        assert_eq!(pipeline.pending_sessions(), 0);
        // One hidden state per user ends up in the store.
        assert_eq!(pipeline.store().len(), idx.len().min(ds.num_users()));
    }

    #[test]
    fn threshold_extremes_trigger_all_or_nothing() {
        let ds = dataset();
        let m = model();
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let all = ServingPipeline::new(&m, 0.0).replay(&ds, &idx);
        assert_eq!(all.precomputes, all.predictions);
        assert!((all.recall() - 1.0).abs() < 1e-12 || all.accesses == 0);
        let none = ServingPipeline::new(&m, 1.1).replay(&ds, &idx);
        assert_eq!(none.precomputes, 0);
        assert_eq!(none.missed_accesses, none.accesses);
    }

    #[test]
    fn store_traffic_is_one_read_per_prediction_and_one_write_per_update() {
        let ds = dataset();
        let m = model();
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let mut pipeline = ServingPipeline::new(&m, 0.5);
        let outcome = pipeline.replay(&ds, &idx);
        let stats = pipeline.store().stats();
        // One get per prediction plus one get per update (read-modify-write).
        assert_eq!(stats.reads, outcome.predictions + outcome.hidden_updates);
        assert_eq!(stats.writes, outcome.hidden_updates);
        // Stored values are the model's state size.
        assert_eq!(
            pipeline.store().stored_bytes(),
            (pipeline.store().len() * m.state_bytes()) as u64
        );
    }

    #[test]
    fn flop_accounting_scales_with_traffic() {
        let ds = dataset();
        let m = model();
        let idx: Vec<usize> = (0..2).collect();
        let outcome = ServingPipeline::new(&m, 0.5).replay(&ds, &idx);
        assert_eq!(
            outcome.predict_flops,
            outcome.predictions * m.predict_flops()
        );
        assert_eq!(
            outcome.update_flops,
            outcome.hidden_updates * m.update_flops()
        );
    }
}
