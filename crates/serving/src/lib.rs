//! # pp-serving
//!
//! Serving-layer simulation for predictive precompute, reproducing the
//! production architecture and measurements of §9 of the paper:
//!
//! * [`kv_store`] — an instrumented in-memory key-value store (the paper's
//!   Redis-like hidden-state store), f32 state encoding, and 8-bit
//!   quantization;
//! * [`pipeline`] — a discrete-event replay of the serving flow: predict at
//!   session start from the stored hidden state, stream-join context and
//!   access flag when the session window closes, then advance and re-store
//!   the hidden state;
//! * [`cost`] — the serving cost model comparing the aggregation-feature
//!   path (≈ 20 lookups, thousands of keys per user) against the
//!   hidden-state path (one 512-byte lookup), reproducing the ≈ 10× overall
//!   cost reduction;
//! * [`online`] — the day-by-day online comparison of RNN vs GBDT on
//!   cold-start users (Figure 7) and the successful-prefetch lift at a
//!   target precision;
//! * [`sharded`] — the throughput-oriented [`ShardedStateStore`]: N
//!   independent hidden-state shards keyed by user-id hash, serving
//!   concurrently;
//! * [`batch`] — the [`BatchScheduler`] and multi-threaded
//!   [`BatchServingEngine`] coalescing concurrent session starts into
//!   batched forward passes (one matmul per batch instead of per user);
//! * [`obs`] — cached `pp-obs` handles instrumenting the batch queue, the
//!   per-stage serving latencies, and the hidden-state store traffic
//!   (compiled to no-ops without the `obs` feature).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cost;
pub mod kv_store;
pub mod obs;
pub mod online;
pub mod pipeline;
pub mod sharded;

pub use batch::{
    BatchScheduler, BatchServingEngine, EngineStats, PredictRequest, Prediction, SchedulerStats,
    UpdateRequest, WorkerStats,
};
pub use cost::{
    baseline_profile, compare, rnn_profile, CostComparison, CostWeights, ServingProfile,
};
pub use kv_store::{
    decode_state_f32, encode_state_f32, EvictionPolicy, KvStore, QuantizedState, StoreStats,
};
pub use obs::ServingObs;
pub use online::{daily_metrics, run_online_comparison, DailyMetric, OnlineComparison};
pub use pipeline::{ServingOutcome, ServingPipeline};
pub use sharded::ShardedStateStore;
