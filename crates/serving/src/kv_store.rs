//! An in-process key-value store standing in for the "real-time data store
//! similar to Redis" of §9, with the instrumentation the serving cost model
//! needs: request counts and bytes moved, per logical table.
//!
//! Two tables matter for the paper's comparison:
//!
//! * the **hidden-state store** used by the RNN path — exactly one key per
//!   user holding a 512-byte (128 × f32) vector;
//! * the **aggregation store** used by the GBDT path — one key per
//!   (user, context-subset value, window) cell, which the paper notes can be
//!   thousands of keys per user and ~20 lookups per prediction.

use bytes::Bytes;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Running counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of `get` calls (hits and misses).
    pub reads: u64,
    /// Number of `put` calls.
    pub writes: u64,
    /// Number of `get` calls that found a value.
    pub hits: u64,
    /// Total bytes returned by successful reads.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
}

impl StoreStats {
    /// Read hit rate (1.0 when there were no reads).
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            self.hits as f64 / self.reads as f64
        }
    }
}

/// Which entry a bounded store sacrifices when it is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-touched entry (classic LRU).
    #[default]
    Lru,
    /// Evict the least-frequently-accessed entry (ties broken by recency):
    /// a hot user's state survives a flood of one-shot visitors that would
    /// wash it out of a pure-LRU store. Frequencies never age, so this is
    /// suited to bounded-horizon studies rather than indefinite uptime.
    FrequencyWeighted,
}

/// One stored value together with its recency and frequency stamps.
#[derive(Debug)]
struct Entry {
    value: Bytes,
    /// Monotone tick of the last touch; part of the eviction-index key.
    tick: u64,
    /// Lifetime touches (puts + read hits) of this key.
    freq: u64,
}

/// Map + eviction index behind one lock so they can never disagree.
#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// (rank, tick) → key, ordered victim-first; only maintained when
    /// bounded. Rank is 0 under LRU (pure recency order) and the access
    /// frequency under [`EvictionPolicy::FrequencyWeighted`].
    index: BTreeMap<(u64, u64), String>,
    next_tick: u64,
}

impl Inner {
    fn index_key(policy: EvictionPolicy, entry: &Entry) -> (u64, u64) {
        match policy {
            EvictionPolicy::Lru => (0, entry.tick),
            EvictionPolicy::FrequencyWeighted => (entry.freq, entry.tick),
        }
    }

    fn touch(&mut self, key: &str, policy: EvictionPolicy) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.map.get_mut(key) {
            // Move the already-owned key String to its new index slot
            // instead of allocating a fresh one per read.
            let owned = self
                .index
                .remove(&Self::index_key(policy, entry))
                .unwrap_or_else(|| key.to_string());
            entry.tick = tick;
            entry.freq += 1;
            self.index.insert(Self::index_key(policy, entry), owned);
        }
    }
}

/// A thread-safe, instrumented, in-memory key-value store, optionally
/// bounded to a maximum number of keys with least-recently-used eviction
/// (per-user state otherwise grows without bound as the user population
/// does).
#[derive(Debug, Default)]
pub struct KvStore {
    inner: RwLock<Inner>,
    capacity: Option<usize>,
    policy: EvictionPolicy,
    stats: RwLock<StoreStats>,
}

impl KvStore {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store that holds at most `capacity` keys; inserting
    /// beyond that evicts the least-recently-used key (both `get` and `put`
    /// refresh recency) and bumps [`StoreStats::evictions`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_policy(capacity, EvictionPolicy::Lru)
    }

    /// Creates an empty store bounded to `capacity` keys under the given
    /// [`EvictionPolicy`]. `get` and `put` refresh both recency and
    /// frequency; evictions bump [`StoreStats::evictions`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity_and_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity: Some(capacity),
            policy,
            ..Self::default()
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The eviction policy a bounded store applies (unbounded stores never
    /// evict, so the policy is irrelevant there).
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Stores `value` under `key`, replacing any previous value. When the
    /// store is at capacity and `key` is new, the least-recently-used entry
    /// is evicted first.
    pub fn put(&self, key: impl Into<String>, value: Bytes) {
        let key = key.into();
        let mut stats = self.stats.write();
        stats.writes += 1;
        stats.bytes_written += value.len() as u64;
        drop(stats);

        let mut inner = self.inner.write();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let freq = inner.map.get(&key).map_or(0, |old| old.freq) + 1;
        let entry = Entry { value, tick, freq };
        let index_key = Inner::index_key(self.policy, &entry);
        if let Some(old) = inner.map.insert(key.clone(), entry) {
            inner.index.remove(&Inner::index_key(self.policy, &old));
        }
        if let Some(capacity) = self.capacity {
            inner.index.insert(index_key, key);
            let mut evicted = 0u64;
            while inner.map.len() > capacity {
                let (&victim_key, _) = inner.index.iter().next().expect("index tracks map");
                let victim = inner.index.remove(&victim_key).expect("victim present");
                inner.map.remove(&victim);
                evicted += 1;
            }
            if evicted > 0 {
                self.stats.write().evictions += evicted;
                crate::obs::ServingObs::global()
                    .store_evictions
                    .add(evicted);
            }
        }
    }

    /// Fetches the value under `key`, if any. On a bounded store a hit also
    /// refreshes the key's recency.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        let value = if self.capacity.is_some() {
            let mut inner = self.inner.write();
            let value = inner.map.get(key).map(|e| e.value.clone());
            if value.is_some() {
                inner.touch(key, self.policy);
            }
            value
        } else {
            self.inner.read().map.get(key).map(|e| e.value.clone())
        };
        let mut stats = self.stats.write();
        stats.reads += 1;
        if let Some(v) = &value {
            stats.hits += 1;
            stats.bytes_read += v.len() as u64;
        }
        value
    }

    /// Removes the value under `key`, returning it if present.
    pub fn remove(&self, key: &str) -> Option<Bytes> {
        let mut inner = self.inner.write();
        let entry = inner.map.remove(key)?;
        inner.index.remove(&Inner::index_key(self.policy, &entry));
        Some(entry.value)
    }

    /// Whether `key` is currently stored. Unlike [`KvStore::get`] this does
    /// not count as store traffic and never refreshes recency or frequency
    /// — it exists so measurement harnesses can probe residency without
    /// perturbing what they measure.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.read().map.contains_key(key)
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// Returns `true` when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.read().map.is_empty()
    }

    /// Total bytes currently stored across all values.
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .read()
            .map
            .values()
            .map(|e| e.value.len() as u64)
            .sum()
    }

    /// Snapshot of the running counters.
    pub fn stats(&self) -> StoreStats {
        *self.stats.read()
    }

    /// Resets the running counters (stored data is kept).
    pub fn reset_stats(&self) {
        *self.stats.write() = StoreStats::default();
    }
}

/// Serializes an `f32` hidden state into bytes (little-endian).
pub fn encode_state_f32(state: &[f32]) -> Bytes {
    let mut out = Vec::with_capacity(state.len() * 4);
    for v in state {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Deserializes an `f32` hidden state from bytes produced by
/// [`encode_state_f32`].
///
/// # Panics
///
/// Panics if the byte length is not a multiple of 4.
pub fn decode_state_f32(bytes: &Bytes) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "state byte length must be a multiple of 4"
    );
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// A uniformly quantized hidden state: one byte per dimension plus a scale
/// and offset (§9: "neural network quantization methods can also be applied
/// to store single bytes instead of floating-point numbers").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedState {
    /// Per-dimension codes.
    pub codes: Vec<u8>,
    /// Dequantized value = `offset + code × scale`.
    pub scale: f32,
    /// See `scale`.
    pub offset: f32,
}

impl QuantizedState {
    /// Quantizes a state vector to 8 bits per dimension.
    pub fn quantize(state: &[f32]) -> Self {
        let min = state.iter().copied().fold(f32::INFINITY, f32::min);
        let max = state.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (min, max) = if state.is_empty() || !min.is_finite() {
            (0.0, 0.0)
        } else {
            (min, max)
        };
        let scale = if max > min { (max - min) / 255.0 } else { 1.0 };
        let codes = state
            .iter()
            .map(|&v| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8)
            .collect();
        Self {
            codes,
            scale,
            offset: min,
        }
    }

    /// Reconstructs the (lossy) state vector.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| self.offset + c as f32 * self.scale)
            .collect()
    }

    /// Serialized size in bytes (codes + scale + offset).
    pub fn encoded_bytes(&self) -> usize {
        self.codes.len() + 8
    }

    /// Encodes into bytes for the key-value store.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_bytes());
        out.extend_from_slice(&self.scale.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.codes);
        Bytes::from(out)
    }

    /// Decodes from bytes produced by [`QuantizedState::encode`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer is shorter than the 8-byte header.
    pub fn decode(bytes: &Bytes) -> Self {
        assert!(bytes.len() >= 8, "quantized state too short");
        let scale = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let offset = f32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        Self {
            codes: bytes[8..].to_vec(),
            scale,
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = KvStore::new();
        assert!(store.is_empty());
        store.put("user-1", Bytes::from_static(b"hello"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("user-1").unwrap(), Bytes::from_static(b"hello"));
        assert!(store.get("user-2").is_none());
        let stats = store.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.bytes_written, 5);
        assert_eq!(stats.bytes_read, 5);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        store.reset_stats();
        assert_eq!(store.stats().reads, 0);
        assert_eq!(store.stored_bytes(), 5);
        assert_eq!(
            store.remove("user-1").unwrap(),
            Bytes::from_static(b"hello")
        );
        assert!(store.is_empty());
    }

    #[test]
    fn f32_state_roundtrip() {
        let state = vec![0.5, -1.25, 3.75, 0.0];
        let bytes = encode_state_f32(&state);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_state_f32(&bytes), state);
    }

    #[test]
    fn paper_scale_state_is_512_bytes() {
        let state = vec![0.1f32; 128];
        assert_eq!(encode_state_f32(&state).len(), 512);
    }

    #[test]
    fn quantization_is_close_and_4x_smaller() {
        let state: Vec<f32> = (0..128).map(|i| (i as f32 / 13.0).sin()).collect();
        let q = QuantizedState::quantize(&state);
        let back = q.dequantize();
        assert_eq!(back.len(), state.len());
        let max_err = state
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.01, "quantization error too large: {max_err}");
        assert!(q.encoded_bytes() * 3 < encode_state_f32(&state).len());
        // Encode/decode roundtrip.
        let decoded = QuantizedState::decode(&q.encode());
        assert_eq!(decoded, q);
    }

    #[test]
    fn quantization_handles_constant_and_empty_vectors() {
        let q = QuantizedState::quantize(&[1.5; 10]);
        assert!(q.dequantize().iter().all(|&v| (v - 1.5).abs() < 1e-6));
        let q = QuantizedState::quantize(&[]);
        assert!(q.dequantize().is_empty());
    }

    #[test]
    fn bounded_store_evicts_least_recently_used() {
        let store = KvStore::with_capacity(3);
        assert_eq!(store.capacity(), Some(3));
        store.put("a", Bytes::from_static(b"1"));
        store.put("b", Bytes::from_static(b"2"));
        store.put("c", Bytes::from_static(b"3"));
        // Touch "a" so "b" becomes the least recently used.
        assert!(store.get("a").is_some());
        store.put("d", Bytes::from_static(b"4"));
        assert_eq!(store.len(), 3);
        assert!(store.get("b").is_none(), "LRU key should be evicted");
        assert!(store.get("a").is_some());
        assert!(store.get("c").is_some());
        assert!(store.get("d").is_some());
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn bounded_store_replacement_does_not_evict() {
        let store = KvStore::with_capacity(2);
        store.put("a", Bytes::from_static(b"1"));
        store.put("b", Bytes::from_static(b"2"));
        // Overwriting an existing key keeps the store at capacity.
        store.put("a", Bytes::from_static(b"11"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 0);
        assert_eq!(store.get("a").unwrap(), Bytes::from_static(b"11"));
    }

    #[test]
    fn bounded_store_never_exceeds_capacity() {
        let store = KvStore::with_capacity(8);
        for i in 0..100 {
            store.put(format!("k-{i}"), Bytes::from(vec![0u8; 4]));
            assert!(store.len() <= 8, "len {} exceeds capacity", store.len());
        }
        assert_eq!(store.len(), 8);
        assert_eq!(store.stats().evictions, 92);
        // The survivors are exactly the 8 most recently inserted keys.
        for i in 92..100 {
            assert!(store.get(&format!("k-{i}")).is_some(), "k-{i} missing");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = KvStore::with_capacity(0);
    }

    #[test]
    fn frequency_weighted_store_keeps_hot_keys_under_scan_pressure() {
        let store = KvStore::with_capacity_and_policy(4, EvictionPolicy::FrequencyWeighted);
        assert_eq!(store.eviction_policy(), EvictionPolicy::FrequencyWeighted);
        store.put("hot", Bytes::from_static(b"h"));
        for _ in 0..10 {
            assert!(store.get("hot").is_some());
        }
        // A scan of one-shot keys floods the store; each newcomer has
        // frequency 1, so they evict each other while "hot" survives.
        for i in 0..50 {
            store.put(format!("scan-{i}"), Bytes::from_static(b"s"));
        }
        assert_eq!(store.len(), 4);
        assert!(
            store.get("hot").is_some(),
            "frequency-weighted eviction must keep the hot key"
        );
        // The same scan against an LRU store washes the hot key out.
        let lru = KvStore::with_capacity(4);
        lru.put("hot", Bytes::from_static(b"h"));
        for _ in 0..10 {
            assert!(lru.get("hot").is_some());
        }
        for i in 0..50 {
            lru.put(format!("scan-{i}"), Bytes::from_static(b"s"));
        }
        assert!(lru.get("hot").is_none(), "LRU evicts the unscanned hot key");
    }

    #[test]
    fn frequency_ties_break_by_recency_and_puts_count_as_touches() {
        let store = KvStore::with_capacity_and_policy(2, EvictionPolicy::FrequencyWeighted);
        store.put("a", Bytes::from_static(b"1")); // freq 1, older
        store.put("b", Bytes::from_static(b"2")); // freq 1, newer
        store.put("c", Bytes::from_static(b"3")); // evicts "a" (tie → oldest)
        assert!(store.get("a").is_none());
        assert!(store.get("b").is_some()); // freq 2
                                           // Re-putting "c" bumps its frequency to 2; inserting "d" (freq 1)
                                           // cannot displace either freq-2 key, so "d" is itself the victim.
        store.put("c", Bytes::from_static(b"3"));
        store.put("d", Bytes::from_static(b"4"));
        assert_eq!(store.len(), 2);
        assert!(store.get("d").is_none());
        assert!(store.get("b").is_some());
        assert!(store.get("c").is_some());
    }

    #[test]
    fn contains_key_does_not_count_as_traffic_or_refresh_recency() {
        let store = KvStore::with_capacity(2);
        store.put("a", Bytes::from_static(b"1"));
        store.put("b", Bytes::from_static(b"2"));
        let reads_before = store.stats().reads;
        assert!(store.contains_key("a"));
        assert!(!store.contains_key("zzz"));
        assert_eq!(store.stats().reads, reads_before);
        // contains_key must not have refreshed "a": it is still the LRU
        // victim when "c" arrives.
        store.put("c", Bytes::from_static(b"3"));
        assert!(!store.contains_key("a"));
        assert!(store.contains_key("b"));
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = std::sync::Arc::new(KvStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.put(format!("k-{t}-{i}"), Bytes::from(vec![0u8; 8]));
                    let _ = s.get(&format!("k-{t}-{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
        assert_eq!(store.stats().writes, 400);
        assert_eq!(store.stats().hits, 400);
    }
}
