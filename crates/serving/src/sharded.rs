//! A sharded hidden-state store for throughput-oriented serving.
//!
//! The single [`KvStore`] of §9 serializes every
//! access through one `RwLock`'d map; at production concurrency ("heavy
//! traffic from millions of users") that lock becomes the bottleneck. The
//! [`ShardedStateStore`] splits the key space into `N` independent shards
//! keyed by a hash of the user id, each shard its own instrumented
//! `KvStore` with interior mutability — so requests for different users
//! proceed concurrently and only same-shard writers contend.
//!
//! The store keeps the same `hidden/<user-id>` key format and f32
//! encoding as the single-store pipeline, so the per-shard traffic
//! counters stay comparable with the §9 cost model.

use crate::kv_store::{decode_state_f32, encode_state_f32, EvictionPolicy, KvStore, StoreStats};
use pp_data::schema::UserId;

/// A fixed-size array of independent [`KvStore`] shards keyed by user-id
/// hash.
#[derive(Debug)]
pub struct ShardedStateStore {
    shards: Vec<KvStore>,
}

impl ShardedStateStore {
    /// Creates a store with `num_shards` independent shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "ShardedStateStore needs at least one shard");
        Self {
            shards: (0..num_shards).map(|_| KvStore::new()).collect(),
        }
    }

    /// Creates a store bounded to **exactly** `total_capacity` states
    /// across `num_shards` shards: shard capacities are
    /// `total_capacity / num_shards` each, with the remainder distributed
    /// one state at a time to the lowest-indexed shards, so the per-shard
    /// bounds sum to `total_capacity` and [`ShardedStateStore::capacity`]
    /// reports it exactly. Each shard evicts its least-recently-used state
    /// beyond its bound (evictions show up in [`StoreStats::evictions`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `total_capacity < num_shards`
    /// (every shard must be able to hold at least one state).
    pub fn with_capacity(num_shards: usize, total_capacity: usize) -> Self {
        Self::with_capacity_and_policy(num_shards, total_capacity, EvictionPolicy::Lru)
    }

    /// Like [`ShardedStateStore::with_capacity`], with an explicit
    /// per-shard [`EvictionPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `total_capacity < num_shards`.
    pub fn with_capacity_and_policy(
        num_shards: usize,
        total_capacity: usize,
        policy: EvictionPolicy,
    ) -> Self {
        assert!(num_shards > 0, "ShardedStateStore needs at least one shard");
        assert!(
            total_capacity >= num_shards,
            "total_capacity ({total_capacity}) must be at least num_shards ({num_shards}) \
             so every shard can hold a state"
        );
        let base = total_capacity / num_shards;
        let remainder = total_capacity % num_shards;
        Self {
            shards: (0..num_shards)
                .map(|shard| {
                    let capacity = base + usize::from(shard < remainder);
                    KvStore::with_capacity_and_policy(capacity, policy)
                })
                .collect(),
        }
    }

    /// Maximum number of states the store can hold (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shards
            .iter()
            .map(KvStore::capacity)
            .try_fold(0usize, |acc, c| c.map(|c| acc + c))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a user's state lives in. SplitMix64 finalizer over the raw
    /// id: consecutive user ids (the common synthetic-workload case) spread
    /// uniformly instead of striping.
    pub fn shard_index(&self, user: UserId) -> usize {
        let mut z = user.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard (for per-shard instrumentation).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_shards()`.
    pub fn shard(&self, index: usize) -> &KvStore {
        &self.shards[index]
    }

    fn key(user: UserId) -> String {
        format!("hidden/{user}")
    }

    /// Fetches a user's hidden state, if one is stored.
    pub fn get_state(&self, user: UserId) -> Option<Vec<f32>> {
        let obs = crate::obs::ServingObs::global();
        obs.store_reads.inc();
        let state = self.shards[self.shard_index(user)]
            .get(&Self::key(user))
            .map(|bytes| decode_state_f32(&bytes));
        if state.is_some() {
            obs.store_hits.inc();
        }
        state
    }

    /// Stores a user's hidden state, replacing any previous one.
    pub fn put_state(&self, user: UserId, state: &[f32]) {
        crate::obs::ServingObs::global().store_writes.inc();
        self.shards[self.shard_index(user)].put(Self::key(user), encode_state_f32(state));
    }

    /// Removes a user's hidden state, returning it if present.
    pub fn remove_state(&self, user: UserId) -> Option<Vec<f32>> {
        self.shards[self.shard_index(user)]
            .remove(&Self::key(user))
            .map(|bytes| decode_state_f32(&bytes))
    }

    /// Whether a state is currently stored for `user`, without counting as
    /// store traffic or refreshing eviction recency/frequency — for
    /// measurement harnesses probing residency (e.g. the cold-start-regret
    /// eviction study) without perturbing it.
    pub fn contains_state(&self, user: UserId) -> bool {
        self.shards[self.shard_index(user)].contains_key(&Self::key(user))
    }

    /// Total number of stored states across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(KvStore::len).sum()
    }

    /// Returns `true` when no shard holds any state.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(KvStore::is_empty)
    }

    /// Total bytes stored across all shards.
    pub fn stored_bytes(&self) -> u64 {
        self.shards.iter().map(KvStore::stored_bytes).sum()
    }

    /// Aggregated traffic counters across all shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.hits += s.hits;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.evictions += s.evictions;
        }
        total
    }

    /// Per-shard traffic counters (index = shard index).
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(KvStore::stats).collect()
    }

    /// Resets the traffic counters of every shard (stored data is kept).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_after_put_roundtrips_across_shards() {
        let store = ShardedStateStore::new(8);
        for id in 0..200u64 {
            let state: Vec<f32> = (0..16).map(|d| (id * 31 + d) as f32 * 0.25).collect();
            store.put_state(UserId(id), &state);
        }
        assert_eq!(store.len(), 200);
        for id in 0..200u64 {
            let expected: Vec<f32> = (0..16).map(|d| (id * 31 + d) as f32 * 0.25).collect();
            assert_eq!(store.get_state(UserId(id)).unwrap(), expected, "user {id}");
        }
        assert!(store.get_state(UserId(10_000)).is_none());
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let store = ShardedStateStore::new(16);
        let mut counts = [0usize; 16];
        for id in 0..4096u64 {
            let shard = store.shard_index(UserId(id));
            assert_eq!(shard, store.shard_index(UserId(id)), "stable for {id}");
            counts[shard] += 1;
        }
        // Perfectly uniform would be 256 per shard; allow a generous band.
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (128..=384).contains(&count),
                "shard {shard} holds {count} of 4096 users"
            );
        }
    }

    #[test]
    fn stats_aggregate_over_shards() {
        let store = ShardedStateStore::new(4);
        store.put_state(UserId(1), &[1.0; 8]);
        store.put_state(UserId(2), &[2.0; 8]);
        let _ = store.get_state(UserId(1));
        let _ = store.get_state(UserId(3)); // miss
        let stats = store.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(store.stored_bytes(), 2 * 8 * 4);
        assert_eq!(store.shard_stats().len(), 4);
        store.reset_stats();
        assert_eq!(store.stats().reads, 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn remove_only_touches_the_owning_user() {
        let store = ShardedStateStore::new(3);
        store.put_state(UserId(7), &[7.0; 4]);
        store.put_state(UserId(8), &[8.0; 4]);
        assert_eq!(store.remove_state(UserId(7)).unwrap(), vec![7.0; 4]);
        assert!(store.get_state(UserId(7)).is_none());
        assert_eq!(store.get_state(UserId(8)).unwrap(), vec![8.0; 4]);
    }

    #[test]
    fn capacity_sums_exactly_even_when_shards_do_not_divide_it() {
        // Regression: div_ceil gave every shard ceil(total/shards), so
        // with_capacity(4, 10) admitted 12 states and reported capacity 12.
        let store = ShardedStateStore::with_capacity(4, 10);
        assert_eq!(store.capacity(), Some(10));
        let shard_caps: Vec<usize> = (0..store.num_shards())
            .map(|s| store.shard(s).capacity().unwrap())
            .collect();
        assert_eq!(shard_caps.iter().sum::<usize>(), 10);
        assert_eq!(shard_caps, vec![3, 3, 2, 2]);
        // However traffic hashes, the population can never exceed the bound.
        for id in 0..5_000u64 {
            store.put_state(UserId(id), &[id as f32; 4]);
        }
        assert!(store.len() <= 10, "len {} exceeds capacity 10", store.len());
        // An exactly-divisible split stays uniform.
        let even = ShardedStateStore::with_capacity(8, 64);
        assert_eq!(even.capacity(), Some(64));
        for s in 0..8 {
            assert_eq!(even.shard(s).capacity(), Some(8));
        }
    }

    #[test]
    #[should_panic(expected = "must be at least num_shards")]
    fn capacity_below_shard_count_panics() {
        let _ = ShardedStateStore::with_capacity(8, 7);
    }

    #[test]
    fn frequency_weighted_store_propagates_policy_to_every_shard() {
        let store =
            ShardedStateStore::with_capacity_and_policy(4, 10, EvictionPolicy::FrequencyWeighted);
        assert_eq!(store.capacity(), Some(10));
        for s in 0..store.num_shards() {
            assert_eq!(
                store.shard(s).eviction_policy(),
                EvictionPolicy::FrequencyWeighted
            );
        }
    }

    #[test]
    fn bounded_store_caps_population_and_counts_evictions() {
        let store = ShardedStateStore::with_capacity(4, 64);
        assert_eq!(store.capacity(), Some(64));
        assert_eq!(ShardedStateStore::new(4).capacity(), None);
        for id in 0..1_000u64 {
            store.put_state(UserId(id), &[id as f32; 8]);
        }
        // Each shard holds at most 64/4 = 16 states.
        assert!(store.len() <= 64, "len {} exceeds capacity", store.len());
        for shard in 0..store.num_shards() {
            assert!(store.shard(shard).len() <= 16);
        }
        let stats = store.stats();
        assert_eq!(stats.writes, 1_000);
        assert_eq!(stats.evictions, 1_000 - store.len() as u64);
        // Recently written users survive; a long-evicted one is gone.
        assert!(store.get_state(UserId(999)).is_some());
        assert!(store.get_state(UserId(0)).is_none());
    }

    #[test]
    fn concurrent_writers_on_distinct_users_do_not_bleed() {
        let store = Arc::new(ShardedStateStore::new(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = UserId(t * 1_000 + i);
                    let state = vec![(t * 1_000 + i) as f32; 8];
                    store.put_state(id, &state);
                    assert_eq!(store.get_state(id).unwrap(), state);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 200);
        // Spot-check cross-thread isolation after the fact.
        assert_eq!(store.get_state(UserId(3_007)).unwrap(), vec![3_007.0f32; 8]);
    }
}
