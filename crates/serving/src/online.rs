//! Online-experiment replay (paper §9, Figure 7).
//!
//! The paper's online experiment compares the productionized RNN against the
//! incumbent GBDT on users that start with an *empty history*, tracking
//! PR-AUC day by day for 30 days (cold-start behaviour) and the lift in
//! successful prefetches at a threshold targeting 60% precision.
//!
//! Here the experiment is a replay over held-out synthetic users: both
//! models score every session of every day, with features/hidden states
//! built strictly from the sessions before each prediction, and metrics are
//! sliced by day since the start of the experiment.

use pp_baselines::Gbdt;
use pp_data::schema::Dataset;
use pp_features::baseline::{build_session_examples, BaselineFeaturizer};
use pp_metrics::pr::PrCurve;
use pp_rnn::{RnnModel, RnnTrainer, ScoredPrediction, TrainerConfig};
use serde::{Deserialize, Serialize};

/// Daily metrics of one model during the online replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyMetric {
    /// Day since the start of the experiment (0-based).
    pub day: u32,
    /// Number of predictions served that day.
    pub predictions: usize,
    /// Number of accesses that day.
    pub accesses: usize,
    /// PR-AUC over that day's predictions (0 when the day has no positives).
    pub pr_auc: f64,
}

/// Result of the online comparison between the RNN and the GBDT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineComparison {
    /// Daily PR-AUC of the RNN model (Figure 7, "RNN" series).
    pub rnn_daily: Vec<DailyMetric>,
    /// Daily PR-AUC of the GBDT model (Figure 7, "GBDT" series).
    pub gbdt_daily: Vec<DailyMetric>,
    /// Recall of the RNN at the target precision (paper: 51.1% at 60%).
    pub rnn_recall_at_target: f64,
    /// Recall of the GBDT at the target precision (paper: 47.4% at 60%).
    pub gbdt_recall_at_target: f64,
    /// Relative increase in successful prefetches,
    /// `(rnn_recall − gbdt_recall) / gbdt_recall` (paper: +7.81%).
    pub successful_prefetch_lift: f64,
    /// The target precision used for the thresholds.
    pub target_precision: f64,
}

/// Groups scored predictions by day and computes daily PR-AUC.
pub fn daily_metrics(predictions: &[ScoredPrediction], num_days: u32) -> Vec<DailyMetric> {
    (0..num_days)
        .map(|day| {
            let day_preds: Vec<&ScoredPrediction> =
                predictions.iter().filter(|p| p.day_offset == day).collect();
            let scores: Vec<f64> = day_preds.iter().map(|p| p.score).collect();
            let labels: Vec<bool> = day_preds.iter().map(|p| p.label).collect();
            let accesses = labels.iter().filter(|&&l| l).count();
            let pr_auc = if accesses == 0 || scores.is_empty() {
                0.0
            } else {
                PrCurve::compute(&scores, &labels).auc()
            };
            DailyMetric {
                day,
                predictions: scores.len(),
                accesses,
                pr_auc,
            }
        })
        .collect()
}

/// Runs the online comparison on a set of held-out users.
///
/// Both models were trained elsewhere (on the training users); here they
/// only score. `target_precision` is the operating constraint used to pick
/// each model's own threshold (the paper uses 60% for MobileTab).
pub fn run_online_comparison(
    rnn: &RnnModel,
    gbdt: &Gbdt,
    gbdt_featurizer: &BaselineFeaturizer,
    dataset: &Dataset,
    test_users: &[usize],
    target_precision: f64,
) -> OnlineComparison {
    // RNN: score every session of the test users (no last-days filter — the
    // whole point is to watch the cold start).
    let trainer = RnnTrainer::new(TrainerConfig::default());
    let rnn_scored = trainer.evaluate(rnn, dataset, test_users, None);

    // GBDT: build examples over the same sessions with warm-up-free features
    // (every user starts cold at day 0, matching the experiment design).
    let examples = build_session_examples(dataset, test_users, gbdt_featurizer, None);
    let gbdt_scores = gbdt.predict_batch(&examples);
    let gbdt_scored: Vec<ScoredPrediction> = examples
        .iter()
        .zip(&gbdt_scores)
        .map(|(e, &score)| ScoredPrediction {
            user_index: e.user_index,
            day_offset: e.day_offset,
            score,
            label: e.label,
        })
        .collect();

    let rnn_daily = daily_metrics(&rnn_scored, dataset.num_days);
    let gbdt_daily = daily_metrics(&gbdt_scored, dataset.num_days);

    // Operating point: each model maximizes recall subject to the precision
    // constraint, exactly how thresholds are chosen in production (§8–9).
    let recall_at = |scored: &[ScoredPrediction]| {
        let scores: Vec<f64> = scored.iter().map(|p| p.score).collect();
        let labels: Vec<bool> = scored.iter().map(|p| p.label).collect();
        PrCurve::compute(&scores, &labels).recall_at_precision(target_precision)
    };
    let rnn_recall = recall_at(&rnn_scored);
    let gbdt_recall = recall_at(&gbdt_scored);
    let lift = if gbdt_recall > 0.0 {
        (rnn_recall - gbdt_recall) / gbdt_recall
    } else {
        0.0
    };
    OnlineComparison {
        rnn_daily,
        gbdt_daily,
        rnn_recall_at_target: rnn_recall,
        gbdt_recall_at_target: gbdt_recall,
        successful_prefetch_lift: lift,
        target_precision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::DatasetKind;
    use pp_data::synth::{MobileTabConfig, MobileTabGenerator, SyntheticGenerator};
    use pp_features::baseline::{ElapsedEncoding, FeatureSet};
    use pp_rnn::{RnnModelConfig, TaskKind};

    #[test]
    fn daily_metrics_slice_by_day() {
        let preds = vec![
            ScoredPrediction {
                user_index: 0,
                day_offset: 0,
                score: 0.9,
                label: true,
            },
            ScoredPrediction {
                user_index: 0,
                day_offset: 0,
                score: 0.1,
                label: false,
            },
            ScoredPrediction {
                user_index: 1,
                day_offset: 1,
                score: 0.8,
                label: true,
            },
        ];
        let daily = daily_metrics(&preds, 3);
        assert_eq!(daily.len(), 3);
        assert_eq!(daily[0].predictions, 2);
        assert_eq!(daily[0].accesses, 1);
        assert!((daily[0].pr_auc - 1.0).abs() < 1e-12);
        assert_eq!(daily[1].predictions, 1);
        assert_eq!(daily[2].predictions, 0);
        assert_eq!(daily[2].pr_auc, 0.0);
    }

    #[test]
    fn online_comparison_produces_full_series() {
        let ds = MobileTabGenerator::new(MobileTabConfig {
            num_users: 12,
            num_days: 6,
            ..Default::default()
        })
        .generate();
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let featurizer =
            BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        let examples = build_session_examples(&ds, &idx, &featurizer, None);
        let gbdt = Gbdt::train(
            &examples,
            pp_baselines::GbdtConfig {
                num_trees: 10,
                max_depth: 3,
                ..Default::default()
            },
        );
        let rnn = RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            0,
        );
        let cmp = run_online_comparison(&rnn, &gbdt, &featurizer, &ds, &idx, 0.5);
        assert_eq!(cmp.rnn_daily.len(), 6);
        assert_eq!(cmp.gbdt_daily.len(), 6);
        assert!(cmp.rnn_recall_at_target >= 0.0 && cmp.rnn_recall_at_target <= 1.0);
        assert!(cmp.gbdt_recall_at_target >= 0.0 && cmp.gbdt_recall_at_target <= 1.0);
        assert_eq!(cmp.target_precision, 0.5);
        // Both series cover the same sessions.
        let rnn_total: usize = cmp.rnn_daily.iter().map(|d| d.predictions).sum();
        let gbdt_total: usize = cmp.gbdt_daily.iter().map(|d| d.predictions).sum();
        assert_eq!(rnn_total, gbdt_total);
        assert_eq!(rnn_total, ds.num_sessions());
    }
}
