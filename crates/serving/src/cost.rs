//! Serving cost comparison between the RNN path and the aggregation-feature
//! path (paper §9, "Relative production resources").
//!
//! The paper's claims, which this module lets you recompute on any
//! model/dataset pair:
//!
//! * the RNN's *model* computation is ≈ 9.5× the GBDT's;
//! * but the aggregation path needs ≈ 20 key-value lookups per prediction
//!   (one per window × context-subset cell plus the elapsed-time keys) and
//!   may store thousands of keys per user, while the RNN path needs exactly
//!   one 512-byte lookup;
//! * so the *overall* serving cost drops by roughly 10× with the RNN.

use pp_baselines::Gbdt;
use pp_data::schema::Dataset;
use pp_features::aggregation::AggregationState;
use pp_features::baseline::BaselineFeaturizer;
use pp_rnn::RnnModel;
use serde::{Deserialize, Serialize};

/// Per-prediction serving profile of one model path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingProfile {
    /// Key-value lookups needed to serve one prediction.
    pub lookups_per_prediction: f64,
    /// Bytes fetched from the store per prediction.
    pub bytes_per_prediction: f64,
    /// Model-evaluation FLOPs per prediction (tree comparisons are counted
    /// as one FLOP each).
    pub model_flops_per_prediction: f64,
    /// Average number of store keys per user.
    pub storage_keys_per_user: f64,
    /// Average stored bytes per user.
    pub storage_bytes_per_user: f64,
}

/// Relative cost of two serving paths under a simple cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// The aggregation-feature (baseline) path.
    pub baseline: ServingProfile,
    /// The hidden-state (RNN) path.
    pub rnn: ServingProfile,
    /// RNN model FLOPs divided by baseline model FLOPs (paper: ≈ 9.5).
    pub model_compute_ratio: f64,
    /// Baseline lookups divided by RNN lookups (paper: ≈ 20).
    pub lookup_ratio: f64,
    /// Baseline overall cost divided by RNN overall cost (paper: ≈ 10).
    pub overall_cost_ratio: f64,
}

/// Weights converting lookups/bytes/FLOPs into a single abstract cost unit.
/// The defaults reflect the paper's observation that serving aggregate
/// features "requires about two orders of magnitude more compute than the
/// model computation itself": a remote key-value lookup is vastly more
/// expensive than an arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Cost of one key-value lookup, in FLOP-equivalents.
    pub flops_per_lookup: f64,
    /// Cost of moving one byte from the store, in FLOP-equivalents.
    pub flops_per_byte: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            flops_per_lookup: 50_000.0,
            flops_per_byte: 10.0,
        }
    }
}

impl ServingProfile {
    /// Total per-prediction cost of this path under `weights`, in abstract
    /// FLOP-equivalent units — the single formula behind both the §9
    /// comparison ([`compare`]) and the precompute budget
    /// (`pp-precompute`'s token bucket is denominated in these units; a
    /// multi-activity deployment derives each activity's per-prefetch cost
    /// from its own model's profile through this function).
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_serving::{CostWeights, ServingProfile};
    ///
    /// let rnn_like = ServingProfile {
    ///     lookups_per_prediction: 1.0,
    ///     bytes_per_prediction: 512.0,
    ///     model_flops_per_prediction: 2_400.0,
    ///     storage_keys_per_user: 1.0,
    ///     storage_bytes_per_user: 512.0,
    /// };
    /// // one lookup (50 000) + 512 bytes (5 120) + the model FLOPs
    /// assert_eq!(rnn_like.cost_units(&CostWeights::default()), 57_520.0);
    /// ```
    pub fn cost_units(&self, weights: &CostWeights) -> f64 {
        self.lookups_per_prediction * weights.flops_per_lookup
            + self.bytes_per_prediction * weights.flops_per_byte
            + self.model_flops_per_prediction
    }
}

/// Measures the serving profile of the aggregation-feature path on a sample
/// of users: replays each user's history through [`AggregationState`] and
/// records lookup counts, key counts and the GBDT evaluation cost.
pub fn baseline_profile(
    dataset: &Dataset,
    user_indices: &[usize],
    featurizer: &BaselineFeaturizer,
    gbdt: &Gbdt,
) -> ServingProfile {
    let mut total_keys = 0u64;
    let mut total_users = 0u64;
    let mut lookups = 0f64;
    for &ui in user_indices {
        let user = &dataset.users[ui];
        let mut state = AggregationState::new(dataset.kind);
        for s in &user.sessions {
            state.record(s.timestamp, &s.context, s.accessed);
        }
        lookups = state.lookups_per_prediction() as f64;
        total_keys += state.num_storage_keys() as u64;
        total_users += 1;
    }
    let keys_per_user = if total_users == 0 {
        0.0
    } else {
        total_keys as f64 / total_users as f64
    };
    // Each aggregation cell stores two counters (sessions, accesses) as u32
    // plus the last-access / last-session timestamps per subset; 16 bytes per
    // key is a generous lower bound.
    let bytes_per_key = 16.0;
    // Each lookup returns roughly one cell's worth of bytes.
    let bytes_per_prediction = lookups * bytes_per_key;
    // GBDT evaluation: one comparison per tree level, plus the feature-vector
    // assembly which is proportional to its dimensionality.
    let model_flops = gbdt.comparisons_per_prediction() as f64 + featurizer.dims() as f64;
    ServingProfile {
        lookups_per_prediction: lookups,
        bytes_per_prediction,
        model_flops_per_prediction: model_flops,
        storage_keys_per_user: keys_per_user,
        storage_bytes_per_user: keys_per_user * bytes_per_key,
    }
}

/// Serving profile of the RNN path: one lookup returning one hidden state,
/// and the `RNN_predict` FLOPs.
pub fn rnn_profile(model: &RnnModel) -> ServingProfile {
    ServingProfile {
        lookups_per_prediction: 1.0,
        bytes_per_prediction: model.state_bytes() as f64,
        model_flops_per_prediction: model.predict_flops() as f64,
        storage_keys_per_user: 1.0,
        storage_bytes_per_user: model.state_bytes() as f64,
    }
}

/// Combines two profiles under the cost weights.
pub fn compare(
    baseline: ServingProfile,
    rnn: ServingProfile,
    weights: CostWeights,
) -> CostComparison {
    let total = |p: &ServingProfile| p.cost_units(&weights);
    CostComparison {
        baseline,
        rnn,
        model_compute_ratio: rnn.model_flops_per_prediction
            / baseline.model_flops_per_prediction.max(1.0),
        lookup_ratio: baseline.lookups_per_prediction / rnn.lookups_per_prediction.max(1e-9),
        overall_cost_ratio: total(&baseline) / total(&rnn).max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_baselines::GbdtConfig;
    use pp_data::schema::DatasetKind;
    use pp_data::synth::{MobileTabConfig, MobileTabGenerator, SyntheticGenerator};
    use pp_features::baseline::{build_session_examples, ElapsedEncoding, FeatureSet};
    use pp_rnn::{RnnModelConfig, TaskKind};

    #[test]
    fn rnn_profile_matches_model_dimensions() {
        let model = RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::default(),
            0,
        );
        let p = rnn_profile(&model);
        assert_eq!(p.lookups_per_prediction, 1.0);
        assert_eq!(p.bytes_per_prediction, 512.0);
        assert_eq!(p.storage_keys_per_user, 1.0);
        assert!(p.model_flops_per_prediction > 0.0);
    }

    #[test]
    fn comparison_reproduces_paper_shape() {
        // Train a small GBDT and compute both profiles on a small dataset.
        let ds = MobileTabGenerator::new(MobileTabConfig {
            num_users: 30,
            num_days: 10,
            ..Default::default()
        })
        .generate();
        let featurizer =
            BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let examples = build_session_examples(&ds, &idx, &featurizer, Some(7));
        let gbdt = Gbdt::train(
            &examples,
            GbdtConfig {
                num_trees: 20,
                max_depth: 6,
                ..Default::default()
            },
        );
        let rnn = RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::default(),
            0,
        );
        let base = baseline_profile(&ds, &idx, &featurizer, &gbdt);
        let comparison = compare(base, rnn_profile(&rnn), CostWeights::default());

        // The qualitative shape of §9: the RNN model itself is more expensive…
        assert!(
            comparison.model_compute_ratio > 2.0,
            "RNN model should cost more FLOPs than GBDT (ratio {})",
            comparison.model_compute_ratio
        );
        // …but it needs far fewer lookups (paper: ~20×)…
        assert!(
            comparison.lookup_ratio >= 10.0,
            "baseline should need many more lookups (ratio {})",
            comparison.lookup_ratio
        );
        // …and the overall serving cost favours the RNN by a large factor.
        assert!(
            comparison.overall_cost_ratio > 2.0,
            "overall cost should favour the RNN (ratio {})",
            comparison.overall_cost_ratio
        );
        // The baseline stores many more keys per user than the RNN's single key.
        assert!(base.storage_keys_per_user > 10.0);
    }

    #[test]
    fn lookup_counts_match_aggregation_state() {
        let ds = MobileTabGenerator::new(MobileTabConfig {
            num_users: 3,
            num_days: 5,
            ..Default::default()
        })
        .generate();
        let featurizer =
            BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        let idx: Vec<usize> = (0..3).collect();
        let examples = build_session_examples(&ds, &idx, &featurizer, None);
        let gbdt = Gbdt::train(
            &examples,
            GbdtConfig {
                num_trees: 3,
                ..Default::default()
            },
        );
        let p = baseline_profile(&ds, &idx, &featurizer, &gbdt);
        // MobileTab: 4 subsets × 4 windows + 4 elapsed = 20 lookups (§9).
        assert_eq!(p.lookups_per_prediction, 20.0);
    }
}
