//! Batched request scheduling: coalesce concurrent session-start requests
//! into one GRU/MLP forward pass per batch.
//!
//! The single-request path builds one autograd graph per prediction —
//! per-call overhead (graph nodes, allocations) dominates the actual
//! arithmetic at the paper's model sizes. At production request rates many
//! session starts are in flight at once, so the serving engine can instead
//! drain the arrival queue into batches and run **one `B × d` matmul per
//! layer instead of `B` separate `1 × d` matmuls**
//! ([`RnnModel::predict_proba_batch`] / [`RnnModel::advance_state_batch`]).
//!
//! Two layers are provided:
//!
//! * [`BatchScheduler`] — the synchronous core: a queue plus flush logic
//!   against a [`ShardedStateStore`], deterministic and directly testable
//!   for batched-vs-single equivalence;
//! * [`BatchServingEngine`] — worker threads around the same logic: clients
//!   submit requests from any thread, workers drain the shared queue in
//!   batches of up to `max_batch`, reply over per-request channels.

use crate::sharded::ShardedStateStore;
use pp_data::schema::{Context, UserId};
use pp_rnn::RnnModel;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A session-start prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// The user starting a session.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds).
    pub timestamp: i64,
    /// Context observed at session start.
    pub context: Context,
    /// Seconds since the user's last hidden-state update (0 for cold start).
    pub elapsed_secs: i64,
}

/// A session-close hidden-state update request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRequest {
    /// The user whose session closed.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds).
    pub timestamp: i64,
    /// Context observed during the session.
    pub context: Context,
    /// Seconds between this session and the previous state update.
    pub delta_t_secs: i64,
    /// Whether the user accessed the activity during the session.
    pub accessed: bool,
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The user the prediction is for.
    pub user_id: UserId,
    /// Predicted access probability.
    pub probability: f64,
}

/// Counters describing scheduler behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Predictions served.
    pub predictions: u64,
    /// Hidden-state updates applied.
    pub updates: u64,
    /// Forward passes executed (batched or singleton).
    pub batches: u64,
    /// Largest batch coalesced into one forward pass.
    pub largest_batch: usize,
}

impl SchedulerStats {
    /// Mean requests per forward pass (1.0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            (self.predictions + self.updates) as f64 / self.batches as f64
        }
    }
}

/// Synchronous batching core: queue session-start requests, then flush them
/// through batched forward passes against a sharded state store.
#[derive(Debug)]
pub struct BatchScheduler<'a> {
    model: &'a RnnModel,
    store: &'a ShardedStateStore,
    max_batch: usize,
    queue: VecDeque<PredictRequest>,
    stats: SchedulerStats,
}

impl<'a> BatchScheduler<'a> {
    /// Creates a scheduler around a model and sharded store.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(model: &'a RnnModel, store: &'a ShardedStateStore, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Self {
            model,
            store,
            max_batch,
            queue: VecDeque::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// The configured maximum batch size.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Number of queued, not-yet-flushed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Queues one session-start request.
    pub fn submit(&mut self, request: PredictRequest) {
        self.queue.push_back(request);
    }

    /// Flushes the queue, serving every pending request in batches of up to
    /// `max_batch`. Results are in submission order.
    pub fn flush(&mut self) -> Vec<Prediction> {
        let requests: Vec<PredictRequest> = self.queue.drain(..).collect();
        let mut out = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(self.max_batch) {
            out.extend(predict_chunk(self.model, self.store, chunk));
            self.stats.predictions += chunk.len() as u64;
            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        }
        out
    }

    /// Convenience: submit a whole wave of concurrent requests and flush.
    pub fn run(&mut self, requests: impl IntoIterator<Item = PredictRequest>) -> Vec<Prediction> {
        for request in requests {
            self.submit(request);
        }
        self.flush()
    }

    /// Applies session-close updates in batches of up to `max_batch`,
    /// advancing and re-storing each user's hidden state.
    ///
    /// Multiple updates for the *same* user are applied in order: a batch
    /// never contains the same user twice, so the second update reads the
    /// state the first one wrote.
    pub fn apply_updates(&mut self, requests: &[UpdateRequest]) {
        let mut remaining: VecDeque<&UpdateRequest> = requests.iter().collect();
        while !remaining.is_empty() {
            // Greedily take up to max_batch requests with distinct users;
            // same-user duplicates are deferred to a later round. Once the
            // chunk fills we stop scanning, so each round is O(chunk +
            // duplicates), not O(remaining).
            let mut chunk: Vec<&UpdateRequest> = Vec::new();
            let mut seen = HashSet::new();
            let mut deferred: Vec<&UpdateRequest> = Vec::new();
            while chunk.len() < self.max_batch {
                let Some(request) = remaining.pop_front() else {
                    break;
                };
                if seen.insert(request.user_id) {
                    chunk.push(request);
                } else {
                    deferred.push(request);
                }
            }
            // Deferred duplicates precede everything still in `remaining` in
            // the original sequence, so put them back at the front to keep
            // per-user ordering.
            for request in deferred.into_iter().rev() {
                remaining.push_front(request);
            }

            let states: Vec<Vec<f32>> = chunk
                .iter()
                .map(|r| {
                    self.store
                        .get_state(r.user_id)
                        .unwrap_or_else(|| self.model.initial_state())
                })
                .collect();
            let inputs: Vec<Vec<f32>> = chunk
                .iter()
                .map(|r| {
                    self.model.featurizer().update_input(
                        r.timestamp,
                        &r.context,
                        r.delta_t_secs,
                        r.accessed,
                    )
                })
                .collect();
            let next_states = if chunk.len() == 1 {
                vec![self.model.advance_state(&states[0], &inputs[0])]
            } else {
                self.model.advance_state_batch(&states, &inputs)
            };
            for (request, next) in chunk.iter().zip(&next_states) {
                self.store.put_state(request.user_id, next);
            }
            self.stats.updates += chunk.len() as u64;
            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        }
    }
}

/// Serves one chunk of predictions (shared by the scheduler and the
/// threaded engine); callers account for batching statistics themselves.
/// Singleton chunks take the plain single-request path so `max_batch = 1`
/// reproduces the baseline exactly.
fn predict_chunk(
    model: &RnnModel,
    store: &ShardedStateStore,
    chunk: &[PredictRequest],
) -> Vec<Prediction> {
    let states: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            store
                .get_state(r.user_id)
                .unwrap_or_else(|| model.initial_state())
        })
        .collect();
    let inputs: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            model
                .featurizer()
                .predict_input(r.timestamp, &r.context, r.elapsed_secs)
        })
        .collect();
    let probabilities = if chunk.len() == 1 {
        vec![model.predict_proba(&states[0], &inputs[0])]
    } else {
        model.predict_proba_batch(&states, &inputs)
    };
    chunk
        .iter()
        .zip(probabilities)
        .map(|(request, probability)| Prediction {
            user_id: request.user_id,
            probability,
        })
        .collect()
}

#[derive(Debug)]
struct Job {
    request: PredictRequest,
    reply: mpsc::Sender<Prediction>,
}

#[derive(Debug)]
struct EngineShared {
    model: Arc<RnnModel>,
    store: Arc<ShardedStateStore>,
    max_batch: usize,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    predictions: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
}

/// Aggregate counters of a [`BatchServingEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Predictions served.
    pub predictions: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Largest coalesced batch.
    pub largest_batch: usize,
}

impl EngineStats {
    /// Mean requests per forward pass (1.0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.predictions as f64 / self.batches as f64
        }
    }
}

/// A multi-threaded batched prediction server: `workers` threads drain a
/// shared queue in batches of up to `max_batch` and reply per request.
///
/// With `max_batch = 1` every request takes the single-request path, which
/// is exactly the baseline the `load_gen` benchmark compares against.
#[derive(Debug)]
pub struct BatchServingEngine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchServingEngine {
    /// Starts `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `max_batch` is zero.
    pub fn start(
        model: Arc<RnnModel>,
        store: Arc<ShardedStateStore>,
        workers: usize,
        max_batch: usize,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(EngineShared {
            model,
            store,
            max_batch,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            predictions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits a request; the returned receiver yields the prediction once a
    /// worker has served its batch.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Prediction> {
        let (reply, receiver) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("engine queue");
            queue.push_back(Job { request, reply });
        }
        self.shared.available.notify_one();
        receiver
    }

    /// Submits a burst of requests under one queue lock — the natural entry
    /// point for front-ends that already hold several concurrent session
    /// starts, and what lets workers coalesce full batches instead of
    /// draining a trickle.
    pub fn submit_many(&self, requests: &[PredictRequest]) -> Vec<mpsc::Receiver<Prediction>> {
        let mut receivers = Vec::with_capacity(requests.len());
        {
            let mut queue = self.shared.queue.lock().expect("engine queue");
            for &request in requests {
                let (reply, receiver) = mpsc::channel();
                queue.push_back(Job { request, reply });
                receivers.push(receiver);
            }
        }
        self.shared.available.notify_all();
        receivers
    }

    /// Submits a request and blocks for the prediction.
    pub fn predict_blocking(&self, request: PredictRequest) -> Prediction {
        self.submit(request)
            .recv()
            .expect("engine worker dropped the reply channel")
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            predictions: self.shared.predictions.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed),
        }
    }
}

impl Drop for BatchServingEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &EngineShared) {
    loop {
        let jobs: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("engine queue");
            loop {
                if !queue.is_empty() {
                    let take = queue.len().min(shared.max_batch);
                    break queue.drain(..take).collect();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("engine condvar wait");
            }
        };

        let requests: Vec<PredictRequest> = jobs.iter().map(|j| j.request).collect();
        let predictions = predict_chunk(&shared.model, &shared.store, &requests);
        shared
            .predictions
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .largest_batch
            .fetch_max(jobs.len(), Ordering::Relaxed);
        for (job, prediction) in jobs.iter().zip(predictions) {
            // A dropped receiver (client gave up) is not an engine error.
            let _ = job.reply.send(prediction);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{DatasetKind, Tab};
    use pp_rnn::{RnnModelConfig, TaskKind};

    fn model() -> RnnModel {
        RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            11,
        )
    }

    fn request(id: u64, i: i64) -> PredictRequest {
        PredictRequest {
            user_id: UserId(id),
            timestamp: 10_000 + i * 37,
            context: Context::MobileTab {
                unread_count: (i % 9) as u8,
                active_tab: Tab::ALL[(i % Tab::ALL.len() as i64) as usize],
            },
            elapsed_secs: 300 + i,
        }
    }

    #[test]
    fn scheduler_matches_single_request_path() {
        let m = model();
        let store = ShardedStateStore::new(4);
        // Give some users warm states.
        for id in 0..10u64 {
            let mut h = m.initial_state();
            for step in 0..id {
                let ctx = Context::MobileTab {
                    unread_count: 1,
                    active_tab: Tab::Home,
                };
                h = m.advance_state(
                    &h,
                    &m.featurizer().update_input(step as i64, &ctx, 60, true),
                );
            }
            store.put_state(UserId(id), &h);
        }
        let requests: Vec<PredictRequest> = (0..25).map(|i| request(i as u64 % 13, i)).collect();

        let mut batched = BatchScheduler::new(&m, &store, 8);
        let results = batched.run(requests.iter().copied());

        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            assert_eq!(request.user_id, result.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            let single = m.predict_proba(&state, &input);
            assert!(
                (result.probability - single).abs() < 1e-6,
                "user {}: batched {} vs single {}",
                request.user_id,
                result.probability,
                single
            );
        }
        let stats = batched.stats();
        assert_eq!(stats.predictions, 25);
        assert_eq!(stats.largest_batch, 8);
        // 25 requests at max_batch 8 -> 4 forward passes, not 25.
        assert_eq!(stats.batches, 4);
    }

    #[test]
    fn updates_for_the_same_user_apply_in_order() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let ctx = Context::MobileTab {
            unread_count: 2,
            active_tab: Tab::Home,
        };
        let updates: Vec<UpdateRequest> = (0..6)
            .map(|i| UpdateRequest {
                user_id: UserId(5),
                timestamp: 1_000 * i,
                context: ctx,
                delta_t_secs: 600,
                accessed: i % 2 == 0,
            })
            .collect();
        let mut scheduler = BatchScheduler::new(&m, &store, 4);
        scheduler.apply_updates(&updates);

        // Sequential reference.
        let mut h = m.initial_state();
        for u in &updates {
            h = m.advance_state(
                &h,
                &m.featurizer()
                    .update_input(u.timestamp, &u.context, u.delta_t_secs, u.accessed),
            );
        }
        let stored = store.get_state(UserId(5)).unwrap();
        for (a, b) in stored.iter().zip(&h) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(scheduler.stats().updates, 6);
    }

    #[test]
    fn engine_serves_concurrent_clients_identically_to_single_path() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(8));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 2, 16);

        let receivers: Vec<(PredictRequest, mpsc::Receiver<Prediction>)> = (0..64)
            .map(|i| {
                let r = request(i as u64 % 7, i);
                let receiver = engine.submit(r);
                (r, receiver)
            })
            .collect();
        for (request, receiver) in receivers {
            let prediction = receiver.recv().unwrap();
            assert_eq!(prediction.user_id, request.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 64);
        assert!(stats.batches <= 64);
        drop(engine); // clean shutdown without panics
    }

    #[test]
    fn submit_many_coalesces_and_answers_every_request() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 1, 32);
        let requests: Vec<PredictRequest> = (0..48).map(|i| request(i as u64 % 9, i)).collect();
        let receivers = engine.submit_many(&requests);
        assert_eq!(receivers.len(), requests.len());
        for (request, receiver) in requests.iter().zip(receivers) {
            let prediction = receiver.recv().unwrap();
            assert_eq!(prediction.user_id, request.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 48);
        // 48 requests in one burst, max_batch 32 -> at most a handful of
        // forward passes, and at least one genuinely coalesced batch.
        assert!(stats.batches < 48, "batches = {}", stats.batches);
        assert!(stats.largest_batch > 1);
    }

    #[test]
    fn max_batch_one_is_the_single_request_baseline() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::new(&m, &store, 1);
        let results = scheduler.run((0..5).map(|i| request(i as u64, i)));
        assert_eq!(results.len(), 5);
        let stats = scheduler.stats();
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.largest_batch, 1);
        assert!((stats.mean_batch_size() - 1.0).abs() < 1e-12);
    }
}
