//! Batched request scheduling: coalesce concurrent session-start requests
//! into one GRU/MLP forward pass per batch.
//!
//! The single-request path builds one autograd graph per prediction —
//! per-call overhead (graph nodes, allocations) dominates the actual
//! arithmetic at the paper's model sizes. At production request rates many
//! session starts are in flight at once, so the serving engine can instead
//! drain the arrival queue into batches and run **one `B × d` matmul per
//! layer instead of `B` separate `1 × d` matmuls**
//! ([`RnnModel::predict_proba_batch`] / [`RnnModel::advance_state_batch`]).
//!
//! Two layers are provided:
//!
//! * [`BatchScheduler`] — the synchronous core: a queue plus flush logic
//!   against a [`ShardedStateStore`], deterministic and directly testable
//!   for batched-vs-single equivalence;
//! * [`BatchServingEngine`] — worker threads around the same logic: clients
//!   submit requests from any thread, workers drain the shared queue in
//!   batches of up to `max_batch`, reply over per-request channels.

use crate::sharded::ShardedStateStore;
use pp_data::schema::{Context, UserId};
use pp_rnn::RnnModel;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A session-start prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// The user starting a session.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds).
    pub timestamp: i64,
    /// Context observed at session start.
    pub context: Context,
    /// Seconds since the user's last hidden-state update (0 for cold start).
    pub elapsed_secs: i64,
}

/// A session-close hidden-state update request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRequest {
    /// The user whose session closed.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds).
    pub timestamp: i64,
    /// Context observed during the session.
    pub context: Context,
    /// Seconds between this session and the previous state update.
    pub delta_t_secs: i64,
    /// Whether the user accessed the activity during the session.
    pub accessed: bool,
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The user the prediction is for.
    pub user_id: UserId,
    /// Predicted access probability.
    pub probability: f64,
}

/// Counters describing scheduler behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Predictions served.
    pub predictions: u64,
    /// Hidden-state updates applied.
    pub updates: u64,
    /// Forward passes executed (batched or singleton).
    pub batches: u64,
    /// Largest batch coalesced into one forward pass.
    pub largest_batch: usize,
}

impl SchedulerStats {
    /// Mean requests per forward pass (1.0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            (self.predictions + self.updates) as f64 / self.batches as f64
        }
    }
}

/// Synchronous batching core: queue session-start requests, then flush them
/// through batched forward passes against a sharded state store.
#[derive(Debug)]
pub struct BatchScheduler<'a> {
    model: &'a RnnModel,
    store: &'a ShardedStateStore,
    max_batch: usize,
    /// Oldest-first queue of (submission time, request); requests submitted
    /// without a timestamp carry `i64::MIN` and are always considered due.
    queue: VecDeque<(i64, PredictRequest)>,
    /// Maximum seconds a queued request may wait before a partial batch
    /// flushes anyway (`None` = only flush when asked or full).
    max_wait_secs: Option<i64>,
    stats: SchedulerStats,
}

impl<'a> BatchScheduler<'a> {
    /// Creates a scheduler around a model and sharded store.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(model: &'a RnnModel, store: &'a ShardedStateStore, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Self {
            model,
            store,
            max_batch,
            queue: VecDeque::new(),
            max_wait_secs: None,
            stats: SchedulerStats::default(),
        }
    }

    /// Creates a scheduler whose [`BatchScheduler::flush_due`] flushes a
    /// partial batch once its oldest request has waited `max_wait_secs` —
    /// under low traffic requests are served within the deadline instead of
    /// waiting (potentially forever) for `max_batch` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `max_wait_secs` is negative.
    pub fn with_max_wait(
        model: &'a RnnModel,
        store: &'a ShardedStateStore,
        max_batch: usize,
        max_wait_secs: i64,
    ) -> Self {
        assert!(max_wait_secs >= 0, "max_wait_secs must be non-negative");
        let mut scheduler = Self::new(model, store, max_batch);
        scheduler.max_wait_secs = Some(max_wait_secs);
        scheduler
    }

    /// The configured maximum batch size.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The configured partial-batch flush deadline, if any.
    pub fn max_wait_secs(&self) -> Option<i64> {
        self.max_wait_secs
    }

    /// Number of queued, not-yet-flushed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Queues one session-start request with unknown submission time: when
    /// a `max_wait` deadline is configured, [`BatchScheduler::flush_due`]
    /// treats it as having already waited past any deadline.
    pub fn submit(&mut self, request: PredictRequest) {
        self.queue.push_back((i64::MIN, request));
    }

    /// Queues one session-start request submitted at `now` (seconds on the
    /// same clock later passed to [`BatchScheduler::flush_due`]).
    pub fn submit_at(&mut self, request: PredictRequest, now: i64) {
        self.queue.push_back((now, request));
    }

    /// Flushes the queue, serving every pending request in batches of up to
    /// `max_batch`. Results are in submission order.
    pub fn flush(&mut self) -> Vec<Prediction> {
        let requests: Vec<PredictRequest> = self.queue.drain(..).map(|(_, r)| r).collect();
        self.serve_chunks(&requests)
    }

    /// Flushes only what is *due* at `now`: every full batch, plus — when a
    /// `max_wait` deadline is configured — a final partial batch whose
    /// oldest request has already waited `max_wait_secs`. Without a deadline
    /// this serves full batches only, leaving the remainder queued.
    pub fn flush_due(&mut self, now: i64) -> Vec<Prediction> {
        let mut due = self.queue.len() - self.queue.len() % self.max_batch;
        if due < self.queue.len() {
            if let Some(max_wait) = self.max_wait_secs {
                // Submission times are caller-supplied and need not be
                // monotone, so scan the leftovers for the earliest stamp
                // (an untimed `submit` stamp of `i64::MIN` is always due).
                let oldest = self
                    .queue
                    .iter()
                    .skip(due)
                    .map(|&(submitted, _)| submitted)
                    .min()
                    .expect("leftover entries exist");
                if oldest == i64::MIN || now.saturating_sub(oldest) >= max_wait {
                    due = self.queue.len();
                }
            }
        }
        let requests: Vec<PredictRequest> = self.queue.drain(..due).map(|(_, r)| r).collect();
        self.serve_chunks(&requests)
    }

    fn serve_chunks(&mut self, requests: &[PredictRequest]) -> Vec<Prediction> {
        let mut out = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(self.max_batch) {
            out.extend(predict_chunk(self.model, self.store, chunk));
            self.stats.predictions += chunk.len() as u64;
            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        }
        out
    }

    /// Convenience: submit a whole wave of concurrent requests and flush.
    pub fn run(&mut self, requests: impl IntoIterator<Item = PredictRequest>) -> Vec<Prediction> {
        for request in requests {
            self.submit(request);
        }
        self.flush()
    }

    /// Applies session-close updates in batches of up to `max_batch`,
    /// advancing and re-storing each user's hidden state.
    ///
    /// Multiple updates for the *same* user are applied in order: a batch
    /// never contains the same user twice, so the second update reads the
    /// state the first one wrote.
    pub fn apply_updates(&mut self, requests: &[UpdateRequest]) {
        let mut remaining: VecDeque<&UpdateRequest> = requests.iter().collect();
        while !remaining.is_empty() {
            // Greedily take up to max_batch requests with distinct users;
            // same-user duplicates are deferred to a later round. Once the
            // chunk fills we stop scanning, so each round is O(chunk +
            // duplicates), not O(remaining).
            let mut chunk: Vec<&UpdateRequest> = Vec::new();
            let mut seen = HashSet::new();
            let mut deferred: Vec<&UpdateRequest> = Vec::new();
            while chunk.len() < self.max_batch {
                let Some(request) = remaining.pop_front() else {
                    break;
                };
                if seen.insert(request.user_id) {
                    chunk.push(request);
                } else {
                    deferred.push(request);
                }
            }
            // Deferred duplicates precede everything still in `remaining` in
            // the original sequence, so put them back at the front to keep
            // per-user ordering.
            for request in deferred.into_iter().rev() {
                remaining.push_front(request);
            }

            let states: Vec<Vec<f32>> = chunk
                .iter()
                .map(|r| {
                    self.store
                        .get_state(r.user_id)
                        .unwrap_or_else(|| self.model.initial_state())
                })
                .collect();
            let inputs: Vec<Vec<f32>> = chunk
                .iter()
                .map(|r| {
                    self.model.featurizer().update_input(
                        r.timestamp,
                        &r.context,
                        r.delta_t_secs,
                        r.accessed,
                    )
                })
                .collect();
            let next_states = if chunk.len() == 1 {
                vec![self.model.advance_state(&states[0], &inputs[0])]
            } else {
                self.model.advance_state_batch(&states, &inputs)
            };
            for (request, next) in chunk.iter().zip(&next_states) {
                self.store.put_state(request.user_id, next);
            }
            self.stats.updates += chunk.len() as u64;
            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        }
    }
}

/// Serves one chunk of predictions (shared by the scheduler and the
/// threaded engine); callers account for batching statistics themselves.
/// Singleton chunks take the plain single-request path so `max_batch = 1`
/// reproduces the baseline exactly.
fn predict_chunk(
    model: &RnnModel,
    store: &ShardedStateStore,
    chunk: &[PredictRequest],
) -> Vec<Prediction> {
    let obs = crate::obs::ServingObs::global();
    obs.batch_size.record(chunk.len() as u64);
    let assembly = pp_obs::Stopwatch::start();
    let states: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            store
                .get_state(r.user_id)
                .unwrap_or_else(|| model.initial_state())
        })
        .collect();
    let inputs: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            model
                .featurizer()
                .predict_input(r.timestamp, &r.context, r.elapsed_secs)
        })
        .collect();
    assembly.record(&obs.batch_assembly_ns);
    let forward = pp_obs::Stopwatch::start();
    let probabilities = if chunk.len() == 1 {
        vec![model.predict_proba(&states[0], &inputs[0])]
    } else {
        model.predict_proba_batch(&states, &inputs)
    };
    forward.record(&obs.forward_pass_ns);
    chunk
        .iter()
        .zip(probabilities)
        .map(|(request, probability)| Prediction {
            user_id: request.user_id,
            probability,
        })
        .collect()
}

#[derive(Debug)]
struct Job {
    request: PredictRequest,
    reply: mpsc::Sender<Prediction>,
}

#[derive(Debug)]
struct EngineShared {
    model: Arc<RnnModel>,
    store: Arc<ShardedStateStore>,
    max_batch: usize,
    /// How long a worker holds a non-full batch open for more arrivals
    /// before serving it (`None` = serve whatever is queued immediately).
    coalesce_wait: Option<std::time::Duration>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    predictions: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
}

/// Aggregate counters of a [`BatchServingEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Predictions served.
    pub predictions: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Largest coalesced batch.
    pub largest_batch: usize,
}

impl EngineStats {
    /// Mean requests per forward pass (1.0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.predictions as f64 / self.batches as f64
        }
    }
}

/// A multi-threaded batched prediction server: `workers` threads drain a
/// shared queue in batches of up to `max_batch` and reply per request.
///
/// With `max_batch = 1` every request takes the single-request path, which
/// is exactly the baseline the `load_gen` benchmark compares against.
#[derive(Debug)]
pub struct BatchServingEngine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchServingEngine {
    /// Starts `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `max_batch` is zero.
    pub fn start(
        model: Arc<RnnModel>,
        store: Arc<ShardedStateStore>,
        workers: usize,
        max_batch: usize,
    ) -> Self {
        Self::start_with_coalesce(model, store, workers, max_batch, None)
    }

    /// Starts `workers` worker threads that hold a non-full batch open for
    /// up to `coalesce_wait` waiting for more arrivals — a max-wait
    /// deadline: under heavy traffic batches fill immediately, under a
    /// trickle the partial batch still flushes within the deadline instead
    /// of serving everything as singletons.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `max_batch` is zero.
    pub fn start_with_coalesce(
        model: Arc<RnnModel>,
        store: Arc<ShardedStateStore>,
        workers: usize,
        max_batch: usize,
        coalesce_wait: Option<std::time::Duration>,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(EngineShared {
            model,
            store,
            max_batch,
            coalesce_wait,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            predictions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits a request; the returned receiver yields the prediction once a
    /// worker has served its batch.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Prediction> {
        let (reply, receiver) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("engine queue");
            queue.push_back(Job { request, reply });
            crate::obs::ServingObs::global()
                .queue_depth
                .set(queue.len() as f64);
        }
        self.shared.available.notify_one();
        receiver
    }

    /// Submits a burst of requests under one queue lock — the natural entry
    /// point for front-ends that already hold several concurrent session
    /// starts, and what lets workers coalesce full batches instead of
    /// draining a trickle.
    pub fn submit_many(&self, requests: &[PredictRequest]) -> Vec<mpsc::Receiver<Prediction>> {
        let mut receivers = Vec::with_capacity(requests.len());
        {
            let mut queue = self.shared.queue.lock().expect("engine queue");
            for &request in requests {
                let (reply, receiver) = mpsc::channel();
                queue.push_back(Job { request, reply });
                receivers.push(receiver);
            }
            crate::obs::ServingObs::global()
                .queue_depth
                .set(queue.len() as f64);
        }
        self.shared.available.notify_all();
        receivers
    }

    /// Submits a request and blocks for the prediction.
    pub fn predict_blocking(&self, request: PredictRequest) -> Prediction {
        self.submit(request)
            .recv()
            .expect("engine worker dropped the reply channel")
    }

    /// Submits a burst of requests in one queue lock and blocks until every
    /// prediction is served, returning them in request order. This is the
    /// integration point for downstream consumers (the `pp-precompute`
    /// decision engine) that want one batched score vector per wave of
    /// session starts.
    pub fn predict_many_blocking(&self, requests: &[PredictRequest]) -> Vec<Prediction> {
        self.submit_many(requests)
            .into_iter()
            .map(|receiver| {
                receiver
                    .recv()
                    .expect("engine worker dropped the reply channel")
            })
            .collect()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            predictions: self.shared.predictions.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed),
        }
    }
}

impl Drop for BatchServingEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &EngineShared) {
    let obs = crate::obs::ServingObs::global();
    loop {
        let jobs: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("engine queue");
            loop {
                if queue.is_empty() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = shared.available.wait(queue).expect("engine condvar wait");
                    continue;
                }
                // Hold a non-full batch open for stragglers up to the
                // coalesce deadline; shutdown or a timeout flushes whatever
                // is there. Other workers may drain the queue while we wait,
                // so re-check emptiness afterwards.
                if let Some(wait) = shared.coalesce_wait {
                    let held = pp_obs::Stopwatch::start();
                    let deadline = std::time::Instant::now() + wait;
                    while queue.len() < shared.max_batch
                        && !queue.is_empty()
                        && !shared.shutdown.load(Ordering::SeqCst)
                    {
                        let now = std::time::Instant::now();
                        let Some(remaining) = deadline.checked_duration_since(now) else {
                            break;
                        };
                        if remaining.is_zero() {
                            break;
                        }
                        let (q, result) = shared
                            .available
                            .wait_timeout(queue, remaining)
                            .expect("engine condvar wait");
                        queue = q;
                        if result.timed_out() {
                            break;
                        }
                    }
                    if queue.is_empty() {
                        continue;
                    }
                    held.record(&obs.coalesce_wait_ns);
                }
                let take = queue.len().min(shared.max_batch);
                let jobs: Vec<Job> = queue.drain(..take).collect();
                obs.queue_depth.set(queue.len() as f64);
                break jobs;
            }
        };

        let requests: Vec<PredictRequest> = jobs.iter().map(|j| j.request).collect();
        let predictions = predict_chunk(&shared.model, &shared.store, &requests);
        shared
            .predictions
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .largest_batch
            .fetch_max(jobs.len(), Ordering::Relaxed);
        for (job, prediction) in jobs.iter().zip(predictions) {
            // A dropped receiver (client gave up) is not an engine error.
            let _ = job.reply.send(prediction);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{DatasetKind, Tab};
    use pp_rnn::{RnnModelConfig, TaskKind};

    fn model() -> RnnModel {
        RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            11,
        )
    }

    fn request(id: u64, i: i64) -> PredictRequest {
        PredictRequest {
            user_id: UserId(id),
            timestamp: 10_000 + i * 37,
            context: Context::MobileTab {
                unread_count: (i % 9) as u8,
                active_tab: Tab::ALL[(i % Tab::ALL.len() as i64) as usize],
            },
            elapsed_secs: 300 + i,
        }
    }

    #[test]
    fn scheduler_matches_single_request_path() {
        let m = model();
        let store = ShardedStateStore::new(4);
        // Give some users warm states.
        for id in 0..10u64 {
            let mut h = m.initial_state();
            for step in 0..id {
                let ctx = Context::MobileTab {
                    unread_count: 1,
                    active_tab: Tab::Home,
                };
                h = m.advance_state(
                    &h,
                    &m.featurizer().update_input(step as i64, &ctx, 60, true),
                );
            }
            store.put_state(UserId(id), &h);
        }
        let requests: Vec<PredictRequest> = (0..25).map(|i| request(i as u64 % 13, i)).collect();

        let mut batched = BatchScheduler::new(&m, &store, 8);
        let results = batched.run(requests.iter().copied());

        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            assert_eq!(request.user_id, result.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            let single = m.predict_proba(&state, &input);
            assert!(
                (result.probability - single).abs() < 1e-6,
                "user {}: batched {} vs single {}",
                request.user_id,
                result.probability,
                single
            );
        }
        let stats = batched.stats();
        assert_eq!(stats.predictions, 25);
        assert_eq!(stats.largest_batch, 8);
        // 25 requests at max_batch 8 -> 4 forward passes, not 25.
        assert_eq!(stats.batches, 4);
    }

    #[test]
    fn updates_for_the_same_user_apply_in_order() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let ctx = Context::MobileTab {
            unread_count: 2,
            active_tab: Tab::Home,
        };
        let updates: Vec<UpdateRequest> = (0..6)
            .map(|i| UpdateRequest {
                user_id: UserId(5),
                timestamp: 1_000 * i,
                context: ctx,
                delta_t_secs: 600,
                accessed: i % 2 == 0,
            })
            .collect();
        let mut scheduler = BatchScheduler::new(&m, &store, 4);
        scheduler.apply_updates(&updates);

        // Sequential reference.
        let mut h = m.initial_state();
        for u in &updates {
            h = m.advance_state(
                &h,
                &m.featurizer()
                    .update_input(u.timestamp, &u.context, u.delta_t_secs, u.accessed),
            );
        }
        let stored = store.get_state(UserId(5)).unwrap();
        for (a, b) in stored.iter().zip(&h) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(scheduler.stats().updates, 6);
    }

    #[test]
    fn engine_serves_concurrent_clients_identically_to_single_path() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(8));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 2, 16);

        let receivers: Vec<(PredictRequest, mpsc::Receiver<Prediction>)> = (0..64)
            .map(|i| {
                let r = request(i as u64 % 7, i);
                let receiver = engine.submit(r);
                (r, receiver)
            })
            .collect();
        for (request, receiver) in receivers {
            let prediction = receiver.recv().unwrap();
            assert_eq!(prediction.user_id, request.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 64);
        assert!(stats.batches <= 64);
        drop(engine); // clean shutdown without panics
    }

    #[test]
    fn submit_many_coalesces_and_answers_every_request() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 1, 32);
        let requests: Vec<PredictRequest> = (0..48).map(|i| request(i as u64 % 9, i)).collect();
        let receivers = engine.submit_many(&requests);
        assert_eq!(receivers.len(), requests.len());
        for (request, receiver) in requests.iter().zip(receivers) {
            let prediction = receiver.recv().unwrap();
            assert_eq!(prediction.user_id, request.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 48);
        // 48 requests in one burst, max_batch 32 -> at most a handful of
        // forward passes, and at least one genuinely coalesced batch.
        assert!(stats.batches < 48, "batches = {}", stats.batches);
        assert!(stats.largest_batch > 1);
    }

    #[test]
    fn flush_due_serves_full_batches_and_honors_deadline() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 4, 30);
        assert_eq!(scheduler.max_wait_secs(), Some(30));

        // 6 requests submitted at t=100: one full batch is due immediately,
        // the partial remainder is not.
        for i in 0..6 {
            scheduler.submit_at(request(i as u64, i), 100);
        }
        let served = scheduler.flush_due(100);
        assert_eq!(served.len(), 4);
        assert_eq!(scheduler.pending(), 2);

        // Before the deadline nothing more flushes…
        assert!(scheduler.flush_due(129).is_empty());
        assert_eq!(scheduler.pending(), 2);
        // …at the deadline the partial batch goes out.
        let late = scheduler.flush_due(130);
        assert_eq!(late.len(), 2);
        assert_eq!(scheduler.pending(), 0);
        let stats = scheduler.stats();
        assert_eq!(stats.predictions, 6);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn flush_due_without_deadline_keeps_partial_batches_queued() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::new(&m, &store, 4);
        for i in 0..3 {
            scheduler.submit_at(request(i as u64, i), 0);
        }
        assert!(scheduler.flush_due(i64::MAX).is_empty());
        assert_eq!(scheduler.pending(), 3);
        // An untimed submit is always due once a deadline exists.
        let mut timed = BatchScheduler::with_max_wait(&m, &store, 4, 1_000);
        timed.submit(request(9, 9));
        assert_eq!(timed.flush_due(0).len(), 1);
        // …even when queued behind a fresher timed request.
        timed.submit_at(request(1, 1), 100);
        timed.submit(request(2, 2));
        assert_eq!(timed.flush_due(150).len(), 2);
        assert_eq!(timed.pending(), 0);
    }

    #[test]
    fn flush_due_flushes_exactly_at_the_deadline_tick() {
        let m = model();
        let store = ShardedStateStore::new(2);
        // A request submitted at t with max_wait w has deadline t + w and
        // must flush when now == t + w — not one tick later.
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 8, 25);
        scheduler.submit_at(request(1, 1), 1_000);
        assert!(scheduler.flush_due(1_024).is_empty());
        assert_eq!(
            scheduler.flush_due(1_025).len(),
            1,
            "now == deadline must flush"
        );
        assert_eq!(scheduler.pending(), 0);
        // max_wait = 0: due on the very tick it was submitted.
        let mut immediate = BatchScheduler::with_max_wait(&m, &store, 8, 0);
        immediate.submit_at(request(2, 2), 500);
        assert_eq!(immediate.flush_due(500).len(), 1);
    }

    #[test]
    fn flushed_partial_batches_preserve_submission_order() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 4, 10);
        // Six requests with deliberately non-monotone submission stamps:
        // one full batch plus a deadline-triggered partial remainder.
        let ids = [30u64, 10, 20, 5, 40, 15];
        let stamps = [300i64, 100, 200, 50, 400, 150];
        for (&id, &stamp) in ids.iter().zip(&stamps) {
            scheduler.submit_at(request(id, id as i64), stamp);
        }
        // The partial remainder (stamps 400, 150) has oldest stamp 150,
        // so its deadline 160 has passed at now = 170 and everything is
        // due. Results must come back in *submission* order, not stamp
        // order.
        let served = scheduler.flush_due(170);
        assert_eq!(served.len(), 6);
        let served_ids: Vec<u64> = served.iter().map(|p| p.user_id.0).collect();
        assert_eq!(served_ids, ids.to_vec());
        // Same property when only the full batch is due: the first four in
        // submission order go out, the rest stay queued in order.
        let mut partial = BatchScheduler::with_max_wait(&m, &store, 4, 1_000);
        for (&id, &stamp) in ids.iter().zip(&stamps) {
            partial.submit_at(request(id, id as i64), stamp);
        }
        let first = partial.flush_due(500);
        assert_eq!(
            first.iter().map(|p| p.user_id.0).collect::<Vec<_>>(),
            ids[..4].to_vec()
        );
        assert_eq!(partial.pending(), 2);
        let rest = partial.flush_due(2_000);
        assert_eq!(
            rest.iter().map(|p| p.user_id.0).collect::<Vec<_>>(),
            ids[4..].to_vec()
        );
    }

    #[test]
    fn deadline_flush_matches_single_request_path() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 8, 10);
        let requests: Vec<PredictRequest> = (0..3).map(|i| request(i as u64, i)).collect();
        for r in &requests {
            scheduler.submit_at(*r, 50);
        }
        let served = scheduler.flush_due(60);
        assert_eq!(served.len(), 3);
        for (request, prediction) in requests.iter().zip(&served) {
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
    }

    #[test]
    fn coalescing_engine_serves_low_traffic_within_deadline() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start_with_coalesce(
            m.clone(),
            store.clone(),
            1,
            64,
            Some(std::time::Duration::from_millis(10)),
        );
        // A lone request must not wait forever for 63 peers.
        let prediction = engine.predict_blocking(request(1, 1));
        assert_eq!(prediction.user_id, UserId(1));
        assert_eq!(engine.stats().predictions, 1);
    }

    #[test]
    fn coalescing_engine_batches_a_trickle() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start_with_coalesce(
            m.clone(),
            store.clone(),
            1,
            8,
            Some(std::time::Duration::from_millis(200)),
        );
        // Submit one-by-one (the worst case for the immediate-drain engine);
        // the coalescing worker holds the batch open and serves them together.
        let receivers: Vec<_> = (0..8)
            .map(|i| engine.submit(request(i as u64, i)))
            .collect();
        for receiver in receivers {
            receiver.recv().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 8);
        assert!(
            stats.largest_batch >= 2,
            "coalesce window should batch a trickle (largest {})",
            stats.largest_batch
        );
    }

    #[test]
    fn predict_many_blocking_returns_in_request_order() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 2, 16);
        let requests: Vec<PredictRequest> = (0..20).map(|i| request(i as u64, i)).collect();
        let predictions = engine.predict_many_blocking(&requests);
        assert_eq!(predictions.len(), 20);
        for (request, prediction) in requests.iter().zip(&predictions) {
            assert_eq!(request.user_id, prediction.user_id);
        }
    }

    #[test]
    fn max_batch_one_is_the_single_request_baseline() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::new(&m, &store, 1);
        let results = scheduler.run((0..5).map(|i| request(i as u64, i)));
        assert_eq!(results.len(), 5);
        let stats = scheduler.stats();
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.largest_batch, 1);
        assert!((stats.mean_batch_size() - 1.0).abs() < 1e-12);
    }
}
