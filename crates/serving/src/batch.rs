//! Batched request scheduling: coalesce concurrent session-start requests
//! into one GRU/MLP forward pass per batch.
//!
//! The single-request path builds one autograd graph per prediction —
//! per-call overhead (graph nodes, allocations) dominates the actual
//! arithmetic at the paper's model sizes. At production request rates many
//! session starts are in flight at once, so the serving engine can instead
//! drain the arrival queue into batches and run **one `B × d` matmul per
//! layer instead of `B` separate `1 × d` matmuls**
//! ([`RnnModel::predict_proba_batch`] / [`RnnModel::advance_state_batch`]).
//!
//! Two layers are provided:
//!
//! * [`BatchScheduler`] — the synchronous core: a queue plus flush logic
//!   against a [`ShardedStateStore`], deterministic and directly testable
//!   for batched-vs-single equivalence;
//! * [`BatchServingEngine`] — worker threads around the same logic: clients
//!   submit requests from any thread, workers drain the shared queue in
//!   batches of up to `max_batch`, reply over per-request channels.

use crate::sharded::ShardedStateStore;
use pp_data::schema::{Context, UserId};
use pp_obs::sync::LockPolicy;
use pp_rnn::RnnModel;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A session-start prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// The user starting a session.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds).
    pub timestamp: i64,
    /// Context observed at session start.
    pub context: Context,
    /// Seconds since the user's last hidden-state update (0 for cold start).
    pub elapsed_secs: i64,
}

/// A session-close hidden-state update request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRequest {
    /// The user whose session closed.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds).
    pub timestamp: i64,
    /// Context observed during the session.
    pub context: Context,
    /// Seconds between this session and the previous state update.
    pub delta_t_secs: i64,
    /// Whether the user accessed the activity during the session.
    pub accessed: bool,
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The user the prediction is for.
    pub user_id: UserId,
    /// Predicted access probability.
    pub probability: f64,
}

/// Counters describing scheduler behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Predictions served.
    pub predictions: u64,
    /// Hidden-state updates applied.
    pub updates: u64,
    /// Forward passes executed (batched or singleton).
    pub batches: u64,
    /// Largest batch coalesced into one forward pass.
    pub largest_batch: usize,
}

impl SchedulerStats {
    /// Mean requests per forward pass (1.0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            (self.predictions + self.updates) as f64 / self.batches as f64
        }
    }
}

/// Synchronous batching core: queue session-start requests, then flush them
/// through batched forward passes against a sharded state store.
#[derive(Debug)]
pub struct BatchScheduler<'a> {
    model: &'a RnnModel,
    store: &'a ShardedStateStore,
    max_batch: usize,
    /// Oldest-first queue of (submission time, request); requests submitted
    /// without a timestamp carry `i64::MIN` and are always considered due.
    queue: VecDeque<(i64, PredictRequest)>,
    /// Maximum seconds a queued request may wait before a partial batch
    /// flushes anyway (`None` = only flush when asked or full).
    max_wait_secs: Option<i64>,
    stats: SchedulerStats,
}

impl<'a> BatchScheduler<'a> {
    /// Creates a scheduler around a model and sharded store.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(model: &'a RnnModel, store: &'a ShardedStateStore, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Self {
            model,
            store,
            max_batch,
            queue: VecDeque::new(),
            max_wait_secs: None,
            stats: SchedulerStats::default(),
        }
    }

    /// Creates a scheduler whose [`BatchScheduler::flush_due`] flushes a
    /// partial batch once its oldest request has waited `max_wait_secs` —
    /// under low traffic requests are served within the deadline instead of
    /// waiting (potentially forever) for `max_batch` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `max_wait_secs` is negative.
    pub fn with_max_wait(
        model: &'a RnnModel,
        store: &'a ShardedStateStore,
        max_batch: usize,
        max_wait_secs: i64,
    ) -> Self {
        assert!(max_wait_secs >= 0, "max_wait_secs must be non-negative");
        let mut scheduler = Self::new(model, store, max_batch);
        scheduler.max_wait_secs = Some(max_wait_secs);
        scheduler
    }

    /// The configured maximum batch size.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The configured partial-batch flush deadline, if any.
    pub fn max_wait_secs(&self) -> Option<i64> {
        self.max_wait_secs
    }

    /// Number of queued, not-yet-flushed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Queues one session-start request with unknown submission time: when
    /// a `max_wait` deadline is configured, [`BatchScheduler::flush_due`]
    /// treats it as having already waited past any deadline.
    pub fn submit(&mut self, request: PredictRequest) {
        self.queue.push_back((i64::MIN, request));
    }

    /// Queues one session-start request submitted at `now` (seconds on the
    /// same clock later passed to [`BatchScheduler::flush_due`]).
    pub fn submit_at(&mut self, request: PredictRequest, now: i64) {
        self.queue.push_back((now, request));
    }

    /// Flushes the queue, serving every pending request in batches of up to
    /// `max_batch`. Results are in submission order.
    pub fn flush(&mut self) -> Vec<Prediction> {
        let requests: Vec<PredictRequest> = self.queue.drain(..).map(|(_, r)| r).collect();
        self.serve_chunks(&requests)
    }

    /// Flushes only what is *due* at `now`: every full batch, plus — when a
    /// `max_wait` deadline is configured — a final partial batch whose
    /// oldest request has already waited `max_wait_secs`. Without a deadline
    /// this serves full batches only, leaving the remainder queued.
    pub fn flush_due(&mut self, now: i64) -> Vec<Prediction> {
        let mut due = self.queue.len() - self.queue.len() % self.max_batch;
        if due < self.queue.len() {
            if let Some(max_wait) = self.max_wait_secs {
                // Submission times are caller-supplied and need not be
                // monotone, so scan the leftovers for the earliest stamp
                // (an untimed `submit` stamp of `i64::MIN` is always due).
                let oldest = self
                    .queue
                    .iter()
                    .skip(due)
                    .map(|&(submitted, _)| submitted)
                    .min()
                    .expect("leftover entries exist");
                if oldest == i64::MIN || now.saturating_sub(oldest) >= max_wait {
                    due = self.queue.len();
                }
            }
        }
        let requests: Vec<PredictRequest> = self.queue.drain(..due).map(|(_, r)| r).collect();
        self.serve_chunks(&requests)
    }

    fn serve_chunks(&mut self, requests: &[PredictRequest]) -> Vec<Prediction> {
        let mut out = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(self.max_batch) {
            out.extend(predict_chunk(self.model, self.store, chunk, None));
            self.stats.predictions += chunk.len() as u64;
            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        }
        out
    }

    /// Convenience: submit a whole wave of concurrent requests and flush.
    pub fn run(&mut self, requests: impl IntoIterator<Item = PredictRequest>) -> Vec<Prediction> {
        for request in requests {
            self.submit(request);
        }
        self.flush()
    }

    /// Applies session-close updates in batches of up to `max_batch`,
    /// advancing and re-storing each user's hidden state.
    ///
    /// Multiple updates for the *same* user are applied in order: a batch
    /// never contains the same user twice, so the second update reads the
    /// state the first one wrote.
    pub fn apply_updates(&mut self, requests: &[UpdateRequest]) {
        let mut remaining: VecDeque<&UpdateRequest> = requests.iter().collect();
        while !remaining.is_empty() {
            // Greedily take up to max_batch requests with distinct users;
            // same-user duplicates are deferred to a later round. Once the
            // chunk fills we stop scanning, so each round is O(chunk +
            // duplicates), not O(remaining).
            let mut chunk: Vec<&UpdateRequest> = Vec::new();
            let mut seen = HashSet::new();
            let mut deferred: Vec<&UpdateRequest> = Vec::new();
            while chunk.len() < self.max_batch {
                let Some(request) = remaining.pop_front() else {
                    break;
                };
                if seen.insert(request.user_id) {
                    chunk.push(request);
                } else {
                    deferred.push(request);
                }
            }
            // Deferred duplicates precede everything still in `remaining` in
            // the original sequence, so put them back at the front to keep
            // per-user ordering.
            for request in deferred.into_iter().rev() {
                remaining.push_front(request);
            }

            let states: Vec<Vec<f32>> = chunk
                .iter()
                .map(|r| {
                    self.store
                        .get_state(r.user_id)
                        .unwrap_or_else(|| self.model.initial_state())
                })
                .collect();
            let inputs: Vec<Vec<f32>> = chunk
                .iter()
                .map(|r| {
                    self.model.featurizer().update_input(
                        r.timestamp,
                        &r.context,
                        r.delta_t_secs,
                        r.accessed,
                    )
                })
                .collect();
            let next_states = if chunk.len() == 1 {
                vec![self.model.advance_state(&states[0], &inputs[0])]
            } else {
                self.model.advance_state_batch(&states, &inputs)
            };
            for (request, next) in chunk.iter().zip(&next_states) {
                self.store.put_state(request.user_id, next);
            }
            self.stats.updates += chunk.len() as u64;
            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        }
    }
}

/// Stage boundaries of one traced batch execution, on the wall clock the
/// tracer translates to its own epoch. Initialized to the execution start
/// and advanced by `predict_chunk` / `update_chunk` as stages complete, so
/// untouched marks yield zero-length (never negative) stage spans.
#[derive(Debug, Clone, Copy)]
struct BatchMarks {
    /// When the worker stopped gathering/coalescing and began executing.
    exec_start: std::time::Instant,
    /// State fetch + featurization done.
    assembly_done: std::time::Instant,
    /// Forward pass done.
    forward_done: std::time::Instant,
    /// Hidden-state write-back done (equals `forward_done` for predict
    /// batches, which write no state).
    writeback_done: std::time::Instant,
}

impl BatchMarks {
    fn start() -> Self {
        let now = std::time::Instant::now();
        Self {
            exec_start: now,
            assembly_done: now,
            forward_done: now,
            writeback_done: now,
        }
    }
}

/// Serves one chunk of predictions (shared by the scheduler and the
/// threaded engine); callers account for batching statistics themselves.
/// Singleton chunks take the plain single-request path so `max_batch = 1`
/// reproduces the baseline exactly. `marks` (traced engine batches only)
/// receives the stage boundaries for span emission.
fn predict_chunk(
    model: &RnnModel,
    store: &ShardedStateStore,
    chunk: &[PredictRequest],
    mut marks: Option<&mut BatchMarks>,
) -> Vec<Prediction> {
    let obs = crate::obs::ServingObs::global();
    obs.batch_size.record(chunk.len() as u64);
    let assembly = pp_obs::Stopwatch::start();
    let states: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            store
                .get_state(r.user_id)
                .unwrap_or_else(|| model.initial_state())
        })
        .collect();
    let inputs: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            model
                .featurizer()
                .predict_input(r.timestamp, &r.context, r.elapsed_secs)
        })
        .collect();
    assembly.record(&obs.batch_assembly_ns);
    if let Some(marks) = marks.as_mut() {
        marks.assembly_done = std::time::Instant::now();
    }
    let forward = pp_obs::Stopwatch::start();
    let probabilities = if chunk.len() == 1 {
        vec![model.predict_proba(&states[0], &inputs[0])]
    } else {
        model.predict_proba_batch(&states, &inputs)
    };
    forward.record(&obs.forward_pass_ns);
    if let Some(marks) = marks {
        let now = std::time::Instant::now();
        marks.forward_done = now;
        marks.writeback_done = now;
    }
    chunk
        .iter()
        .zip(probabilities)
        .map(|(request, probability)| Prediction {
            user_id: request.user_id,
            probability,
        })
        .collect()
}

/// One queued unit of work: serve a prediction or apply a state update.
#[derive(Debug)]
enum JobKind {
    Predict {
        request: PredictRequest,
        reply: mpsc::Sender<Prediction>,
    },
    Update {
        request: UpdateRequest,
        reply: mpsc::Sender<()>,
    },
}

impl JobKind {
    fn user_id(&self) -> UserId {
        match self {
            JobKind::Predict { request, .. } => request.user_id,
            JobKind::Update { request, .. } => request.user_id,
        }
    }
}

#[derive(Debug)]
struct Job {
    kind: JobKind,
    /// When the job entered the queue. The coalesce flush deadline is
    /// anchored here — at *arrival* — not at the instant a worker first
    /// observes the queue, so queue residence while workers are busy counts
    /// against the coalesce budget instead of being added on top of it.
    arrived: std::time::Instant,
    /// Whether this job's user is in the tracer's sampled subset
    /// (decided once, at submission — workers never re-hash).
    traced: bool,
    /// When a worker claimed the job out of its shard queue (stamped in
    /// `gather`, traced jobs only) — the queue-wait / coalesce-hold
    /// boundary in the job's span tree.
    claimed: Option<std::time::Instant>,
}

impl Job {
    fn new(kind: JobKind, arrived: std::time::Instant) -> Self {
        let tracer = pp_obs::Tracer::global();
        let traced = tracer.enabled() && tracer.sampled(kind.user_id().0);
        Self {
            kind,
            arrived,
            traced,
            claimed: None,
        }
    }
}

/// One shard's job queue. A user's jobs always land in the queue of the
/// shard their hidden state lives in, and the queue is drained FIFO by at
/// most one worker at a time (the `claimed` flag is held from drain until
/// the batch's state reads/writes complete) — so per-user predict/update
/// ordering survives both multi-worker draining and work stealing without
/// any global lock.
#[derive(Debug, Default)]
struct ShardQueue {
    jobs: Mutex<VecDeque<Job>>,
    /// Lock-free emptiness hint so gathering workers skip idle shards
    /// without taking the queue lock.
    len: AtomicUsize,
    /// Exclusively held by one worker from drain to state write-back.
    claimed: AtomicBool,
    /// Last worker to claim this queue — a best-effort hint so an enqueue
    /// can also wake a coalescing *thief* currently holding the claim
    /// (whose private signal the home-worker bump would miss). Stale
    /// values only cost a spurious wakeup.
    claimant: AtomicUsize,
}

/// A worker's private wakeup channel: submissions for shards the worker
/// owns bump `seq` and notify `cv`, so a worker holding a partial batch
/// open is woken by exactly the arrivals that could join its batch — it can
/// never consume a wakeup another (idle) worker needed.
#[derive(Debug, Default)]
struct WorkerSignal {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl WorkerSignal {
    fn bump(&self) {
        let mut seq = self.seq.lock_or_panic("worker signal");
        *seq += 1;
        self.cv.notify_all();
    }
}

#[derive(Debug, Default)]
struct WorkerCounters {
    batches: AtomicU64,
    predictions: AtomicU64,
    updates: AtomicU64,
    steals: AtomicU64,
    idle_ns: AtomicU64,
}

/// Per-worker counters of a [`BatchServingEngine`]
/// ([`BatchServingEngine::worker_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index (also the owner of shards `s` with
    /// `s % workers == worker`).
    pub worker: usize,
    /// Batches this worker served.
    pub batches: u64,
    /// Predictions this worker served.
    pub predictions: u64,
    /// State updates this worker applied.
    pub updates: u64,
    /// Batches that drained at least one job from a shard this worker does
    /// not own (work stealing under skewed traffic).
    pub steals: u64,
    /// Nanoseconds spent parked waiting for work.
    pub idle_ns: u64,
}

#[derive(Debug)]
struct EngineShared {
    model: Arc<RnnModel>,
    store: Arc<ShardedStateStore>,
    max_batch: usize,
    /// How long a worker holds a non-full batch open for more arrivals
    /// before serving it (`None` = serve whatever is queued immediately).
    coalesce_wait: Option<std::time::Duration>,
    /// One queue per state-store shard (`queues.len() == store.num_shards()`).
    queues: Vec<ShardQueue>,
    /// One private wakeup channel per worker.
    signals: Vec<WorkerSignal>,
    worker_counters: Vec<WorkerCounters>,
    /// Generation counter for idle workers: bumped (under its mutex, with
    /// `idle.notify_all`) whenever work appears or a claimed shard is
    /// released. Idle workers re-scan whenever the generation moves, so no
    /// submission can be lost between a scan and a park.
    work_gen: Mutex<u64>,
    idle: Condvar,
    /// Jobs currently queued across all shards (for the queue-depth gauge).
    queued: AtomicUsize,
    shutdown: AtomicBool,
    predictions: AtomicU64,
    updates: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
}

impl EngineShared {
    fn num_workers(&self) -> usize {
        self.signals.len()
    }

    fn owner(&self, shard: usize) -> usize {
        shard % self.num_workers()
    }

    /// Announce new or newly-claimable work to idle workers.
    fn bump_work_gen(&self) {
        let mut gen = self.work_gen.lock_or_panic("work generation");
        *gen += 1;
        drop(gen);
        self.idle.notify_all();
    }
}

/// Aggregate counters of a [`BatchServingEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Predictions served.
    pub predictions: u64,
    /// Hidden-state updates applied.
    pub updates: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Largest coalesced batch.
    pub largest_batch: usize,
}

impl EngineStats {
    /// Mean requests per forward pass (1.0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            (self.predictions + self.updates) as f64 / self.batches as f64
        }
    }
}

/// A multi-threaded batched serving engine: `workers` threads drain
/// per-shard job queues in batches of up to `max_batch` and reply per
/// request.
///
/// Each worker **owns** the shards `s` of the engine's
/// [`ShardedStateStore`] with `s % workers == worker`, so a user's jobs
/// have a home worker and per-user predict/update ordering is preserved
/// without a global lock; idle workers **steal** whole shard queues from
/// busy peers, so skewed traffic still saturates every core.
///
/// With `max_batch = 1` every request takes the single-request path, which
/// is exactly the baseline the `load_gen` benchmark compares against.
#[derive(Debug)]
pub struct BatchServingEngine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchServingEngine {
    /// Starts `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `max_batch` is zero.
    pub fn start(
        model: Arc<RnnModel>,
        store: Arc<ShardedStateStore>,
        workers: usize,
        max_batch: usize,
    ) -> Self {
        Self::start_with_coalesce(model, store, workers, max_batch, None)
    }

    /// Starts `workers` worker threads that hold a non-full batch open for
    /// up to `coalesce_wait` waiting for more arrivals — a max-wait
    /// deadline: under heavy traffic batches fill immediately, under a
    /// trickle the partial batch still flushes within the deadline instead
    /// of serving everything as singletons.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `max_batch` is zero.
    pub fn start_with_coalesce(
        model: Arc<RnnModel>,
        store: Arc<ShardedStateStore>,
        workers: usize,
        max_batch: usize,
        coalesce_wait: Option<std::time::Duration>,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(max_batch > 0, "max_batch must be positive");
        let num_shards = store.num_shards();
        let shared = Arc::new(EngineShared {
            model,
            store,
            max_batch,
            coalesce_wait,
            queues: (0..num_shards).map(|_| ShardQueue::default()).collect(),
            signals: (0..workers).map(|_| WorkerSignal::default()).collect(),
            worker_counters: (0..workers).map(|_| WorkerCounters::default()).collect(),
            work_gen: Mutex::new(0),
            idle: Condvar::new(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            predictions: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
        });
        let workers = (0..workers)
            .map(|worker| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, worker))
            })
            .collect();
        Self { shared, workers }
    }

    /// The number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.shared.num_workers()
    }

    /// The worker that owns `user`'s home shard (and therefore serves the
    /// user's jobs unless a peer steals the shard while this worker is
    /// busy).
    pub fn home_worker(&self, user: UserId) -> usize {
        self.shared.owner(self.shared.store.shard_index(user))
    }

    /// Routes jobs to their home-shard queues and wakes workers: every home
    /// worker gets a targeted signal (so a worker coalescing a partial
    /// batch learns about joinable arrivals), and the idle generation is
    /// bumped with `notify_all` (so no idle worker can miss work because a
    /// busy peer consumed the only wakeup).
    fn enqueue(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let shared = &self.shared;
        let arrived = jobs.len();
        let mut notify_workers = vec![false; shared.num_workers()];
        for job in jobs {
            let shard = shared.store.shard_index(job.kind.user_id());
            notify_workers[shared.owner(shard)] = true;
            let queue = &shared.queues[shard];
            let mut q = queue.jobs.lock_or_panic("shard queue");
            q.push_back(job);
            queue.len.store(q.len(), Ordering::Release);
            drop(q);
            // If a (possibly stealing) worker holds this shard's claim
            // mid-coalesce, wake it too — the home worker can't drain a
            // claimed queue on its behalf.
            if queue.claimed.load(Ordering::Acquire) {
                // Acquire pairs with the claimant Release store in gather:
                // Relaxed here could read a stale claimant and wake the
                // wrong worker, leaving the real claimant parked until its
                // coalescing-window timeout (a tail-latency spike, not a
                // hang — but the window is the latency budget).
                let claimant = queue.claimant.load(Ordering::Acquire);
                if claimant < notify_workers.len() {
                    notify_workers[claimant] = true;
                }
            }
        }
        let depth = shared.queued.fetch_add(arrived, Ordering::Relaxed) + arrived;
        crate::obs::ServingObs::global()
            .queue_depth
            .set(depth as f64);
        shared.bump_work_gen();
        for (worker, notify) in notify_workers.into_iter().enumerate() {
            if notify {
                shared.signals[worker].bump();
            }
        }
    }

    /// Submits a request; the returned receiver yields the prediction once a
    /// worker has served its batch.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Prediction> {
        let (reply, receiver) = mpsc::channel();
        self.enqueue(vec![Job::new(
            JobKind::Predict { request, reply },
            std::time::Instant::now(),
        )]);
        receiver
    }

    /// Submits a burst of requests in one enqueue pass — the natural entry
    /// point for front-ends that already hold several concurrent session
    /// starts, and what lets workers coalesce full batches instead of
    /// draining a trickle.
    pub fn submit_many(&self, requests: &[PredictRequest]) -> Vec<mpsc::Receiver<Prediction>> {
        let arrived = std::time::Instant::now();
        let mut receivers = Vec::with_capacity(requests.len());
        let jobs = requests
            .iter()
            .map(|&request| {
                let (reply, receiver) = mpsc::channel();
                receivers.push(receiver);
                Job::new(JobKind::Predict { request, reply }, arrived)
            })
            .collect();
        self.enqueue(jobs);
        receivers
    }

    /// Submits a session-close hidden-state update; the returned receiver
    /// yields `()` once the state has been advanced and re-stored. Updates
    /// and predictions for the same user are applied in submission order
    /// (they share the user's home-shard queue).
    pub fn submit_update(&self, request: UpdateRequest) -> mpsc::Receiver<()> {
        let (reply, receiver) = mpsc::channel();
        self.enqueue(vec![Job::new(
            JobKind::Update { request, reply },
            std::time::Instant::now(),
        )]);
        receiver
    }

    /// Submits a burst of updates in one enqueue pass.
    pub fn submit_updates(&self, requests: &[UpdateRequest]) -> Vec<mpsc::Receiver<()>> {
        let arrived = std::time::Instant::now();
        let mut receivers = Vec::with_capacity(requests.len());
        let jobs = requests
            .iter()
            .map(|&request| {
                let (reply, receiver) = mpsc::channel();
                receivers.push(receiver);
                Job::new(JobKind::Update { request, reply }, arrived)
            })
            .collect();
        self.enqueue(jobs);
        receivers
    }

    /// Submits a burst of updates and blocks until every state has been
    /// advanced and re-stored.
    pub fn apply_updates_blocking(&self, requests: &[UpdateRequest]) {
        for receiver in self.submit_updates(requests) {
            receiver
                .recv()
                .expect("engine worker dropped the update reply channel");
        }
    }

    /// Submits a request and blocks for the prediction.
    pub fn predict_blocking(&self, request: PredictRequest) -> Prediction {
        self.submit(request)
            .recv()
            .expect("engine worker dropped the reply channel")
    }

    /// Submits a burst of requests in one queue lock and blocks until every
    /// prediction is served, returning them in request order. This is the
    /// integration point for downstream consumers (the `pp-precompute`
    /// decision engine) that want one batched score vector per wave of
    /// session starts.
    pub fn predict_many_blocking(&self, requests: &[PredictRequest]) -> Vec<Prediction> {
        self.submit_many(requests)
            .into_iter()
            .map(|receiver| {
                receiver
                    .recv()
                    .expect("engine worker dropped the reply channel")
            })
            .collect()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            predictions: self.shared.predictions.load(Ordering::Relaxed),
            updates: self.shared.updates.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// Per-worker counters accumulated so far, indexed by worker.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .worker_counters
            .iter()
            .enumerate()
            .map(|(worker, c)| WorkerStats {
                worker,
                batches: c.batches.load(Ordering::Relaxed),
                predictions: c.predictions.load(Ordering::Relaxed),
                updates: c.updates.load(Ordering::Relaxed),
                steals: c.steals.load(Ordering::Relaxed),
                idle_ns: c.idle_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl Drop for BatchServingEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.bump_work_gen();
        for signal in &self.shared.signals {
            signal.bump();
        }
        // Workers drain every queued job before exiting, so in-flight
        // receivers still get their replies.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Advances and re-stores one chunk of session-close updates; callers
/// guarantee the chunk holds each user at most once. `marks` (traced
/// engine batches only) receives the stage boundaries for span emission.
fn update_chunk(
    model: &RnnModel,
    store: &ShardedStateStore,
    chunk: &[UpdateRequest],
    mut marks: Option<&mut BatchMarks>,
) {
    let obs = crate::obs::ServingObs::global();
    obs.batch_size.record(chunk.len() as u64);
    let assembly = pp_obs::Stopwatch::start();
    let states: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            store
                .get_state(r.user_id)
                .unwrap_or_else(|| model.initial_state())
        })
        .collect();
    let inputs: Vec<Vec<f32>> = chunk
        .iter()
        .map(|r| {
            model
                .featurizer()
                .update_input(r.timestamp, &r.context, r.delta_t_secs, r.accessed)
        })
        .collect();
    assembly.record(&obs.batch_assembly_ns);
    if let Some(marks) = marks.as_mut() {
        marks.assembly_done = std::time::Instant::now();
    }
    let forward = pp_obs::Stopwatch::start();
    let next_states = if chunk.len() == 1 {
        vec![model.advance_state(&states[0], &inputs[0])]
    } else {
        model.advance_state_batch(&states, &inputs)
    };
    forward.record(&obs.forward_pass_ns);
    if let Some(marks) = marks.as_mut() {
        marks.forward_done = std::time::Instant::now();
    }
    for (request, next) in chunk.iter().zip(&next_states) {
        store.put_state(request.user_id, next);
    }
    if let Some(marks) = marks {
        marks.writeback_done = std::time::Instant::now();
    }
}

/// A batch under assembly: homogeneous-kind jobs plus the shard claims that
/// stay held until the batch's state reads and write-backs complete.
struct GatheredBatch {
    jobs: Vec<Job>,
    claimed_shards: Vec<usize>,
    stole: bool,
}

/// Scans shard queues — the worker's own shards first, then everyone
/// else's (work stealing) — claiming each non-empty unclaimed queue and
/// draining a FIFO prefix into `batch`. A queue's prefix stops at a
/// kind change or (for updates) a user already in the batch, so per-user
/// ordering and same-user-once-per-update-batch both hold.
fn gather(
    shared: &EngineShared,
    worker: usize,
    batch: &mut GatheredBatch,
    seen_users: &mut HashSet<UserId>,
) {
    let num_shards = shared.queues.len();
    let workers = shared.num_workers();
    let own = (worker..num_shards).step_by(workers);
    let foreign = (0..num_shards).filter(|s| s % workers != worker);
    for shard in own.chain(foreign) {
        if batch.jobs.len() >= shared.max_batch {
            break;
        }
        let queue = &shared.queues[shard];
        let already_claimed = batch.claimed_shards.contains(&shard);
        if !already_claimed {
            if queue.len.load(Ordering::Acquire) == 0 {
                continue;
            }
            // Acquire on failure too: the loser reads the queue state the
            // winner's claim protects (len, claimant) right after this —
            // a Relaxed failure load would let those reads be satisfied
            // from before the winner's Release.
            if queue
                .claimed
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Release pairs with the Acquire claimant load in enqueue: a
            // Relaxed store could be observed after `claimed` itself, so
            // the enqueuer would target whichever worker claimed this
            // shard *last* cycle and skip waking the current claimant.
            queue.claimant.store(worker, Ordering::Release);
        }
        let mut drained = 0usize;
        {
            // One lazy clock read per drained queue, shared by every traced
            // job claimed from it (untraced batches never read the clock).
            let mut claim_now: Option<std::time::Instant> = None;
            let mut q = queue.jobs.lock_or_panic("shard queue");
            while batch.jobs.len() < shared.max_batch {
                let Some(front) = q.front() else { break };
                if let Some(first) = batch.jobs.first() {
                    if std::mem::discriminant(&first.kind) != std::mem::discriminant(&front.kind) {
                        break;
                    }
                }
                if matches!(front.kind, JobKind::Update { .. })
                    && !seen_users.insert(front.kind.user_id())
                {
                    // A second update for the same user waits for the next
                    // batch so it reads the state the first one writes.
                    break;
                }
                let mut job = q.pop_front().expect("front exists");
                if job.traced {
                    job.claimed = Some(*claim_now.get_or_insert_with(std::time::Instant::now));
                }
                batch.jobs.push(job);
                drained += 1;
            }
            queue.len.store(q.len(), Ordering::Release);
        }
        if already_claimed {
            continue;
        }
        if drained == 0 {
            queue.claimed.store(false, Ordering::Release);
        } else {
            batch.claimed_shards.push(shard);
            if shard % workers != worker {
                batch.stole = true;
            }
        }
    }
}

fn worker_loop(shared: &EngineShared, worker: usize) {
    let obs = crate::obs::ServingObs::global();
    let counters = &shared.worker_counters[worker];
    loop {
        // Snapshot the work generation BEFORE scanning: an enqueue racing
        // with the scan moves the generation, so the park below falls
        // through instead of sleeping on work it never saw.
        let gen_before = *shared.work_gen.lock_or_panic("work generation");
        let mut batch = GatheredBatch {
            jobs: Vec::new(),
            claimed_shards: Vec::new(),
            stole: false,
        };
        let mut seen_users = HashSet::new();
        gather(shared, worker, &mut batch, &mut seen_users);

        if batch.jobs.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let parked = std::time::Instant::now();
            let mut gen = shared.work_gen.lock_or_panic("work generation");
            while *gen == gen_before && !shared.shutdown.load(Ordering::SeqCst) {
                gen = shared.idle.wait(gen).expect("idle wait");
            }
            drop(gen);
            let idle_ns = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
            counters.idle_ns.fetch_add(idle_ns, Ordering::Relaxed);
            obs.worker_idle_ns.add(idle_ns);
            continue;
        }

        // Coalesce: hold a non-full batch open for stragglers, with the
        // flush deadline anchored at the *oldest job's arrival* — queue
        // residence while workers were busy counts against the budget, so
        // no job waits more than `coalesce_wait` past its arrival here.
        if let Some(wait) = shared.coalesce_wait {
            if batch.jobs.len() < shared.max_batch && !shared.shutdown.load(Ordering::SeqCst) {
                let held = pp_obs::Stopwatch::start();
                let oldest = batch
                    .jobs
                    .iter()
                    .map(|j| j.arrived)
                    .min()
                    .expect("non-empty batch");
                let deadline = oldest + wait;
                let signal = &shared.signals[worker];
                while batch.jobs.len() < shared.max_batch && !shared.shutdown.load(Ordering::SeqCst)
                {
                    let now = std::time::Instant::now();
                    let Some(remaining) = deadline.checked_duration_since(now) else {
                        break;
                    };
                    if remaining.is_zero() {
                        break;
                    }
                    // Read the private signal sequence before re-gathering:
                    // an arrival after the read bumps the sequence and skips
                    // the wait; an arrival before it is picked up by the
                    // gather. Either way nothing is lost.
                    let seq_before = *signal.seq.lock_or_panic("worker signal");
                    gather(shared, worker, &mut batch, &mut seen_users);
                    if batch.jobs.len() >= shared.max_batch {
                        break;
                    }
                    let seq = signal.seq.lock_or_panic("worker signal");
                    if *seq == seq_before {
                        let _ = signal
                            .cv
                            .wait_timeout(seq, remaining)
                            .expect("coalesce wait");
                    }
                }
                gather(shared, worker, &mut batch, &mut seen_users);
                held.record(&obs.coalesce_wait_ns);
            }
        }

        let size = batch.jobs.len();
        // All batch-level accounting lands before any reply is sent, so a
        // client that read its reply sees this batch in `stats()`.
        shared.batches.fetch_add(1, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        shared.largest_batch.fetch_max(size, Ordering::Relaxed);
        obs.worker_batches.inc();
        if batch.stole {
            counters.steals.fetch_add(1, Ordering::Relaxed);
            obs.worker_steals.inc();
        }
        let depth = shared.queued.fetch_sub(size, Ordering::Relaxed) - size;
        obs.queue_depth.set(depth as f64);
        // Traced batches (any sampled member) get stage marks; everyone
        // else skips every clock read below.
        let tracer = pp_obs::Tracer::global();
        let mut marks = if tracer.enabled() && batch.jobs.iter().any(|j| j.traced) {
            Some(BatchMarks::start())
        } else {
            None
        };
        let is_update = matches!(batch.jobs[0].kind, JobKind::Update { .. });
        match batch.jobs[0].kind {
            JobKind::Predict { .. } => {
                let requests: Vec<PredictRequest> = batch
                    .jobs
                    .iter()
                    .map(|j| match &j.kind {
                        JobKind::Predict { request, .. } => *request,
                        JobKind::Update { .. } => unreachable!("batches are kind-homogeneous"),
                    })
                    .collect();
                let predictions =
                    predict_chunk(&shared.model, &shared.store, &requests, marks.as_mut());
                shared.predictions.fetch_add(size as u64, Ordering::Relaxed);
                counters
                    .predictions
                    .fetch_add(size as u64, Ordering::Relaxed);
                for (job, prediction) in batch.jobs.iter().zip(predictions) {
                    if let JobKind::Predict { reply, .. } = &job.kind {
                        // A dropped receiver (client gave up) is not an
                        // engine error.
                        let _ = reply.send(prediction);
                    }
                }
            }
            JobKind::Update { .. } => {
                let requests: Vec<UpdateRequest> = batch
                    .jobs
                    .iter()
                    .map(|j| match &j.kind {
                        JobKind::Update { request, .. } => *request,
                        JobKind::Predict { .. } => unreachable!("batches are kind-homogeneous"),
                    })
                    .collect();
                update_chunk(&shared.model, &shared.store, &requests, marks.as_mut());
                shared.updates.fetch_add(size as u64, Ordering::Relaxed);
                counters.updates.fetch_add(size as u64, Ordering::Relaxed);
                for job in &batch.jobs {
                    if let JobKind::Update { reply, .. } = &job.kind {
                        let _ = reply.send(());
                    }
                }
            }
        }
        if let Some(marks) = marks {
            emit_batch_spans(tracer, worker, &batch.jobs, &marks, is_update);
        }

        // Claims release only now — after the batch's state reads and
        // write-backs — so no peer can reorder this batch's users; the
        // generation bump lets idle workers pick up what remains queued.
        for &shard in &batch.claimed_shards {
            shared.queues[shard].claimed.store(false, Ordering::Release);
        }
        shared.bump_work_gen();
    }
}

/// Emits the span tree for one served batch containing at least one traced
/// job: per traced member a `request` root (arrival → reply sent) tiled
/// exactly by its stage children, plus one `batch` span covering first
/// claim → last reply whose `batch` sequence number every member carries —
/// the link Perfetto (and the well-formedness tests) use to group a batch's
/// jobs. Runs after the replies, entirely off the reply path.
fn emit_batch_spans(
    tracer: &pp_obs::Tracer,
    worker: usize,
    jobs: &[Job],
    marks: &BatchMarks,
    is_update: bool,
) {
    use pp_obs::{Span, SpanId, Stage, TraceId};
    debug_assert!(
        tracer.enabled(),
        "span emission must be trace-gated by the caller"
    );
    let batch_id = tracer.next_batch_id();
    let worker = worker as u32;
    let done_ns = tracer.now_ns();
    let exec_ns = tracer.clock_ns(marks.exec_start);
    let assembly_ns = tracer.clock_ns(marks.assembly_done);
    let forward_ns = tracer.clock_ns(marks.forward_done);
    let writeback_ns = tracer.clock_ns(marks.writeback_done);
    let mut batch_start_ns = exec_ns;
    for job in jobs.iter().filter(|j| j.traced) {
        let user = job.kind.user_id().0;
        let trace = tracer.trace_for(user);
        let arrived_ns = tracer.clock_ns(job.arrived);
        let claimed_ns = tracer.clock_ns(job.claimed.unwrap_or(marks.exec_start));
        batch_start_ns = batch_start_ns.min(claimed_ns);
        let root = tracer.next_span_id();
        tracer.record(Span {
            trace,
            span: root,
            parent: SpanId::NONE,
            stage: Stage::Request,
            worker,
            user,
            batch: batch_id,
            start_ns: arrived_ns,
            end_ns: done_ns,
        });
        for (stage, start_ns, end_ns) in [
            (Stage::QueueWait, arrived_ns, claimed_ns),
            (Stage::CoalesceHold, claimed_ns, exec_ns),
            (Stage::BatchAssembly, exec_ns, assembly_ns),
            (Stage::ForwardPass, assembly_ns, forward_ns),
            (Stage::StateWriteBack, forward_ns, writeback_ns),
            (Stage::Reply, writeback_ns, done_ns),
        ] {
            if stage == Stage::StateWriteBack && !is_update {
                // Predict batches write no state; their `reply` child
                // starts at the forward-pass boundary instead.
                continue;
            }
            tracer.record(Span {
                trace,
                span: tracer.next_span_id(),
                parent: root,
                stage,
                worker,
                user,
                batch: batch_id,
                start_ns,
                end_ns,
            });
        }
    }
    tracer.record(Span {
        trace: TraceId(batch_id.max(1)),
        span: tracer.next_span_id(),
        parent: SpanId::NONE,
        stage: Stage::Batch,
        worker,
        user: 0,
        batch: batch_id,
        start_ns: batch_start_ns,
        end_ns: done_ns,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{DatasetKind, Tab};
    use pp_rnn::{RnnModelConfig, TaskKind};

    fn model() -> RnnModel {
        RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            11,
        )
    }

    fn request(id: u64, i: i64) -> PredictRequest {
        PredictRequest {
            user_id: UserId(id),
            timestamp: 10_000 + i * 37,
            context: Context::MobileTab {
                unread_count: (i % 9) as u8,
                active_tab: Tab::ALL[(i % Tab::ALL.len() as i64) as usize],
            },
            elapsed_secs: 300 + i,
        }
    }

    #[test]
    fn scheduler_matches_single_request_path() {
        let m = model();
        let store = ShardedStateStore::new(4);
        // Give some users warm states.
        for id in 0..10u64 {
            let mut h = m.initial_state();
            for step in 0..id {
                let ctx = Context::MobileTab {
                    unread_count: 1,
                    active_tab: Tab::Home,
                };
                h = m.advance_state(
                    &h,
                    &m.featurizer().update_input(step as i64, &ctx, 60, true),
                );
            }
            store.put_state(UserId(id), &h);
        }
        let requests: Vec<PredictRequest> = (0..25).map(|i| request(i as u64 % 13, i)).collect();

        let mut batched = BatchScheduler::new(&m, &store, 8);
        let results = batched.run(requests.iter().copied());

        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            assert_eq!(request.user_id, result.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            let single = m.predict_proba(&state, &input);
            assert!(
                (result.probability - single).abs() < 1e-6,
                "user {}: batched {} vs single {}",
                request.user_id,
                result.probability,
                single
            );
        }
        let stats = batched.stats();
        assert_eq!(stats.predictions, 25);
        assert_eq!(stats.largest_batch, 8);
        // 25 requests at max_batch 8 -> 4 forward passes, not 25.
        assert_eq!(stats.batches, 4);
    }

    #[test]
    fn updates_for_the_same_user_apply_in_order() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let ctx = Context::MobileTab {
            unread_count: 2,
            active_tab: Tab::Home,
        };
        let updates: Vec<UpdateRequest> = (0..6)
            .map(|i| UpdateRequest {
                user_id: UserId(5),
                timestamp: 1_000 * i,
                context: ctx,
                delta_t_secs: 600,
                accessed: i % 2 == 0,
            })
            .collect();
        let mut scheduler = BatchScheduler::new(&m, &store, 4);
        scheduler.apply_updates(&updates);

        // Sequential reference.
        let mut h = m.initial_state();
        for u in &updates {
            h = m.advance_state(
                &h,
                &m.featurizer()
                    .update_input(u.timestamp, &u.context, u.delta_t_secs, u.accessed),
            );
        }
        let stored = store.get_state(UserId(5)).unwrap();
        for (a, b) in stored.iter().zip(&h) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(scheduler.stats().updates, 6);
    }

    #[test]
    fn engine_serves_concurrent_clients_identically_to_single_path() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(8));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 2, 16);

        let receivers: Vec<(PredictRequest, mpsc::Receiver<Prediction>)> = (0..64)
            .map(|i| {
                let r = request(i as u64 % 7, i);
                let receiver = engine.submit(r);
                (r, receiver)
            })
            .collect();
        for (request, receiver) in receivers {
            let prediction = receiver.recv().unwrap();
            assert_eq!(prediction.user_id, request.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 64);
        assert!(stats.batches <= 64);
        drop(engine); // clean shutdown without panics
    }

    #[test]
    fn submit_many_coalesces_and_answers_every_request() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 1, 32);
        let requests: Vec<PredictRequest> = (0..48).map(|i| request(i as u64 % 9, i)).collect();
        let receivers = engine.submit_many(&requests);
        assert_eq!(receivers.len(), requests.len());
        for (request, receiver) in requests.iter().zip(receivers) {
            let prediction = receiver.recv().unwrap();
            assert_eq!(prediction.user_id, request.user_id);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 48);
        // 48 requests in one burst, max_batch 32 -> at most a handful of
        // forward passes, and at least one genuinely coalesced batch.
        assert!(stats.batches < 48, "batches = {}", stats.batches);
        assert!(stats.largest_batch > 1);
    }

    #[test]
    fn flush_due_serves_full_batches_and_honors_deadline() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 4, 30);
        assert_eq!(scheduler.max_wait_secs(), Some(30));

        // 6 requests submitted at t=100: one full batch is due immediately,
        // the partial remainder is not.
        for i in 0..6 {
            scheduler.submit_at(request(i as u64, i), 100);
        }
        let served = scheduler.flush_due(100);
        assert_eq!(served.len(), 4);
        assert_eq!(scheduler.pending(), 2);

        // Before the deadline nothing more flushes…
        assert!(scheduler.flush_due(129).is_empty());
        assert_eq!(scheduler.pending(), 2);
        // …at the deadline the partial batch goes out.
        let late = scheduler.flush_due(130);
        assert_eq!(late.len(), 2);
        assert_eq!(scheduler.pending(), 0);
        let stats = scheduler.stats();
        assert_eq!(stats.predictions, 6);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn flush_due_without_deadline_keeps_partial_batches_queued() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::new(&m, &store, 4);
        for i in 0..3 {
            scheduler.submit_at(request(i as u64, i), 0);
        }
        assert!(scheduler.flush_due(i64::MAX).is_empty());
        assert_eq!(scheduler.pending(), 3);
        // An untimed submit is always due once a deadline exists.
        let mut timed = BatchScheduler::with_max_wait(&m, &store, 4, 1_000);
        timed.submit(request(9, 9));
        assert_eq!(timed.flush_due(0).len(), 1);
        // …even when queued behind a fresher timed request.
        timed.submit_at(request(1, 1), 100);
        timed.submit(request(2, 2));
        assert_eq!(timed.flush_due(150).len(), 2);
        assert_eq!(timed.pending(), 0);
    }

    #[test]
    fn flush_due_flushes_exactly_at_the_deadline_tick() {
        let m = model();
        let store = ShardedStateStore::new(2);
        // A request submitted at t with max_wait w has deadline t + w and
        // must flush when now == t + w — not one tick later.
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 8, 25);
        scheduler.submit_at(request(1, 1), 1_000);
        assert!(scheduler.flush_due(1_024).is_empty());
        assert_eq!(
            scheduler.flush_due(1_025).len(),
            1,
            "now == deadline must flush"
        );
        assert_eq!(scheduler.pending(), 0);
        // max_wait = 0: due on the very tick it was submitted.
        let mut immediate = BatchScheduler::with_max_wait(&m, &store, 8, 0);
        immediate.submit_at(request(2, 2), 500);
        assert_eq!(immediate.flush_due(500).len(), 1);
    }

    #[test]
    fn flushed_partial_batches_preserve_submission_order() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 4, 10);
        // Six requests with deliberately non-monotone submission stamps:
        // one full batch plus a deadline-triggered partial remainder.
        let ids = [30u64, 10, 20, 5, 40, 15];
        let stamps = [300i64, 100, 200, 50, 400, 150];
        for (&id, &stamp) in ids.iter().zip(&stamps) {
            scheduler.submit_at(request(id, id as i64), stamp);
        }
        // The partial remainder (stamps 400, 150) has oldest stamp 150,
        // so its deadline 160 has passed at now = 170 and everything is
        // due. Results must come back in *submission* order, not stamp
        // order.
        let served = scheduler.flush_due(170);
        assert_eq!(served.len(), 6);
        let served_ids: Vec<u64> = served.iter().map(|p| p.user_id.0).collect();
        assert_eq!(served_ids, ids.to_vec());
        // Same property when only the full batch is due: the first four in
        // submission order go out, the rest stay queued in order.
        let mut partial = BatchScheduler::with_max_wait(&m, &store, 4, 1_000);
        for (&id, &stamp) in ids.iter().zip(&stamps) {
            partial.submit_at(request(id, id as i64), stamp);
        }
        let first = partial.flush_due(500);
        assert_eq!(
            first.iter().map(|p| p.user_id.0).collect::<Vec<_>>(),
            ids[..4].to_vec()
        );
        assert_eq!(partial.pending(), 2);
        let rest = partial.flush_due(2_000);
        assert_eq!(
            rest.iter().map(|p| p.user_id.0).collect::<Vec<_>>(),
            ids[4..].to_vec()
        );
    }

    #[test]
    fn deadline_flush_matches_single_request_path() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::with_max_wait(&m, &store, 8, 10);
        let requests: Vec<PredictRequest> = (0..3).map(|i| request(i as u64, i)).collect();
        for r in &requests {
            scheduler.submit_at(*r, 50);
        }
        let served = scheduler.flush_due(60);
        assert_eq!(served.len(), 3);
        for (request, prediction) in requests.iter().zip(&served) {
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| m.initial_state());
            let input = m.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            assert!((prediction.probability - m.predict_proba(&state, &input)).abs() < 1e-6);
        }
    }

    #[test]
    fn coalescing_engine_serves_low_traffic_within_deadline() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start_with_coalesce(
            m.clone(),
            store.clone(),
            1,
            64,
            Some(std::time::Duration::from_millis(10)),
        );
        // A lone request must not wait forever for 63 peers.
        let prediction = engine.predict_blocking(request(1, 1));
        assert_eq!(prediction.user_id, UserId(1));
        assert_eq!(engine.stats().predictions, 1);
    }

    #[test]
    fn coalescing_engine_batches_a_trickle() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start_with_coalesce(
            m.clone(),
            store.clone(),
            1,
            8,
            Some(std::time::Duration::from_millis(200)),
        );
        // Submit one-by-one (the worst case for the immediate-drain engine);
        // the coalescing worker holds the batch open and serves them together.
        let receivers: Vec<_> = (0..8)
            .map(|i| engine.submit(request(i as u64, i)))
            .collect();
        for receiver in receivers {
            receiver.recv().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.predictions, 8);
        assert!(
            stats.largest_batch >= 2,
            "coalesce window should batch a trickle (largest {})",
            stats.largest_batch
        );
    }

    fn update(id: u64, i: i64) -> UpdateRequest {
        UpdateRequest {
            user_id: UserId(id),
            timestamp: 20_000 + i * 41,
            context: Context::MobileTab {
                unread_count: (i % 7) as u8,
                active_tab: Tab::ALL[(i % Tab::ALL.len() as i64) as usize],
            },
            delta_t_secs: 600 + i,
            accessed: i % 2 == 0,
        }
    }

    #[test]
    fn coalesce_deadline_is_anchored_at_job_arrival_not_observation() {
        // Regression: the flush deadline used to be re-armed at the instant
        // a worker first *observed* the queue, so a job that sat queued
        // while the worker was occupied waited its queue residence PLUS a
        // full coalesce window (worst case ~2x the configured wait). The
        // deadline is now anchored at the oldest job's arrival.
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let wait = std::time::Duration::from_millis(500);
        let engine = BatchServingEngine::start_with_coalesce(m, store, 1, 8, Some(wait));
        // Occupy the lone worker with a partial *predict* batch whose
        // coalesce window runs until t = 500ms.
        let predict = engine.submit(request(1, 1));
        std::thread::sleep(std::time::Duration::from_millis(100));
        // t = 100ms: an *update* arrives. Batches are kind-homogeneous, so
        // it cannot join the held predict batch; the worker only picks it
        // up when that batch flushes at t = 500ms — after 400ms of queue
        // residence that must count against the update's own deadline.
        let submitted = std::time::Instant::now();
        let receiver = engine.submit_update(update(2, 2));
        receiver.recv().unwrap();
        let waited = submitted.elapsed();
        // Arrival-anchored: served ~500ms after arrival. The old
        // observation-anchored deadline re-armed the full window at
        // t = 500ms and served at ~1s (a ~900ms wait).
        assert!(
            waited < std::time::Duration::from_millis(750),
            "update waited {waited:?}; coalesce deadline must anchor at arrival, not observation"
        );
        predict.recv().unwrap();
    }

    #[test]
    fn separate_submits_are_not_stranded_by_a_peer_coalescing_a_partial_batch() {
        // Regression: the old single-queue engine woke workers with
        // `notify_one`, so a submission's wakeup could be consumed by a
        // worker parked mid-coalesce over a partial batch while an idle
        // peer — which could have served the job immediately — kept
        // sleeping, stranding the job for the full coalesce window. Jobs
        // now land in per-shard queues, idle workers park on a generation
        // counter bumped with `notify_all`, and coalescing workers listen
        // on private signals.
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let wait = std::time::Duration::from_secs(2);
        let engine = BatchServingEngine::start_with_coalesce(m, store.clone(), 2, 2, Some(wait));
        // One user homed on worker 0, and two distinct users sharing a
        // single worker-1 shard (same shard ⇒ whichever worker claims the
        // shard sees both jobs, keeping the test deterministic under
        // stealing).
        let lone = (0..256)
            .map(UserId)
            .find(|&u| engine.home_worker(u) == 0)
            .expect("a worker-0 user exists");
        let second = (0..256)
            .map(UserId)
            .find(|&u| engine.home_worker(u) == 1)
            .expect("a worker-1 user exists");
        let third = (0..256)
            .map(UserId)
            .find(|&u| u != second && store.shard_index(u) == store.shard_index(second))
            .expect("a second user in the same shard exists");

        // Some worker claims the lone user's shard and holds its partial
        // batch open until t = 2s.
        let j1 = engine.submit(request(lone.0, 1));
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Two *separate* submits (two wakeup events — the pattern that
        // lost a wakeup in the old engine). They fill a max_batch = 2
        // batch and must be served immediately, long before any coalesce
        // window expires.
        let started = std::time::Instant::now();
        let j2 = engine.submit(request(second.0, 2));
        let j3 = engine.submit(request(third.0, 3));
        j2.recv_timeout(std::time::Duration::from_millis(900))
            .expect("second job stranded behind a peer's coalesce window");
        j3.recv_timeout(std::time::Duration::from_millis(900))
            .expect("third job stranded behind a peer's coalesce window");
        assert!(started.elapsed() < std::time::Duration::from_millis(1000));
        // The lone partial batch still flushes at its own (arrival-
        // anchored) deadline.
        j1.recv_timeout(std::time::Duration::from_secs(4))
            .expect("lone job must flush at its coalesce deadline");
    }

    #[test]
    fn engine_applies_updates_and_counts_them() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 2, 8);
        let updates: Vec<UpdateRequest> = (0..6).map(|i| update(7, i)).collect();
        engine.apply_updates_blocking(&updates);
        // Sequential reference: same-user updates must chain in order.
        let mut h = m.initial_state();
        for u in &updates {
            h = m.advance_state(
                &h,
                &m.featurizer()
                    .update_input(u.timestamp, &u.context, u.delta_t_secs, u.accessed),
            );
        }
        let stored = store.get_state(UserId(7)).unwrap();
        for (a, b) in stored.iter().zip(&h) {
            assert!((a - b).abs() < 1e-6);
        }
        let stats = engine.stats();
        assert_eq!(stats.updates, 6);
        assert_eq!(stats.predictions, 0);
        let worker_updates: u64 = engine.worker_stats().iter().map(|w| w.updates).sum();
        assert_eq!(worker_updates, 6);
    }

    #[test]
    fn predict_many_blocking_returns_in_request_order() {
        let m = Arc::new(model());
        let store = Arc::new(ShardedStateStore::new(4));
        let engine = BatchServingEngine::start(m.clone(), store.clone(), 2, 16);
        let requests: Vec<PredictRequest> = (0..20).map(|i| request(i as u64, i)).collect();
        let predictions = engine.predict_many_blocking(&requests);
        assert_eq!(predictions.len(), 20);
        for (request, prediction) in requests.iter().zip(&predictions) {
            assert_eq!(request.user_id, prediction.user_id);
        }
    }

    #[test]
    fn max_batch_one_is_the_single_request_baseline() {
        let m = model();
        let store = ShardedStateStore::new(2);
        let mut scheduler = BatchScheduler::new(&m, &store, 1);
        let results = scheduler.run((0..5).map(|i| request(i as u64, i)));
        assert_eq!(results.len(), 5);
        let stats = scheduler.stats();
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.largest_batch, 1);
        assert!((stats.mean_batch_size() - 1.0).abs() < 1e-12);
    }
}
