//! # pp-features
//!
//! Feature engineering for predictive precompute, reproducing §5.2 and §6.1
//! of the paper:
//!
//! * [`encoding`] — one-hot encoding, categorical hashing (mod 97), and the
//!   `⌊(50/15)·ln t⌋` elapsed-time bucketing transform;
//! * [`context`] — context featurization (hour/day one-hots plus the
//!   dataset-specific categorical variables) and context-subset keys;
//! * [`aggregation`] — incremental (time window × context subset)
//!   aggregations and elapsed-time tracking, with the storage/lookup
//!   accounting needed by the serving cost model;
//! * [`baseline`] — the full engineered feature vectors consumed by logistic
//!   regression and GBDT, including the Table 5 ablation levels and the
//!   example builders for both the per-session and the timeshifted task;
//! * [`rnn_input`] — the much smaller step features consumed by the RNN
//!   (`[f_i ; A_i ; T(Δt_i)]` and `[f_i ; T(t_i − t_k)]`).
//!
//! # Examples
//!
//! ```
//! use pp_features::baseline::{BaselineFeaturizer, ElapsedEncoding, FeatureSet};
//! use pp_features::aggregation::AggregationState;
//! use pp_data::schema::{Context, DatasetKind, Tab};
//!
//! let featurizer = BaselineFeaturizer::new(
//!     DatasetKind::MobileTab,
//!     FeatureSet::Full,
//!     ElapsedEncoding::Scalar,
//! );
//! let mut state = AggregationState::new(DatasetKind::MobileTab);
//! let ctx = Context::MobileTab { unread_count: 3, active_tab: Tab::Home };
//! state.record(1_000, &ctx, true);
//! let features = featurizer.extract(&state, 2_000, &ctx);
//! assert_eq!(features.len(), featurizer.dims());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregation;
pub mod baseline;
pub mod context;
pub mod encoding;
pub mod rnn_input;

pub use aggregation::{AggregationState, ElapsedTimes, WindowCounts, WINDOWS_SECS, WINDOW_NAMES};
pub use baseline::{
    build_session_examples, build_timeshift_examples, BaselineFeaturizer, ElapsedEncoding,
    FeatureSet, LabeledExample,
};
pub use context::{ContextDimension, ContextFeaturizer, ContextSubset};
pub use encoding::{hash_category, one_hot, time_bucket, HASH_MODULUS, TIME_BUCKETS};
pub use rnn_input::RnnFeaturizer;
