//! Context featurization: turning a [`Context`] plus session timestamp into
//! the fixed-length numeric vector `f_i` used by every model (paper §5.2
//! "one-hot encoding of categorical variables" and "time-based features",
//! and §6.1 "feature extraction" for the RNN).
//!
//! The same module also defines the *context dimensions* used to condition
//! aggregation features ("accesses with the same active tab", etc.).

use crate::encoding::{push_one_hot, unread_bucket, UNREAD_BUCKETS};
use pp_data::schema::{day_of_week, hour_of_day, Context, DatasetKind, ScreenState, Tab};
use pp_data::synth::NUM_APPS;
use serde::{Deserialize, Serialize};

/// Number of hour-of-day categories.
pub const HOURS: usize = 24;
/// Number of day-of-week categories.
pub const DAYS: usize = 7;

/// Featurizer that maps `(timestamp, context)` to a dense vector for a given
/// dataset family. The layout is fixed per dataset kind so that feature
/// indices are stable across sessions and users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextFeaturizer {
    kind: DatasetKind,
}

impl ContextFeaturizer {
    /// Creates a featurizer for a dataset family.
    pub fn new(kind: DatasetKind) -> Self {
        Self { kind }
    }

    /// The dataset family this featurizer expects.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Dimensionality of the produced vectors.
    pub fn dims(&self) -> usize {
        HOURS
            + DAYS
            + match self.kind {
                DatasetKind::MobileTab => UNREAD_BUCKETS + Tab::ALL.len() + 1, // +1 raw unread
                DatasetKind::Timeshift => 1,                                   // is_peak
                DatasetKind::Mpu => {
                    ScreenState::ALL.len() + NUM_APPS as usize + NUM_APPS as usize + 1
                    // +1 same-app flag
                }
            }
    }

    /// Featurizes a session's context into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the context kind does not match the featurizer's dataset.
    pub fn featurize(&self, timestamp: i64, context: &Context) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dims());
        self.featurize_into(timestamp, context, &mut out);
        out
    }

    /// Featurizes into an existing buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if the context kind does not match the featurizer's dataset.
    pub fn featurize_into(&self, timestamp: i64, context: &Context, out: &mut Vec<f32>) {
        assert_eq!(
            context.kind(),
            self.kind,
            "context kind does not match featurizer dataset"
        );
        out.clear();
        push_one_hot(out, hour_of_day(timestamp) as usize, HOURS);
        push_one_hot(out, day_of_week(timestamp) as usize, DAYS);
        match *context {
            Context::MobileTab {
                unread_count,
                active_tab,
            } => {
                push_one_hot(out, unread_bucket(unread_count), UNREAD_BUCKETS);
                push_one_hot(out, active_tab.index(), Tab::ALL.len());
                out.push(unread_count as f32 / 99.0);
            }
            Context::Timeshift { is_peak } => {
                out.push(if is_peak { 1.0 } else { 0.0 });
            }
            Context::Mpu {
                screen,
                app_id,
                last_app_id,
            } => {
                push_one_hot(out, screen.index(), ScreenState::ALL.len());
                push_one_hot(out, app_id as usize, NUM_APPS as usize);
                push_one_hot(out, last_app_id as usize, NUM_APPS as usize);
                out.push(if app_id == last_app_id { 1.0 } else { 0.0 });
            }
        }
        debug_assert_eq!(out.len(), self.dims());
    }
}

/// A context *dimension* used to condition aggregation features, e.g. "only
/// count past sessions whose active tab matches the current one"
/// (paper §5.2, "filter past accesses to those whose contexts match the
/// current session context").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextDimension {
    /// MobileTab: the bucketized unread badge count.
    UnreadBucket,
    /// MobileTab: the active tab at startup.
    ActiveTab,
    /// Timeshift: the peak-hours flag.
    PeakFlag,
    /// MPU: the screen state.
    Screen,
    /// MPU: the application that posted the notification.
    AppId,
    /// MPU: the previously opened application.
    LastAppId,
}

impl ContextDimension {
    /// The dimensions available for a dataset family, in a fixed order.
    pub fn for_kind(kind: DatasetKind) -> &'static [ContextDimension] {
        match kind {
            DatasetKind::MobileTab => {
                &[ContextDimension::UnreadBucket, ContextDimension::ActiveTab]
            }
            DatasetKind::Timeshift => &[ContextDimension::PeakFlag],
            DatasetKind::Mpu => &[
                ContextDimension::Screen,
                ContextDimension::AppId,
                ContextDimension::LastAppId,
            ],
        }
    }

    /// Extracts the categorical value of this dimension from a context.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not apply to the context's dataset.
    pub fn value(&self, context: &Context) -> u64 {
        match (self, context) {
            (ContextDimension::UnreadBucket, Context::MobileTab { unread_count, .. }) => {
                unread_bucket(*unread_count) as u64
            }
            (ContextDimension::ActiveTab, Context::MobileTab { active_tab, .. }) => {
                active_tab.index() as u64
            }
            (ContextDimension::PeakFlag, Context::Timeshift { is_peak }) => *is_peak as u64,
            (ContextDimension::Screen, Context::Mpu { screen, .. }) => screen.index() as u64,
            (ContextDimension::AppId, Context::Mpu { app_id, .. }) => *app_id as u64,
            (ContextDimension::LastAppId, Context::Mpu { last_app_id, .. }) => *last_app_id as u64,
            _ => panic!("context dimension {self:?} does not apply to {context:?}"),
        }
    }
}

/// A *subset* of context dimensions, encoded as a bitmask over
/// [`ContextDimension::for_kind`]. Subset 0 is the empty subset (global
/// aggregations). The paper conditions aggregations on "all (time window) ×
/// (matching subset of context) combinations".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContextSubset {
    /// Dataset family the subset applies to.
    pub kind: DatasetKind,
    /// Bitmask over the dataset's dimensions.
    pub mask: u8,
}

impl ContextSubset {
    /// Enumerates every subset (including the empty one) for a dataset.
    pub fn enumerate(kind: DatasetKind) -> Vec<ContextSubset> {
        let n = ContextDimension::for_kind(kind).len();
        (0..(1u8 << n))
            .map(|mask| ContextSubset { kind, mask })
            .collect()
    }

    /// Number of dimensions included in the subset.
    pub fn arity(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Computes a compact key identifying the values of the subset's
    /// dimensions within `context`. Two sessions "match" on this subset iff
    /// their keys are equal. The empty subset always returns 0.
    pub fn key(&self, context: &Context) -> u64 {
        let dims = ContextDimension::for_kind(self.kind);
        let mut key: u64 = 0;
        for (i, dim) in dims.iter().enumerate() {
            if self.mask & (1 << i) != 0 {
                // 10 bits per dimension is plenty (max cardinality here is 97).
                key = (key << 10) | (dim.value(context) & 0x3FF);
            } else {
                key <<= 10;
            }
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{ScreenState, Tab};

    #[test]
    fn dims_match_layout() {
        let mt = ContextFeaturizer::new(DatasetKind::MobileTab);
        assert_eq!(mt.dims(), 24 + 7 + 8 + 8 + 1);
        let ts = ContextFeaturizer::new(DatasetKind::Timeshift);
        assert_eq!(ts.dims(), 24 + 7 + 1);
        let mpu = ContextFeaturizer::new(DatasetKind::Mpu);
        assert_eq!(mpu.dims(), 24 + 7 + 3 + 32 + 32 + 1);
    }

    #[test]
    fn featurize_produces_correct_one_hots() {
        let f = ContextFeaturizer::new(DatasetKind::MobileTab);
        let ctx = Context::MobileTab {
            unread_count: 5,
            active_tab: Tab::Messages,
        };
        // Timestamp at 13:00 on a day with day_of_week 2.
        let ts = 2 * 86_400 + 13 * 3_600;
        let v = f.featurize(ts, &ctx);
        assert_eq!(v.len(), f.dims());
        assert_eq!(v[13], 1.0); // hour one-hot
        assert_eq!(v.iter().take(24).sum::<f32>(), 1.0);
        assert_eq!(v[24 + 2], 1.0); // day-of-week one-hot
        let unread_offset = 24 + 7;
        assert_eq!(v[unread_offset + unread_bucket(5)], 1.0);
        let tab_offset = unread_offset + UNREAD_BUCKETS;
        assert_eq!(v[tab_offset + Tab::Messages.index()], 1.0);
        assert!((v[tab_offset + 8] - 5.0 / 99.0).abs() < 1e-6);
    }

    #[test]
    fn featurize_into_reuses_buffer() {
        let f = ContextFeaturizer::new(DatasetKind::Timeshift);
        let mut buf = vec![1.0; 100];
        f.featurize_into(0, &Context::Timeshift { is_peak: true }, &mut buf);
        assert_eq!(buf.len(), f.dims());
        assert_eq!(*buf.last().unwrap(), 1.0);
        f.featurize_into(0, &Context::Timeshift { is_peak: false }, &mut buf);
        assert_eq!(*buf.last().unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match featurizer dataset")]
    fn kind_mismatch_panics() {
        let f = ContextFeaturizer::new(DatasetKind::Timeshift);
        let _ = f.featurize(
            0,
            &Context::MobileTab {
                unread_count: 0,
                active_tab: Tab::Home,
            },
        );
    }

    #[test]
    fn subsets_enumeration_counts() {
        assert_eq!(ContextSubset::enumerate(DatasetKind::MobileTab).len(), 4);
        assert_eq!(ContextSubset::enumerate(DatasetKind::Timeshift).len(), 2);
        assert_eq!(ContextSubset::enumerate(DatasetKind::Mpu).len(), 8);
    }

    #[test]
    fn subset_keys_match_iff_dimensions_match() {
        let subsets = ContextSubset::enumerate(DatasetKind::MobileTab);
        let a = Context::MobileTab {
            unread_count: 5,
            active_tab: Tab::Home,
        };
        let b = Context::MobileTab {
            unread_count: 5,
            active_tab: Tab::Messages,
        };
        let c = Context::MobileTab {
            unread_count: 0,
            active_tab: Tab::Home,
        };
        // Empty subset: everything matches.
        assert_eq!(subsets[0].key(&a), subsets[0].key(&b));
        // Unread-only subset (bit 0): a and b match (same unread bucket), a and c don't.
        let unread_only = ContextSubset {
            kind: DatasetKind::MobileTab,
            mask: 0b01,
        };
        assert_eq!(unread_only.key(&a), unread_only.key(&b));
        assert_ne!(unread_only.key(&a), unread_only.key(&c));
        // Tab-only subset (bit 1): a and c match, a and b don't.
        let tab_only = ContextSubset {
            kind: DatasetKind::MobileTab,
            mask: 0b10,
        };
        assert_eq!(tab_only.key(&a), tab_only.key(&c));
        assert_ne!(tab_only.key(&a), tab_only.key(&b));
        // Full subset: only exact matches.
        let full = ContextSubset {
            kind: DatasetKind::MobileTab,
            mask: 0b11,
        };
        assert_ne!(full.key(&a), full.key(&b));
        assert_ne!(full.key(&a), full.key(&c));
        assert_eq!(full.arity(), 2);
    }

    #[test]
    fn mpu_dimension_values() {
        let ctx = Context::Mpu {
            screen: ScreenState::Unlocked,
            app_id: 7,
            last_app_id: 3,
        };
        assert_eq!(ContextDimension::Screen.value(&ctx), 2);
        assert_eq!(ContextDimension::AppId.value(&ctx), 7);
        assert_eq!(ContextDimension::LastAppId.value(&ctx), 3);
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn wrong_dimension_panics() {
        let ctx = Context::Timeshift { is_peak: true };
        let _ = ContextDimension::ActiveTab.value(&ctx);
    }
}
