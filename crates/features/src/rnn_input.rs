//! Step-level feature extraction for the recurrent model (paper §6.1).
//!
//! For each session the GRU update consumes `[f_i ; A_i ; T(Δt_i)]` where
//! `f_i` is the one-hot context/time vector, `A_i` the access flag and
//! `T(Δt_i)` the log-bucketed time since the previous session. Predictions
//! consume `[f_i ; T(t_i − t_k)]` where `t_k` is the timestamp of the last
//! session whose hidden update is already available given the lag δ. The
//! timeshifted variant predicts from `[T(start_d − t_k)]` alone.

use crate::context::ContextFeaturizer;
use crate::encoding::{push_one_hot, time_bucket, TIME_BUCKETS};
use pp_data::schema::{Context, DatasetKind};
use serde::{Deserialize, Serialize};

/// Featurizer producing GRU-update and prediction inputs for one dataset
/// family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RnnFeaturizer {
    context: ContextFeaturizer,
}

impl RnnFeaturizer {
    /// Creates a featurizer for a dataset family.
    pub fn new(kind: DatasetKind) -> Self {
        Self {
            context: ContextFeaturizer::new(kind),
        }
    }

    /// Dataset family.
    pub fn kind(&self) -> DatasetKind {
        self.context.kind()
    }

    /// Dimensionality of `[f_i ; T(·)]`, the shared prefix of both the
    /// update input (which appends `A_i`) and the prediction input.
    pub fn feature_dims(&self) -> usize {
        self.context.dims() + TIME_BUCKETS
    }

    /// Dimensionality of the GRU update input `[f_i ; T(Δt_i) ; A_i]`.
    pub fn update_input_dims(&self) -> usize {
        self.feature_dims() + 1
    }

    /// Dimensionality of the prediction input `[f_i ; T(t_i − t_k)]`.
    pub fn predict_input_dims(&self) -> usize {
        self.feature_dims()
    }

    /// Dimensionality of the timeshifted prediction input `[T(start − t_k)]`.
    pub fn timeshift_predict_dims(&self) -> usize {
        TIME_BUCKETS
    }

    /// Builds `[f_i ; T(elapsed)]` for a session context. `elapsed_secs` is
    /// `Δt_i` for update inputs or `t_i − t_k` for prediction inputs; pass 0
    /// when there is no previous event (the paper sets `Δt_1 = 0` and
    /// `t_i − t_k = 0` when `k = 0`).
    pub fn features(&self, timestamp: i64, context: &Context, elapsed_secs: i64) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.feature_dims());
        self.context.featurize_into(timestamp, context, &mut out);
        push_one_hot(&mut out, time_bucket(elapsed_secs), TIME_BUCKETS);
        out
    }

    /// Builds the full GRU update input `[f_i ; T(Δt_i) ; A_i]`.
    pub fn update_input(
        &self,
        timestamp: i64,
        context: &Context,
        delta_t_secs: i64,
        accessed: bool,
    ) -> Vec<f32> {
        let mut v = self.features(timestamp, context, delta_t_secs);
        v.push(if accessed { 1.0 } else { 0.0 });
        v
    }

    /// Builds the prediction input `[f_i ; T(t_i − t_k)]`.
    pub fn predict_input(
        &self,
        timestamp: i64,
        context: &Context,
        secs_since_hidden: i64,
    ) -> Vec<f32> {
        self.features(timestamp, context, secs_since_hidden)
    }

    /// Builds the timeshifted prediction input `[T(start_d − t_k)]`.
    pub fn timeshift_predict_input(&self, secs_since_hidden: i64) -> Vec<f32> {
        let mut out = Vec::with_capacity(TIME_BUCKETS);
        push_one_hot(&mut out, time_bucket(secs_since_hidden), TIME_BUCKETS);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::Tab;

    fn ctx() -> Context {
        Context::MobileTab {
            unread_count: 2,
            active_tab: Tab::Home,
        }
    }

    #[test]
    fn dims_are_consistent() {
        let f = RnnFeaturizer::new(DatasetKind::MobileTab);
        assert_eq!(f.feature_dims(), 48 + TIME_BUCKETS);
        assert_eq!(f.update_input_dims(), f.feature_dims() + 1);
        assert_eq!(f.predict_input_dims(), f.feature_dims());
        assert_eq!(f.timeshift_predict_dims(), TIME_BUCKETS);

        assert_eq!(f.features(0, &ctx(), 0).len(), f.feature_dims());
        assert_eq!(
            f.update_input(0, &ctx(), 60, true).len(),
            f.update_input_dims()
        );
        assert_eq!(f.predict_input(0, &ctx(), 60).len(), f.predict_input_dims());
        assert_eq!(
            f.timeshift_predict_input(3_600).len(),
            f.timeshift_predict_dims()
        );
    }

    #[test]
    fn access_flag_is_last_component() {
        let f = RnnFeaturizer::new(DatasetKind::MobileTab);
        let pos = f.update_input(0, &ctx(), 0, true);
        let neg = f.update_input(0, &ctx(), 0, false);
        assert_eq!(*pos.last().unwrap(), 1.0);
        assert_eq!(*neg.last().unwrap(), 0.0);
        assert_eq!(pos[..pos.len() - 1], neg[..neg.len() - 1]);
    }

    #[test]
    fn delta_t_bucket_is_one_hot_in_tail() {
        let f = RnnFeaturizer::new(DatasetKind::Timeshift);
        let v = f.features(0, &Context::Timeshift { is_peak: false }, 3_600);
        let tail = &v[v.len() - TIME_BUCKETS..];
        assert_eq!(tail.iter().sum::<f32>(), 1.0);
        assert_eq!(tail[time_bucket(3_600)], 1.0);
        // Different elapsed time lands in a different bucket.
        let v2 = f.features(0, &Context::Timeshift { is_peak: false }, 7 * 86_400);
        assert_ne!(v, v2);
    }

    #[test]
    fn zero_elapsed_maps_to_bucket_zero() {
        let f = RnnFeaturizer::new(DatasetKind::Mpu);
        let v = f.timeshift_predict_input(0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v.iter().sum::<f32>(), 1.0);
    }
}
