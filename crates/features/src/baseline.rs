//! Full feature-engineering pipeline for the traditional (baseline) models:
//! logistic regression and GBDT (paper §5.2–5.4), including the feature-set
//! ablation axis of Table 5 (C, E+C, A+E+C).

use crate::aggregation::{AggregationState, WINDOWS_SECS};
use crate::context::ContextFeaturizer;
use crate::encoding::{log_elapsed_normalized, push_one_hot, time_bucket, TIME_BUCKETS};
use pp_data::schema::{Context, Dataset, DatasetKind, SECONDS_PER_DAY};
use pp_data::synth::{build_peak_window_examples, peak_window_start};
use serde::{Deserialize, Serialize};

/// Which groups of engineered features to include (the ablation axis of
/// Table 5). `A` = time-based aggregations, `E` = time-elapsed features,
/// `C` = contextual features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Contextual features only (Table 5 row "C").
    Contextual,
    /// Time-elapsed + contextual features (Table 5 row "E + C").
    ElapsedContextual,
    /// Aggregations + elapsed + contextual (Table 5 row "A + E + C", the
    /// full baseline feature set).
    Full,
}

impl FeatureSet {
    /// Whether elapsed-time features are included.
    pub fn has_elapsed(self) -> bool {
        matches!(self, FeatureSet::ElapsedContextual | FeatureSet::Full)
    }

    /// Whether aggregation features are included.
    pub fn has_aggregations(self) -> bool {
        matches!(self, FeatureSet::Full)
    }
}

impl std::fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureSet::Contextual => write!(f, "C"),
            FeatureSet::ElapsedContextual => write!(f, "E+C"),
            FeatureSet::Full => write!(f, "A+E+C"),
        }
    }
}

/// How elapsed-time values are encoded.
///
/// The paper one-hot encodes the 50 log-buckets for logistic regression but
/// feeds raw (log-transformed) values to GBDT ("we skip the one-hot encoding
/// step for time-elapsed features").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElapsedEncoding {
    /// One-hot over the 50 log-buckets plus a "never" indicator (for LR).
    OneHotBuckets,
    /// A single normalized log value plus a "never" indicator (for GBDT).
    Scalar,
}

/// Featurizer producing fixed-length vectors for the baseline models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineFeaturizer {
    context: ContextFeaturizer,
    feature_set: FeatureSet,
    elapsed_encoding: ElapsedEncoding,
    kind: DatasetKind,
}

impl BaselineFeaturizer {
    /// Creates a featurizer for a dataset family.
    pub fn new(
        kind: DatasetKind,
        feature_set: FeatureSet,
        elapsed_encoding: ElapsedEncoding,
    ) -> Self {
        Self {
            context: ContextFeaturizer::new(kind),
            feature_set,
            elapsed_encoding,
            kind,
        }
    }

    /// The feature-set ablation level.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// The dataset family.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    fn num_subsets(&self) -> usize {
        crate::context::ContextSubset::enumerate(self.kind).len()
    }

    fn elapsed_dims_per_value(&self) -> usize {
        match self.elapsed_encoding {
            ElapsedEncoding::OneHotBuckets => TIME_BUCKETS + 1,
            ElapsedEncoding::Scalar => 2,
        }
    }

    /// Dimensionality of the produced feature vectors.
    pub fn dims(&self) -> usize {
        let mut d = self.context.dims();
        if self.feature_set.has_elapsed() {
            // Two elapsed values (since last access / since last session) per
            // context subset.
            d += self.num_subsets() * 2 * self.elapsed_dims_per_value();
        }
        if self.feature_set.has_aggregations() {
            // Three values (sessions, accesses, ratio) per subset × window.
            d += self.num_subsets() * WINDOWS_SECS.len() * 3;
        }
        d
    }

    fn push_elapsed(&self, out: &mut Vec<f32>, elapsed: Option<i64>) {
        match self.elapsed_encoding {
            ElapsedEncoding::OneHotBuckets => {
                match elapsed {
                    // Bucket one-hot plus trailing 0 "never" flag.
                    Some(t) => {
                        push_one_hot(out, time_bucket(t), TIME_BUCKETS);
                        out.push(0.0);
                    }
                    None => {
                        out.extend(std::iter::repeat_n(0.0, TIME_BUCKETS));
                        out.push(1.0);
                    }
                }
            }
            ElapsedEncoding::Scalar => match elapsed {
                Some(t) => {
                    out.push(log_elapsed_normalized(t));
                    out.push(0.0);
                }
                None => {
                    out.push(1.0); // "a long time ago / never"
                    out.push(1.0);
                }
            },
        }
    }

    /// Builds the feature vector for a prediction at `timestamp` with the
    /// given `context`, using the user's aggregation state over *previous*
    /// sessions.
    ///
    /// # Panics
    ///
    /// Panics if the context kind does not match the featurizer.
    pub fn extract(&self, state: &AggregationState, timestamp: i64, context: &Context) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dims());
        self.context.featurize_into(timestamp, context, &mut out);
        if self.feature_set.has_elapsed() {
            for e in state.elapsed_times(timestamp, context) {
                self.push_elapsed(&mut out, e.since_last_access);
                self.push_elapsed(&mut out, e.since_last_session);
            }
        }
        if self.feature_set.has_aggregations() {
            for c in state.window_counts(timestamp, context) {
                // log1p keeps counts in a reasonable numeric range for LR.
                out.push((1.0 + c.sessions as f32).ln());
                out.push((1.0 + c.accesses as f32).ln());
                out.push(c.ratio() as f32);
            }
        }
        debug_assert_eq!(out.len(), self.dims());
        out
    }
}

/// A labeled training or evaluation example for the baseline models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledExample {
    /// Dense feature vector.
    pub features: Vec<f32>,
    /// Ground-truth access flag.
    pub label: bool,
    /// Session (or peak-window) timestamp.
    pub timestamp: i64,
    /// Index of the user in the dataset's user list.
    pub user_index: usize,
    /// Day offset (0-based) of the example relative to the dataset start.
    pub day_offset: u32,
}

/// Builds per-session examples for the given users, replaying each user's
/// history in order so that the features for session *i* only see sessions
/// `1..i-1`.
///
/// `last_days` restricts emitted examples to the final `n` days of the
/// dataset (while still warming aggregations on the earlier days), matching
/// the paper's protocol: baselines train on the last 7 days and all offline
/// evaluations use the last 7 days of the test users.
pub fn build_session_examples(
    dataset: &Dataset,
    user_indices: &[usize],
    featurizer: &BaselineFeaturizer,
    last_days: Option<u32>,
) -> Vec<LabeledExample> {
    let cutoff = last_days.map(|d| dataset.end_timestamp() - (d as i64) * SECONDS_PER_DAY);
    let mut examples = Vec::new();
    for &user_index in user_indices {
        let user = &dataset.users[user_index];
        let mut state = AggregationState::new(dataset.kind);
        for session in &user.sessions {
            let include = cutoff.is_none_or(|c| session.timestamp >= c);
            if include {
                let features = featurizer.extract(&state, session.timestamp, &session.context);
                let day_offset =
                    ((session.timestamp - dataset.start_timestamp) / SECONDS_PER_DAY).max(0) as u32;
                examples.push(LabeledExample {
                    features,
                    label: session.accessed,
                    timestamp: session.timestamp,
                    user_index,
                    day_offset,
                });
            }
            state.record(session.timestamp, &session.context, session.accessed);
        }
    }
    examples
}

/// Builds the timeshifted-precompute examples (paper §3.2.1): one example
/// per user × peak window, with features computed `lead_time_secs` before
/// the window opens from the access log alone. The query context is a
/// synthetic "peak" context so that the peak-conditioned aggregation subset
/// captures "accesses at peak" as the paper's percentage baseline does.
pub fn build_timeshift_examples(
    dataset: &Dataset,
    user_indices: &[usize],
    featurizer: &BaselineFeaturizer,
    lead_time_secs: i64,
    last_days: Option<u32>,
) -> Vec<LabeledExample> {
    assert_eq!(
        dataset.kind,
        DatasetKind::Timeshift,
        "timeshift examples require the Timeshift dataset"
    );
    let windows = build_peak_window_examples(dataset, lead_time_secs);
    let selected: std::collections::HashSet<usize> = user_indices.iter().copied().collect();
    let cutoff_day = last_days.map(|d| dataset.num_days.saturating_sub(d));
    let first_day = dataset.start_timestamp.div_euclid(SECONDS_PER_DAY);
    // Group windows by user for one chronological replay per user.
    let mut examples = Vec::new();
    for &user_index in user_indices {
        let user = &dataset.users[user_index];
        if !selected.contains(&user_index) {
            continue;
        }
        let user_windows: Vec<_> = windows
            .iter()
            .filter(|w| w.user_id == user.user_id)
            .collect();
        let mut state = AggregationState::new(dataset.kind);
        let mut next_session = 0usize;
        let query_context = Context::Timeshift { is_peak: true };
        for w in user_windows {
            let horizon = w.window_start - lead_time_secs;
            // Record all sessions up to the prediction horizon.
            while next_session < user.sessions.len()
                && user.sessions[next_session].timestamp < horizon
            {
                let s = &user.sessions[next_session];
                state.record(s.timestamp, &s.context, s.accessed);
                next_session += 1;
            }
            let day_offset = (w.day_index - first_day).max(0) as u32;
            if cutoff_day.is_none_or(|c| day_offset >= c) {
                let features =
                    featurizer.extract(&state, peak_window_start(w.day_index), &query_context);
                examples.push(LabeledExample {
                    features,
                    label: w.accessed_in_window,
                    timestamp: w.window_start,
                    user_index,
                    day_offset,
                });
            }
        }
    }
    examples
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::synth::{
        MobileTabConfig, MobileTabGenerator, SyntheticGenerator, TimeshiftConfig,
        TimeshiftGenerator,
    };

    fn tiny_mobiletab() -> Dataset {
        MobileTabGenerator::new(MobileTabConfig {
            num_users: 20,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn feature_set_flags() {
        assert!(!FeatureSet::Contextual.has_elapsed());
        assert!(FeatureSet::ElapsedContextual.has_elapsed());
        assert!(!FeatureSet::ElapsedContextual.has_aggregations());
        assert!(FeatureSet::Full.has_aggregations());
        assert_eq!(FeatureSet::Full.to_string(), "A+E+C");
    }

    #[test]
    fn dims_consistent_with_extract() {
        let ds = tiny_mobiletab();
        for set in [
            FeatureSet::Contextual,
            FeatureSet::ElapsedContextual,
            FeatureSet::Full,
        ] {
            for enc in [ElapsedEncoding::OneHotBuckets, ElapsedEncoding::Scalar] {
                let f = BaselineFeaturizer::new(ds.kind, set, enc);
                let state = AggregationState::new(ds.kind);
                let user = ds.users.iter().find(|u| !u.is_empty()).unwrap();
                let s = &user.sessions[0];
                let v = f.extract(&state, s.timestamp, &s.context);
                assert_eq!(v.len(), f.dims(), "set={set} enc={enc:?}");
            }
        }
    }

    #[test]
    fn contextual_dims_smaller_than_full() {
        let c = BaselineFeaturizer::new(
            DatasetKind::MobileTab,
            FeatureSet::Contextual,
            ElapsedEncoding::Scalar,
        );
        let full = BaselineFeaturizer::new(
            DatasetKind::MobileTab,
            FeatureSet::Full,
            ElapsedEncoding::Scalar,
        );
        assert!(c.dims() < full.dims());
        // With scalar encoding: context 48 + 4 subsets × 2 × 2 + 4×4×3 = 48+16+48.
        assert_eq!(full.dims(), 48 + 16 + 48);
    }

    #[test]
    fn session_examples_use_only_past_information() {
        let ds = tiny_mobiletab();
        let f = BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        // For the first session of every user, all aggregation counts must be
        // zero (no history yet).
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let examples = build_session_examples(&ds, &idx, &f, None);
        let agg_offset = f.dims() - 4 * 4 * 3;
        for &ui in &idx {
            if let Some(first) = examples.iter().find(|e| e.user_index == ui) {
                let agg = &first.features[agg_offset..];
                assert!(
                    agg.iter().all(|&x| x == 0.0),
                    "first session of user {ui} must see empty aggregations"
                );
            }
        }
    }

    #[test]
    fn last_days_filter_restricts_examples_but_keeps_warmup() {
        let ds = tiny_mobiletab();
        let f = BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let all = build_session_examples(&ds, &idx, &f, None);
        let last7 = build_session_examples(&ds, &idx, &f, Some(7));
        assert!(last7.len() < all.len());
        assert!(last7.iter().all(|e| e.day_offset >= ds.num_days - 7));
        // Warm-up: a last-7-days example of an active user should see
        // non-zero aggregation counts even though earlier sessions are not
        // emitted as examples.
        let agg_offset = f.dims() - 4 * 4 * 3;
        let warmed = last7
            .iter()
            .any(|e| e.features[agg_offset..].iter().any(|&x| x > 0.0));
        assert!(warmed, "aggregations must be warmed by pre-cutoff sessions");
    }

    #[test]
    fn timeshift_examples_one_per_user_day() {
        let ds = TimeshiftGenerator::new(TimeshiftConfig {
            num_users: 10,
            ..Default::default()
        })
        .generate();
        let f = BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        let idx: Vec<usize> = (0..ds.users.len()).collect();
        let examples = build_timeshift_examples(&ds, &idx, &f, 6 * 3_600, None);
        assert_eq!(examples.len(), 10 * ds.num_days as usize);
        let last7 = build_timeshift_examples(&ds, &idx, &f, 6 * 3_600, Some(7));
        assert_eq!(last7.len(), 10 * 7);
        assert!(last7.iter().all(|e| e.features.len() == f.dims()));
    }

    #[test]
    #[should_panic(expected = "require the Timeshift dataset")]
    fn timeshift_examples_reject_wrong_dataset() {
        let ds = tiny_mobiletab();
        let f = BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
        let _ = build_timeshift_examples(&ds, &[0], &f, 0, None);
    }
}
