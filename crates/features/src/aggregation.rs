//! Time-window × context-subset aggregation features (paper §5.2).
//!
//! For every combination of a *time window* (last 28 days, 7 days, 1 day,
//! 1 hour) and a *matching subset of context dimensions*, traditional models
//! consume the number of past accesses, the number of past sessions, and
//! their ratio, plus "time elapsed since last access / last session"
//! conditioned on the same subsets. The RNN model exists precisely to make
//! this machinery unnecessary, but reproducing it faithfully matters both
//! for the baseline quality (Table 5 shows the metrics collapse without it)
//! and for the serving-cost comparison (§9: ~20 feature lookups per
//! prediction and potentially thousands of keys per user).

use crate::context::ContextSubset;
use pp_data::schema::{Context, DatasetKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The aggregation time windows used by the paper, in seconds.
pub const WINDOWS_SECS: [i64; 4] = [28 * 86_400, 7 * 86_400, 86_400, 3_600];

/// Human-readable names of [`WINDOWS_SECS`].
pub const WINDOW_NAMES: [&str; 4] = ["28d", "7d", "1d", "1h"];

/// Append-only per-key event log supporting "count since" queries in
/// `O(log n)` via binary search over the sorted timestamps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct KeyedLog {
    timestamps: Vec<i64>,
    cumulative_accesses: Vec<u32>,
    last_access_ts: Option<i64>,
}

impl KeyedLog {
    fn push(&mut self, timestamp: i64, accessed: bool) {
        debug_assert!(
            self.timestamps.last().is_none_or(|&t| t <= timestamp),
            "events must be recorded in chronological order"
        );
        let prev = self.cumulative_accesses.last().copied().unwrap_or(0);
        self.timestamps.push(timestamp);
        self.cumulative_accesses.push(prev + accessed as u32);
        if accessed {
            self.last_access_ts = Some(timestamp);
        }
    }

    fn sessions_since(&self, since: i64) -> usize {
        let idx = self.timestamps.partition_point(|&t| t < since);
        self.timestamps.len() - idx
    }

    fn accesses_since(&self, since: i64) -> usize {
        let idx = self.timestamps.partition_point(|&t| t < since);
        let total = self.cumulative_accesses.last().copied().unwrap_or(0);
        let before = if idx == 0 {
            0
        } else {
            self.cumulative_accesses[idx - 1]
        };
        (total - before) as usize
    }

    fn last_session_ts(&self) -> Option<i64> {
        self.timestamps.last().copied()
    }
}

/// Elapsed-time observations for one context subset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElapsedTimes {
    /// Seconds since the most recent *access* whose context matches the
    /// subset, or `None` if there has been none.
    pub since_last_access: Option<i64>,
    /// Seconds since the most recent *session* whose context matches the
    /// subset, or `None` if there has been none.
    pub since_last_session: Option<i64>,
}

/// Aggregated counts for one (context subset × time window) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowCounts {
    /// Number of sessions inside the window with a matching context.
    pub sessions: usize,
    /// Number of accesses inside the window with a matching context.
    pub accesses: usize,
}

impl WindowCounts {
    /// Access ratio (0 when there are no sessions).
    pub fn ratio(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.accesses as f64 / self.sessions as f64
        }
    }
}

/// Incremental per-user aggregation state.
///
/// Sessions are [`AggregationState::record`]ed in chronological order; at
/// prediction time [`AggregationState::window_counts`] and
/// [`AggregationState::elapsed_times`] answer the aggregation queries for
/// the *current* context. The struct also tracks the bookkeeping the serving
/// cost model needs: how many distinct keys exist for this user and how many
/// key lookups one prediction requires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationState {
    kind: DatasetKind,
    subsets: Vec<ContextSubset>,
    logs: HashMap<(u8, u64), KeyedLog>,
    num_recorded: usize,
}

impl AggregationState {
    /// Creates empty aggregation state for one user of the given dataset.
    pub fn new(kind: DatasetKind) -> Self {
        Self {
            kind,
            subsets: ContextSubset::enumerate(kind),
            logs: HashMap::new(),
            num_recorded: 0,
        }
    }

    /// The dataset family.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of context subsets (including the empty, global subset).
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    /// Number of sessions recorded so far.
    pub fn num_recorded(&self) -> usize {
        self.num_recorded
    }

    /// Number of distinct `(subset, key)` entries this user's aggregations
    /// occupy in a key-value store — the paper notes this "may result in
    /// thousands of unique keys per user".
    pub fn num_storage_keys(&self) -> usize {
        self.logs.len()
    }

    /// Number of key-value lookups required to serve one prediction: one per
    /// (subset × window) cell plus one per subset for the elapsed-time
    /// features (≈ 20 for MobileTab, matching §9).
    pub fn lookups_per_prediction(&self) -> usize {
        self.num_subsets() * WINDOWS_SECS.len() + self.num_subsets()
    }

    /// Records a completed session.
    ///
    /// # Panics
    ///
    /// Panics if the context kind does not match the state's dataset.
    pub fn record(&mut self, timestamp: i64, context: &Context, accessed: bool) {
        assert_eq!(context.kind(), self.kind, "context kind mismatch");
        for (i, subset) in self.subsets.iter().enumerate() {
            let key = (i as u8, subset.key(context));
            self.logs.entry(key).or_default().push(timestamp, accessed);
        }
        self.num_recorded += 1;
    }

    /// Counts for every (subset × window) cell given the current context,
    /// ordered subset-major then window-major (same order as
    /// [`WINDOWS_SECS`]).
    pub fn window_counts(&self, now: i64, context: &Context) -> Vec<WindowCounts> {
        let mut out = Vec::with_capacity(self.num_subsets() * WINDOWS_SECS.len());
        for (i, subset) in self.subsets.iter().enumerate() {
            let key = (i as u8, subset.key(context));
            let log = self.logs.get(&key);
            for &window in &WINDOWS_SECS {
                let since = now - window;
                let (sessions, accesses) = match log {
                    Some(l) => (l.sessions_since(since), l.accesses_since(since)),
                    None => (0, 0),
                };
                out.push(WindowCounts { sessions, accesses });
            }
        }
        out
    }

    /// Elapsed times for every subset given the current context, in subset
    /// order.
    pub fn elapsed_times(&self, now: i64, context: &Context) -> Vec<ElapsedTimes> {
        self.subsets
            .iter()
            .enumerate()
            .map(|(i, subset)| {
                let key = (i as u8, subset.key(context));
                match self.logs.get(&key) {
                    Some(l) => ElapsedTimes {
                        since_last_access: l.last_access_ts.map(|t| (now - t).max(0)),
                        since_last_session: l.last_session_ts().map(|t| (now - t).max(0)),
                    },
                    None => ElapsedTimes {
                        since_last_access: None,
                        since_last_session: None,
                    },
                }
            })
            .collect()
    }

    /// Convenience: the global (empty-subset) access percentage over all
    /// recorded sessions, smoothed with a prior `alpha` as in the paper's
    /// percentage-based baseline (§5.1).
    pub fn smoothed_access_percentage(&self, alpha: f64) -> f64 {
        let global = self.logs.get(&(0, 0));
        let (sessions, accesses) = match global {
            Some(l) => (
                l.timestamps.len(),
                l.cumulative_accesses.last().copied().unwrap_or(0) as usize,
            ),
            None => (0, 0),
        };
        (alpha + accesses as f64) / (sessions as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::Tab;

    fn ctx(unread: u8, tab: Tab) -> Context {
        Context::MobileTab {
            unread_count: unread,
            active_tab: tab,
        }
    }

    #[test]
    fn counts_respect_windows() {
        let mut state = AggregationState::new(DatasetKind::MobileTab);
        let c = ctx(0, Tab::Home);
        // One session 10 days ago (accessed), one 2 days ago (not), one 30
        // minutes ago (accessed).
        let now = 100 * 86_400;
        state.record(now - 10 * 86_400, &c, true);
        state.record(now - 2 * 86_400, &c, false);
        state.record(now - 1_800, &c, true);

        let counts = state.window_counts(now, &c);
        assert_eq!(counts.len(), 4 * 4); // 4 subsets × 4 windows
                                         // Global subset is index 0; windows are [28d, 7d, 1d, 1h].
        assert_eq!(counts[0].sessions, 3);
        assert_eq!(counts[0].accesses, 2);
        assert_eq!(counts[1].sessions, 2); // 7d: excludes the 10-day-old one
        assert_eq!(counts[1].accesses, 1);
        assert_eq!(counts[2].sessions, 1); // 1d
        assert_eq!(counts[3].sessions, 1); // 1h
        assert!((counts[0].ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn context_conditioned_counts_only_match_same_key() {
        let mut state = AggregationState::new(DatasetKind::MobileTab);
        let now = 50 * 86_400;
        state.record(now - 100, &ctx(0, Tab::Home), true);
        state.record(now - 50, &ctx(0, Tab::Messages), true);

        // Query with Home tab: the tab-conditioned subsets should only see
        // the Home session while the global subset sees both.
        let counts = state.window_counts(now, &ctx(0, Tab::Home));
        let global_28d = counts[0];
        assert_eq!(global_28d.sessions, 2);
        // Subset with mask 0b10 (ActiveTab) is the third subset (index 2).
        let tab_28d = counts[2 * 4];
        assert_eq!(tab_28d.sessions, 1);
        assert_eq!(tab_28d.accesses, 1);
    }

    #[test]
    fn elapsed_times_track_access_and_session_separately() {
        let mut state = AggregationState::new(DatasetKind::MobileTab);
        let c = ctx(0, Tab::Home);
        state.record(1_000, &c, true);
        state.record(2_000, &c, false);
        let elapsed = state.elapsed_times(3_000, &c);
        assert_eq!(elapsed.len(), 4);
        assert_eq!(elapsed[0].since_last_access, Some(2_000));
        assert_eq!(elapsed[0].since_last_session, Some(1_000));
    }

    #[test]
    fn empty_state_has_no_elapsed_and_zero_counts() {
        let state = AggregationState::new(DatasetKind::Mpu);
        let c = Context::Mpu {
            screen: pp_data::schema::ScreenState::On,
            app_id: 1,
            last_app_id: 2,
        };
        let counts = state.window_counts(0, &c);
        assert_eq!(counts.len(), 8 * 4);
        assert!(counts.iter().all(|c| c.sessions == 0 && c.accesses == 0));
        let elapsed = state.elapsed_times(0, &c);
        assert!(elapsed
            .iter()
            .all(|e| e.since_last_access.is_none() && e.since_last_session.is_none()));
    }

    #[test]
    fn storage_keys_grow_with_context_diversity() {
        let mut state = AggregationState::new(DatasetKind::MobileTab);
        let now = 86_400;
        state.record(now, &ctx(0, Tab::Home), false);
        let baseline = state.num_storage_keys();
        state.record(now + 1, &ctx(50, Tab::Watch), false);
        assert!(state.num_storage_keys() > baseline);
        assert_eq!(state.num_recorded(), 2);
    }

    #[test]
    fn lookups_per_prediction_matches_paper_order_of_magnitude() {
        let state = AggregationState::new(DatasetKind::MobileTab);
        // 4 subsets × 4 windows + 4 elapsed lookups = 20, the number quoted
        // in §9 for MobileTab.
        assert_eq!(state.lookups_per_prediction(), 20);
    }

    #[test]
    fn smoothed_access_percentage_matches_formula() {
        let mut state = AggregationState::new(DatasetKind::Timeshift);
        let c = Context::Timeshift { is_peak: false };
        // No history: alpha / 1.
        assert!((state.smoothed_access_percentage(0.1) - 0.1).abs() < 1e-12);
        state.record(10, &c, true);
        state.record(20, &c, false);
        state.record(30, &c, true);
        // (0.1 + 2) / 4
        assert!((state.smoothed_access_percentage(0.1) - 2.1 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "context kind mismatch")]
    fn wrong_kind_panics() {
        let mut state = AggregationState::new(DatasetKind::Timeshift);
        state.record(0, &ctx(0, Tab::Home), true);
    }
}
