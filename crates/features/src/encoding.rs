//! Low-level encoding primitives shared by all featurizers: one-hot
//! encoding, categorical hashing, and the paper's log-bucketing transform
//! for elapsed times.

/// Number of buckets used by the elapsed-time transform (paper §5.3:
/// "bucketize time elapsed features into 50 buckets").
pub const TIME_BUCKETS: usize = 50;

/// Modulus used when hashing high-cardinality categorical values
/// (paper §5.2: "hashing and taking the remainder modulo 97").
pub const HASH_MODULUS: usize = 97;

/// Appends a one-hot encoding of `index` over `size` categories to `out`.
///
/// # Panics
///
/// Panics if `index >= size`.
pub fn push_one_hot(out: &mut Vec<f32>, index: usize, size: usize) {
    assert!(index < size, "one-hot index {index} out of range {size}");
    let start = out.len();
    out.resize(start + size, 0.0);
    out[start + index] = 1.0;
}

/// One-hot encodes `index` over `size` categories into a fresh vector.
///
/// # Panics
///
/// Panics if `index >= size`.
pub fn one_hot(index: usize, size: usize) -> Vec<f32> {
    let mut v = Vec::with_capacity(size);
    push_one_hot(&mut v, index, size);
    v
}

/// The paper's elapsed-time bucketing transform: `⌊(50/15)·ln(t)⌋`, clamped
/// to `[0, TIME_BUCKETS)`. `t` is a duration in seconds; non-positive
/// durations map to bucket 0. The largest representable duration (30 days ≈
/// e^14.76 s) lands just below bucket 49, matching the paper's remark.
pub fn time_bucket(elapsed_secs: i64) -> usize {
    if elapsed_secs <= 1 {
        return 0;
    }
    let b = (50.0 / 15.0 * (elapsed_secs as f64).ln()).floor();
    (b.max(0.0) as usize).min(TIME_BUCKETS - 1)
}

/// Continuous form of the elapsed-time transform used where a scalar is more
/// convenient than a one-hot (e.g. GBDT inputs): `ln(1 + t)` normalized by
/// `ln(1 + 30 days)` so the output lies in `[0, ~1]`.
pub fn log_elapsed_normalized(elapsed_secs: i64) -> f32 {
    let t = elapsed_secs.max(0) as f64;
    let max = (30.0 * 86_400.0_f64 + 1.0).ln();
    ((t + 1.0).ln() / max) as f32
}

/// Hashes an arbitrary string-like categorical value into `[0, HASH_MODULUS)`
/// with a stable FNV-1a hash, mirroring the paper's "hash then mod 97" step
/// for high-cardinality categoricals (tab names, application names).
pub fn hash_category(value: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in value.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    (hash % HASH_MODULUS as u64) as usize
}

/// Buckets an unread/notification badge count (0–99) into a small number of
/// ranges. Returns an index in `[0, UNREAD_BUCKETS)`.
pub fn unread_bucket(count: u8) -> usize {
    match count {
        0 => 0,
        1 => 1,
        2..=3 => 2,
        4..=6 => 3,
        7..=10 => 4,
        11..=20 => 5,
        21..=50 => 6,
        _ => 7,
    }
}

/// Number of buckets produced by [`unread_bucket`].
pub const UNREAD_BUCKETS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_basics() {
        assert_eq!(one_hot(0, 3), vec![1.0, 0.0, 0.0]);
        assert_eq!(one_hot(2, 3), vec![0.0, 0.0, 1.0]);
        let mut v = vec![9.0];
        push_one_hot(&mut v, 1, 2);
        assert_eq!(v, vec![9.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_out_of_range_panics() {
        let _ = one_hot(3, 3);
    }

    #[test]
    fn time_bucket_monotone_and_bounded() {
        assert_eq!(time_bucket(0), 0);
        assert_eq!(time_bucket(-5), 0);
        assert_eq!(time_bucket(1), 0);
        let mut prev = 0;
        for exp in 1..20 {
            let t = 1i64 << exp;
            let b = time_bucket(t);
            assert!(b >= prev, "bucket must be monotone in elapsed time");
            assert!(b < TIME_BUCKETS);
            prev = b;
        }
        // 30 days should land in the top couple of buckets but not overflow.
        let b30 = time_bucket(30 * 86_400);
        assert!((47..TIME_BUCKETS).contains(&b30), "30d bucket = {b30}");
        // A year still clamps to the last bucket.
        assert_eq!(time_bucket(365 * 86_400), TIME_BUCKETS - 1);
    }

    #[test]
    fn time_bucket_matches_paper_formula() {
        // ⌊(50/15)·ln(3600)⌋ = ⌊27.3⌋ = 27 for one hour.
        assert_eq!(time_bucket(3_600), 27);
        // One day: ⌊(50/15)·ln(86400)⌋ = ⌊37.9⌋ = 37.
        assert_eq!(time_bucket(86_400), 37);
    }

    #[test]
    fn log_elapsed_normalized_range() {
        assert_eq!(log_elapsed_normalized(0), 0.0);
        assert!(log_elapsed_normalized(30 * 86_400) <= 1.001);
        assert!(log_elapsed_normalized(60) < log_elapsed_normalized(3_600));
    }

    #[test]
    fn hash_category_stable_and_in_range() {
        let a = hash_category("Home");
        assert_eq!(a, hash_category("Home"));
        assert!(a < HASH_MODULUS);
        assert_ne!(hash_category("Home"), hash_category("Messages"));
    }

    #[test]
    fn unread_buckets_cover_range() {
        assert_eq!(unread_bucket(0), 0);
        assert_eq!(unread_bucket(1), 1);
        assert_eq!(unread_bucket(3), 2);
        assert_eq!(unread_bucket(5), 3);
        assert_eq!(unread_bucket(9), 4);
        assert_eq!(unread_bucket(15), 5);
        assert_eq!(unread_bucket(40), 6);
        assert_eq!(unread_bucket(99), 7);
        for c in 0u8..=99 {
            assert!(unread_bucket(c) < UNREAD_BUCKETS);
        }
        // Monotone.
        for c in 0u8..99 {
            assert!(unread_bucket(c) <= unread_bucket(c + 1));
        }
    }
}
