//! Cached `pp-obs` instrumentation handles for the precompute loop.
//!
//! Per-activity metrics are suffixed with [`Activity::slug`](crate::Activity::slug)
//! (`precompute.admitted.mobile_tab`, …) so a snapshot stays greppable
//! without labels. Structured events (threshold moves, budget exhaustion,
//! eviction storms, recalibration windows) go through the registry's
//! [`pp_obs::EventLog`]; see `docs/observability.md` for the catalogue.

use crate::activity::ActivityMap;
use pp_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::{Arc, OnceLock};

/// The precompute layer's metric handles.
#[derive(Debug, Clone)]
pub struct PrecomputeObs {
    /// `precompute.admitted.<slug>` — prefetches admitted per activity.
    pub admitted: ActivityMap<Arc<Counter>>,
    /// `precompute.denied.<slug>` — admission rejections per activity
    /// (budget, inflight, and probability-floor denials combined).
    pub denied: ActivityMap<Arc<Counter>>,
    /// `precompute.bucket_level_units` — token-bucket level after the most
    /// recent wave, in cost units.
    pub bucket_level_units: Arc<Gauge>,
    /// `precompute.admission_ns` — time spent admitting one wave.
    pub admission_ns: Arc<Histogram>,
    /// `precompute.wave_size` — prefetch candidates per admitted wave.
    pub wave_size: Arc<Histogram>,
    /// `precompute.cache_op_ns` — latency of individual cache operations
    /// (insert / get / take).
    pub cache_op_ns: Arc<Histogram>,
    /// `precompute.cache.hits` — cache reads that found a live payload.
    pub cache_hits: Arc<Counter>,
    /// `precompute.cache.misses` — cache reads that found nothing.
    pub cache_misses: Arc<Counter>,
    /// `precompute.cache.expired` — reads that found only a TTL-expired
    /// payload.
    pub cache_expired: Arc<Counter>,
    /// `precompute.cache.evicted` — payloads LRU-evicted by inserts.
    pub cache_evicted: Arc<Counter>,
    /// `precompute.window_precision.<slug>` — precision of the most recent
    /// closed controller window per activity.
    pub window_precision: ActivityMap<Arc<Gauge>>,
    /// `precompute.threshold.<slug>` — current decision threshold per
    /// activity (the trajectory the adaptive controller walks).
    pub threshold: ActivityMap<Arc<Gauge>>,
}

impl PrecomputeObs {
    /// Registers (or re-resolves) the precompute metrics on `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        let per_activity = |prefix: &str| {
            ActivityMap::from_fn(|a| registry.counter(&format!("{prefix}.{}", a.slug())))
        };
        let per_activity_gauge = |prefix: &str| {
            ActivityMap::from_fn(|a| registry.gauge(&format!("{prefix}.{}", a.slug())))
        };
        Self {
            admitted: per_activity("precompute.admitted"),
            denied: per_activity("precompute.denied"),
            bucket_level_units: registry.gauge("precompute.bucket_level_units"),
            admission_ns: registry.histogram("precompute.admission_ns"),
            wave_size: registry.histogram("precompute.wave_size"),
            cache_op_ns: registry.histogram("precompute.cache_op_ns"),
            cache_hits: registry.counter("precompute.cache.hits"),
            cache_misses: registry.counter("precompute.cache.misses"),
            cache_expired: registry.counter("precompute.cache.expired"),
            cache_evicted: registry.counter("precompute.cache.evicted"),
            window_precision: per_activity_gauge("precompute.window_precision"),
            threshold: per_activity_gauge("precompute.threshold"),
        }
    }

    /// The handles bound to [`MetricsRegistry::global`], resolved once.
    #[must_use]
    pub fn global() -> &'static PrecomputeObs {
        static GLOBAL: OnceLock<PrecomputeObs> = OnceLock::new();
        GLOBAL.get_or_init(|| Self::register(MetricsRegistry::global()))
    }
}
