//! Ground-truth accounting for precompute decisions.
//!
//! Every decision is eventually resolved against what the session actually
//! did, landing in exactly one of five buckets — the conservation property
//! the whole measurement story rests on: *decisions recorded = outcomes
//! counted + decisions still pending*. From the buckets fall out the live
//! metrics the paper optimizes: precision (successful prefetches over all
//! prefetches), recall (successful prefetches over all accesses) and the
//! waste ratio.

use crate::activity::{Activity, ActivityMap};
use crate::decision::{Action, Decision};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// How one resolved decision turned out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Prefetched, the user accessed, and the payload was served fresh.
    Hit,
    /// Prefetched but the user never accessed — pure waste.
    WastedPrefetch,
    /// Prefetched and the user accessed, but the payload had expired or
    /// been evicted — the work was spent *and* the access missed.
    ExpiredPrefetch,
    /// Not prefetched (skipped or denied) and the user accessed.
    MissedAccess,
    /// Not prefetched and the user did not access.
    CorrectSkip,
}

/// Outcome bucket totals.
///
/// # Examples
///
/// ```
/// use pp_precompute::OutcomeCounts;
///
/// let counts = OutcomeCounts {
///     hits: 6,
///     wasted_prefetches: 3,
///     expired_prefetches: 1,
///     missed_accesses: 2,
///     correct_skips: 8,
/// };
/// assert_eq!(counts.resolved(), 20);
/// assert_eq!(counts.prefetches_resolved(), 10);
/// assert_eq!(counts.accesses(), 9);
/// assert_eq!(counts.precision(), Some(0.6));
/// assert_eq!(counts.recall(), Some(6.0 / 9.0));
/// assert_eq!(counts.waste_ratio(), Some(0.3));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Successful prefetches.
    pub hits: u64,
    /// Prefetches for sessions without an access.
    pub wasted_prefetches: u64,
    /// Prefetches whose payload was stale or gone at access time.
    pub expired_prefetches: u64,
    /// Accesses that had no prefetch.
    pub missed_accesses: u64,
    /// Correctly skipped sessions.
    pub correct_skips: u64,
}

impl OutcomeCounts {
    /// Total decisions resolved.
    pub fn resolved(&self) -> u64 {
        self.hits
            + self.wasted_prefetches
            + self.expired_prefetches
            + self.missed_accesses
            + self.correct_skips
    }

    /// Prefetch decisions resolved (executed prefetches only).
    pub fn prefetches_resolved(&self) -> u64 {
        self.hits + self.wasted_prefetches + self.expired_prefetches
    }

    /// Sessions that actually accessed the activity.
    pub fn accesses(&self) -> u64 {
        self.hits + self.expired_prefetches + self.missed_accesses
    }

    /// Live precision: successful prefetches over executed prefetches
    /// (`None` until a prefetch has resolved).
    pub fn precision(&self) -> Option<f64> {
        let prefetches = self.prefetches_resolved();
        (prefetches > 0).then(|| self.hits as f64 / prefetches as f64)
    }

    /// Live recall: successful prefetches over accesses (`None` until an
    /// access has resolved).
    pub fn recall(&self) -> Option<f64> {
        let accesses = self.accesses();
        (accesses > 0).then(|| self.hits as f64 / accesses as f64)
    }

    /// Fraction of executed prefetches that were pure waste.
    pub fn waste_ratio(&self) -> Option<f64> {
        let prefetches = self.prefetches_resolved();
        (prefetches > 0).then(|| self.wasted_prefetches as f64 / prefetches as f64)
    }

    /// Adds another bucket total into this one (aggregating activities).
    pub fn accumulate(&mut self, other: &OutcomeCounts) {
        self.hits += other.hits;
        self.wasted_prefetches += other.wasted_prefetches;
        self.expired_prefetches += other.expired_prefetches;
        self.missed_accesses += other.missed_accesses;
        self.correct_skips += other.correct_skips;
    }

    fn bump(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Hit => self.hits += 1,
            Outcome::WastedPrefetch => self.wasted_prefetches += 1,
            Outcome::ExpiredPrefetch => self.expired_prefetches += 1,
            Outcome::MissedAccess => self.missed_accesses += 1,
            Outcome::CorrectSkip => self.correct_skips += 1,
        }
    }
}

/// One resolved decision reduced to the (score, label) pair a calibration
/// step needs: the predicted probability the decision was taken at, and
/// whether the session actually accessed the activity. Resolutions of every
/// action kind contribute — skips and denials label the below-threshold
/// score range, which is exactly what a recalibration fit must see to place
/// the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolvedSample {
    /// Predicted access probability at decision time.
    pub score: f64,
    /// Ground truth: did the session access the activity?
    pub label: bool,
}

/// Most recent resolutions kept **per activity** for
/// [`OutcomeTracker::drain_samples`] when nobody drains (bounded so an
/// un-drained tracker cannot grow forever). Anything waiting on a sample
/// count must trigger at or below this bound —
/// [`OutcomeTracker::samples_len_for`] can never exceed it.
pub const MAX_RETAINED_SAMPLES: usize = 8_192;

/// Resolves decisions against observed session outcomes, bucketed per
/// [`Activity`] (the aggregate view sums the buckets).
///
/// # Examples
///
/// ```
/// use pp_data::schema::UserId;
/// use pp_precompute::{Action, Activity, Decision, Outcome, OutcomeTracker};
///
/// let mut tracker = OutcomeTracker::new();
/// tracker.record(Decision {
///     user_id: UserId(7),
///     activity: Activity::Timeshift,
///     timestamp: 0,
///     probability: 0.8,
///     threshold: 0.5,
///     action: Action::Prefetch,
/// });
/// // The session accessed and the payload was served fresh: a hit.
/// let outcome = tracker.resolve(UserId(7), true, true).unwrap();
/// assert_eq!(outcome, Outcome::Hit);
/// assert_eq!(tracker.counts_for(Activity::Timeshift).hits, 1);
/// assert_eq!(tracker.counts().hits, 1);
/// assert!(tracker.check_conservation().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct OutcomeTracker {
    /// The outstanding (unresolved) decision per user.
    pending: HashMap<u64, Decision>,
    counts: ActivityMap<OutcomeCounts>,
    recorded: u64,
    /// (score, label) pairs of recent resolutions per activity, oldest
    /// first.
    samples: ActivityMap<VecDeque<ResolvedSample>>,
}

impl OutcomeTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a freshly taken decision as pending resolution.
    ///
    /// # Panics
    ///
    /// Panics if the user already has an unresolved decision — the caller
    /// must resolve (or [`OutcomeTracker::abandon`]) the previous session
    /// first, otherwise decisions would leak and conservation would break.
    pub fn record(&mut self, decision: Decision) {
        let previous = self.pending.insert(decision.user_id.0, decision);
        assert!(
            previous.is_none(),
            "user {} already has an unresolved decision",
            decision.user_id
        );
        self.recorded += 1;
    }

    /// The pending decision for `user`, if any.
    pub fn pending_decision(&self, user: pp_data::schema::UserId) -> Option<Decision> {
        self.pending.get(&user.0).copied()
    }

    /// Resolves the pending decision for `user` against the session's
    /// ground truth: whether the activity was `accessed`, and whether a
    /// fresh `payload_served` came out of the prefetch cache. Returns
    /// `None` when the user has no pending decision.
    pub fn resolve(
        &mut self,
        user: pp_data::schema::UserId,
        accessed: bool,
        payload_served: bool,
    ) -> Option<Outcome> {
        let decision = self.pending.remove(&user.0)?;
        let outcome = match decision.action {
            Action::Prefetch => {
                if accessed && payload_served {
                    Outcome::Hit
                } else if accessed {
                    Outcome::ExpiredPrefetch
                } else {
                    Outcome::WastedPrefetch
                }
            }
            Action::Skip | Action::Denied => {
                if accessed {
                    Outcome::MissedAccess
                } else {
                    Outcome::CorrectSkip
                }
            }
        };
        self.counts[decision.activity].bump(outcome);
        let samples = &mut self.samples[decision.activity];
        samples.push_back(ResolvedSample {
            score: decision.probability,
            label: accessed,
        });
        if samples.len() > MAX_RETAINED_SAMPLES {
            samples.pop_front();
        }
        Some(outcome)
    }

    /// Resolves the pending decision for `user` as a session that ended
    /// without the ground truth ever arriving (treated as not accessed).
    /// Returns the outcome, or `None` when nothing was pending.
    pub fn abandon(&mut self, user: pp_data::schema::UserId) -> Option<Outcome> {
        self.resolve(user, false, false)
    }

    /// Outcome totals so far, summed across activities.
    pub fn counts(&self) -> OutcomeCounts {
        let mut total = OutcomeCounts::default();
        for counts in self.counts.values() {
            total.accumulate(counts);
        }
        total
    }

    /// Outcome totals for one activity — the per-activity half of the
    /// shared budget's spend/hit ledger (the spend half lives in
    /// [`crate::scheduler::PrefetchScheduler::activity_stats`]).
    pub fn counts_for(&self, activity: Activity) -> OutcomeCounts {
        self.counts[activity]
    }

    /// Decisions recorded so far (resolved or pending).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Decisions still awaiting resolution.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of (score, label) samples awaiting a drain, across all
    /// activities.
    pub fn samples_len(&self) -> usize {
        self.samples
            .values()
            .map(std::collections::VecDeque::len)
            .sum()
    }

    /// Number of `activity` (score, label) samples awaiting a drain.
    pub fn samples_len_for(&self, activity: Activity) -> usize {
        self.samples[activity].len()
    }

    /// Drains the (score, label) pairs of every resolution since the last
    /// drain (bounded to the most recent 8 192 per activity), oldest first
    /// within each activity — the window of labelled observations a
    /// [`pp_core::PrecomputePolicy::recalibrate`] step consumes. In a
    /// multi-activity deployment prefer
    /// [`OutcomeTracker::drain_samples_for`], which keeps the activities'
    /// calibration windows separate.
    pub fn drain_samples(&mut self) -> Vec<ResolvedSample> {
        let mut all = Vec::with_capacity(self.samples_len());
        for activity in Activity::ALL {
            all.extend(self.samples[activity].drain(..));
        }
        all
    }

    /// Drains the (score, label) pairs of `activity`'s resolutions since
    /// the last drain, oldest first.
    pub fn drain_samples_for(&mut self, activity: Activity) -> Vec<ResolvedSample> {
        self.samples[activity].drain(..).collect()
    }

    /// Checks conservation: every recorded decision is either resolved into
    /// exactly one bucket or still pending — and the per-activity buckets
    /// sum to the aggregate by construction.
    pub fn check_conservation(&self) -> Result<(), String> {
        let accounted = self.counts().resolved() + self.pending.len() as u64;
        if accounted == self.recorded {
            Ok(())
        } else {
            Err(format!(
                "conservation violated: {} recorded but {} accounted (resolved {} + pending {})",
                self.recorded,
                accounted,
                self.counts().resolved(),
                self.pending.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::UserId;
    use proptest::prelude::*;

    fn decision(id: u64, action: Action) -> Decision {
        Decision {
            user_id: UserId(id),
            activity: Activity::MobileTab,
            timestamp: 0,
            probability: 0.5,
            threshold: 0.4,
            action,
        }
    }

    #[test]
    fn all_five_buckets_are_reachable() {
        let mut t = OutcomeTracker::new();
        t.record(decision(1, Action::Prefetch));
        t.record(decision(2, Action::Prefetch));
        t.record(decision(3, Action::Prefetch));
        t.record(decision(4, Action::Skip));
        t.record(decision(5, Action::Denied));
        assert_eq!(t.resolve(UserId(1), true, true), Some(Outcome::Hit));
        assert_eq!(
            t.resolve(UserId(2), false, false),
            Some(Outcome::WastedPrefetch)
        );
        assert_eq!(
            t.resolve(UserId(3), true, false),
            Some(Outcome::ExpiredPrefetch)
        );
        assert_eq!(
            t.resolve(UserId(4), true, false),
            Some(Outcome::MissedAccess)
        );
        assert_eq!(
            t.resolve(UserId(5), false, false),
            Some(Outcome::CorrectSkip)
        );
        let counts = t.counts();
        assert_eq!(counts.resolved(), 5);
        assert_eq!(counts.prefetches_resolved(), 3);
        assert_eq!(counts.accesses(), 3);
        assert!((counts.precision().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((counts.recall().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((counts.waste_ratio().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!(t.check_conservation().is_ok());
    }

    #[test]
    fn resolve_without_pending_is_none_and_abandon_counts_as_no_access() {
        let mut t = OutcomeTracker::new();
        assert!(t.resolve(UserId(1), true, true).is_none());
        t.record(decision(1, Action::Prefetch));
        assert_eq!(t.abandon(UserId(1)), Some(Outcome::WastedPrefetch));
        assert!(t.check_conservation().is_ok());
    }

    #[test]
    #[should_panic(expected = "already has an unresolved decision")]
    fn double_record_panics() {
        let mut t = OutcomeTracker::new();
        t.record(decision(1, Action::Skip));
        t.record(decision(1, Action::Skip));
    }

    #[test]
    fn resolutions_accumulate_drainable_score_label_samples() {
        let mut t = OutcomeTracker::new();
        t.record(Decision {
            probability: 0.8,
            ..decision(1, Action::Prefetch)
        });
        t.record(Decision {
            probability: 0.2,
            ..decision(2, Action::Skip)
        });
        t.record(Decision {
            probability: 0.7,
            ..decision(3, Action::Denied)
        });
        assert_eq!(t.samples_len(), 0);
        t.resolve(UserId(1), true, true);
        t.resolve(UserId(2), false, false);
        t.resolve(UserId(3), true, false);
        assert_eq!(t.samples_len(), 3);
        let samples = t.drain_samples();
        // Every action kind contributes, in resolution order, carrying the
        // decision-time score and the ground-truth access label.
        assert_eq!(
            samples,
            vec![
                ResolvedSample {
                    score: 0.8,
                    label: true
                },
                ResolvedSample {
                    score: 0.2,
                    label: false
                },
                ResolvedSample {
                    score: 0.7,
                    label: true
                },
            ]
        );
        assert_eq!(t.samples_len(), 0);
        assert!(t.drain_samples().is_empty());
        assert!(t.check_conservation().is_ok());
    }

    #[test]
    fn per_activity_buckets_split_and_sum_to_the_aggregate() {
        let mut t = OutcomeTracker::new();
        for (id, activity, action) in [
            (1, Activity::MobileTab, Action::Prefetch),
            (2, Activity::Timeshift, Action::Prefetch),
            (3, Activity::Mpu, Action::Skip),
            (4, Activity::Timeshift, Action::Skip),
        ] {
            t.record(Decision {
                activity,
                ..decision(id, action)
            });
        }
        t.resolve(UserId(1), true, true); // MobileTab hit
        t.resolve(UserId(2), false, false); // Timeshift waste
        t.resolve(UserId(3), true, false); // MPU missed access
        t.resolve(UserId(4), false, false); // Timeshift correct skip
        assert_eq!(t.counts_for(Activity::MobileTab).hits, 1);
        assert_eq!(t.counts_for(Activity::Timeshift).wasted_prefetches, 1);
        assert_eq!(t.counts_for(Activity::Timeshift).correct_skips, 1);
        assert_eq!(t.counts_for(Activity::Mpu).missed_accesses, 1);
        assert_eq!(t.counts().resolved(), 4);
        assert!(t.check_conservation().is_ok());
        // Samples drain per activity, keeping calibration windows separate.
        assert_eq!(t.samples_len(), 4);
        assert_eq!(t.samples_len_for(Activity::Timeshift), 2);
        let timeshift = t.drain_samples_for(Activity::Timeshift);
        assert_eq!(timeshift.len(), 2);
        assert_eq!(t.samples_len(), 2);
        // The aggregate drain sweeps what is left.
        assert_eq!(t.drain_samples().len(), 2);
        assert_eq!(t.samples_len(), 0);
    }

    #[test]
    fn empty_counts_have_no_rates() {
        let counts = OutcomeCounts::default();
        assert!(counts.precision().is_none());
        assert!(counts.recall().is_none());
        assert!(counts.waste_ratio().is_none());
    }

    proptest! {
        /// The conservation property from the acceptance criteria: under an
        /// arbitrary interleaving of decisions and (eventual) resolutions,
        /// every decision lands in exactly one bucket.
        #[test]
        fn accounting_exactly_balances_decisions(
            actions in prop::collection::vec(0u8..3, 1..200),
            accessed in prop::collection::vec(any::<bool>(), 1..200),
            served in prop::collection::vec(any::<bool>(), 1..200),
            resolve_now in prop::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut t = OutcomeTracker::new();
            let n = actions
                .len()
                .min(accessed.len())
                .min(served.len())
                .min(resolve_now.len());
            for i in 0..n {
                let action = match actions[i] {
                    0 => Action::Prefetch,
                    1 => Action::Skip,
                    _ => Action::Denied,
                };
                // Distinct user per decision; resolution order interleaves.
                t.record(decision(i as u64, action));
                prop_assert!(t.check_conservation().is_ok());
                if resolve_now[i] {
                    let outcome = t.resolve(UserId(i as u64), accessed[i], served[i]);
                    prop_assert!(outcome.is_some());
                    prop_assert!(t.check_conservation().is_ok());
                }
            }
            // Drain the stragglers.
            for i in 0..n {
                let _ = t.resolve(UserId(i as u64), accessed[i], served[i]);
            }
            prop_assert_eq!(t.pending_len(), 0);
            prop_assert_eq!(t.counts().resolved(), n as u64);
            prop_assert_eq!(t.recorded(), n as u64);
            prop_assert!(t.check_conservation().is_ok());
            // Per-class consistency: prefetch buckets only from prefetches.
            let prefetch_decisions = actions[..n]
                .iter()
                .filter(|&&a| a == 0)
                .count() as u64;
            prop_assert_eq!(t.counts().prefetches_resolved(), prefetch_decisions);
        }
    }
}
