//! The assembled subsystem: predict → decide → admit → prefetch → resolve
//! → adapt.
//!
//! [`PrecomputeSystem`] is driven by two calls per session:
//!
//! 1. [`PrecomputeSystem::handle_scores`] at session start, with the wave
//!    of batched predictions the serving engine just produced — applies the
//!    policy, asks the budget scheduler for admission, executes admitted
//!    prefetches into the cache, and registers every decision as pending;
//! 2. [`PrecomputeSystem::resolve_session`] when the session's ground
//!    truth is known — consumes the cached payload (fresh or not), resolves
//!    the decision into its outcome bucket, releases the inflight slot, and
//!    feeds the adaptive controller, which may move the threshold for
//!    subsequent decisions.
//!
//! The two invariants the acceptance criteria name are checkable at any
//! point via [`PrecomputeSystem::check_invariants`]: outcome conservation
//! and a never-overdrawn budget.

use crate::adaptive::{AdaptiveThresholdController, ControllerConfig};
use crate::cache::{CacheConfig, CacheStats, PrefetchCache};
use crate::decision::{Action, Decision, DecisionEngine, DecisionStats};
use crate::outcome::{Outcome, OutcomeCounts, OutcomeTracker};
use crate::scheduler::{AdmitResult, BudgetConfig, PrefetchScheduler, SchedulerBudgetStats};
use bytes::Bytes;
use pp_data::schema::UserId;
use pp_serving::Prediction;
use serde::{Deserialize, Serialize};

/// Configuration of the assembled subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Threshold the decision engine starts from (the offline-calibrated
    /// operating point).
    pub initial_threshold: f64,
    /// Budget scheduler configuration.
    pub budget: BudgetConfig,
    /// Prefetch cache configuration.
    pub cache: CacheConfig,
    /// Adaptive threshold controller configuration.
    pub controller: ControllerConfig,
    /// Size of the payload materialized per prefetch.
    pub payload_bytes: usize,
}

/// A point-in-time report of everything the subsystem measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Decision-engine counters.
    pub decisions: DecisionStats,
    /// Prefetches denied admission (budget or inflight).
    pub denied: u64,
    /// Outcome bucket totals.
    pub outcomes: OutcomeCounts,
    /// Live precision over executed prefetches, if any resolved.
    pub precision: Option<f64>,
    /// Live recall over observed accesses, if any resolved.
    pub recall: Option<f64>,
    /// Live waste ratio over executed prefetches, if any resolved.
    pub waste_ratio: Option<f64>,
    /// Budget scheduler counters.
    pub budget: SchedulerBudgetStats,
    /// Prefetch cache counters.
    pub cache: CacheStats,
    /// Threshold currently in force.
    pub threshold: f64,
    /// Adjustment windows the controller has closed.
    pub controller_windows: u64,
}

/// The full budget-aware precompute execution subsystem.
#[derive(Debug)]
pub struct PrecomputeSystem {
    engine: DecisionEngine,
    scheduler: PrefetchScheduler,
    cache: PrefetchCache,
    tracker: OutcomeTracker,
    controller: AdaptiveThresholdController,
    payload_bytes: usize,
}

impl PrecomputeSystem {
    /// Builds the subsystem from `config`.
    ///
    /// # Panics
    ///
    /// Panics when any component configuration is invalid (see the
    /// component constructors).
    pub fn new(config: SystemConfig) -> Self {
        let controller =
            AdaptiveThresholdController::new(config.initial_threshold, config.controller);
        Self {
            engine: DecisionEngine::new(controller.policy()),
            scheduler: PrefetchScheduler::new(config.budget),
            cache: PrefetchCache::new(config.cache),
            tracker: OutcomeTracker::new(),
            controller,
            payload_bytes: config.payload_bytes,
        }
    }

    /// Handles one wave of batched predictions at traffic time `now`:
    /// decides per prediction, admits prefetches against the budget,
    /// executes admitted prefetches into the cache, and registers every
    /// decision for outcome resolution. Returns the decisions in input
    /// order.
    ///
    /// A user whose previous session never resolved is resolved first as
    /// "ended without access" so decisions cannot leak.
    pub fn handle_scores(&mut self, predictions: &[Prediction], now: i64) -> Vec<Decision> {
        predictions
            .iter()
            .map(|prediction| {
                if self.tracker.pending_decision(prediction.user_id).is_some() {
                    let _ = self.resolve_session(prediction.user_id, now, false);
                }
                let mut decision = self.engine.decide(prediction, now);
                if decision.action == Action::Prefetch {
                    match self.scheduler.try_admit(now) {
                        AdmitResult::Admitted => {
                            self.cache.insert(
                                decision.user_id,
                                Bytes::from(vec![0u8; self.payload_bytes]),
                                now,
                            );
                        }
                        AdmitResult::DeniedBudget | AdmitResult::DeniedInflight => {
                            decision.action = Action::Denied;
                        }
                    }
                }
                self.tracker.record(decision);
                decision
            })
            .collect()
    }

    /// Resolves the pending decision for `user` against the session's
    /// ground truth at time `now`. Consumes the cached payload (a prefetch
    /// that resolves — used or not — frees its cache slot and its inflight
    /// budget slot), classifies the outcome, and feeds the adaptive
    /// controller. Returns `None` when the user has no pending decision.
    pub fn resolve_session(&mut self, user: UserId, now: i64, accessed: bool) -> Option<Outcome> {
        let decision = self.tracker.pending_decision(user)?;
        let payload_served = if decision.action == Action::Prefetch {
            let payload = self.cache.take(user, now);
            self.scheduler.complete_one();
            payload.is_some()
        } else {
            false
        };
        let outcome = self
            .tracker
            .resolve(user, accessed, payload_served)
            .expect("pending decision just observed");
        if self.controller.observe(outcome).is_some() {
            self.engine.set_policy(self.controller.policy());
        }
        Some(outcome)
    }

    /// The decision engine (e.g. for
    /// [`DecisionEngine::score_and_decide`]-style wiring or inspection).
    pub fn decision_engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The budget scheduler.
    pub fn scheduler(&self) -> &PrefetchScheduler {
        &self.scheduler
    }

    /// The prefetch cache.
    pub fn cache(&self) -> &PrefetchCache {
        &self.cache
    }

    /// The outcome tracker.
    pub fn tracker(&self) -> &OutcomeTracker {
        &self.tracker
    }

    /// The adaptive controller.
    pub fn controller(&self) -> &AdaptiveThresholdController {
        &self.controller
    }

    /// Snapshot of every live metric.
    pub fn report(&self) -> SystemReport {
        let counts = self.tracker.counts();
        let budget = self.scheduler.stats();
        SystemReport {
            decisions: self.engine.stats(),
            denied: budget.denied_budget + budget.denied_inflight,
            outcomes: counts,
            precision: counts.precision(),
            recall: counts.recall(),
            waste_ratio: counts.waste_ratio(),
            budget,
            cache: self.cache.stats(),
            threshold: self.controller.threshold(),
            controller_windows: self.controller.windows_closed(),
        }
    }

    /// Checks the subsystem invariants: outcome conservation, budget never
    /// overdrawn, and cross-component books (admitted = executed prefetch
    /// decisions = cache insertions).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tracker.check_conservation()?;
        self.scheduler.check_invariants()?;
        let admitted = self.scheduler.stats().admitted;
        let inserted = self.cache.stats().insertions;
        if admitted != inserted {
            return Err(format!(
                "admitted {admitted} prefetches but inserted {inserted} payloads"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config() -> SystemConfig {
        SystemConfig {
            initial_threshold: 0.5,
            budget: BudgetConfig {
                capacity_units: 400.0,
                refill_units_per_sec: 50.0,
                cost_per_prefetch_units: 10.0,
                max_inflight: 64,
            },
            cache: CacheConfig {
                shards: 4,
                capacity_per_shard: 256,
                ttl_secs: 600,
            },
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 100,
                gain: 0.4,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            payload_bytes: 64,
        }
    }

    fn prediction(id: u64, p: f64) -> Prediction {
        Prediction {
            user_id: UserId(id),
            probability: p,
        }
    }

    #[test]
    fn end_to_end_wave_resolves_with_conservation() {
        let mut system = PrecomputeSystem::new(config());
        let wave: Vec<Prediction> = (0..10)
            .map(|i| prediction(i, if i % 2 == 0 { 0.9 } else { 0.1 }))
            .collect();
        let decisions = system.handle_scores(&wave, 1_000);
        assert_eq!(decisions.len(), 10);
        assert_eq!(
            decisions
                .iter()
                .filter(|d| d.action == Action::Prefetch)
                .count(),
            5
        );
        system.check_invariants().unwrap();
        // Resolve: even users (prefetched) accessed, odd did not.
        for i in 0..10u64 {
            let outcome = system
                .resolve_session(UserId(i), 1_010, i % 2 == 0)
                .unwrap();
            match i % 2 {
                0 => assert_eq!(outcome, Outcome::Hit),
                _ => assert_eq!(outcome, Outcome::CorrectSkip),
            }
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert_eq!(report.outcomes.resolved(), 10);
        assert_eq!(report.precision, Some(1.0));
        assert_eq!(report.recall, Some(1.0));
        assert_eq!(report.waste_ratio, Some(0.0));
        assert_eq!(report.cache.hits, 5);
        assert_eq!(system.scheduler().inflight(), 0);
        assert!(system.cache().is_empty());
    }

    #[test]
    fn budget_exhaustion_downgrades_to_denied() {
        let mut system = PrecomputeSystem::new(SystemConfig {
            budget: BudgetConfig {
                capacity_units: 30.0,
                refill_units_per_sec: 0.0,
                cost_per_prefetch_units: 10.0,
                max_inflight: 64,
            },
            ..config()
        });
        let wave: Vec<Prediction> = (0..8).map(|i| prediction(i, 0.9)).collect();
        let decisions = system.handle_scores(&wave, 0);
        let admitted = decisions
            .iter()
            .filter(|d| d.action == Action::Prefetch)
            .count();
        let denied = decisions
            .iter()
            .filter(|d| d.action == Action::Denied)
            .count();
        assert_eq!(admitted, 3, "bucket holds exactly 3 prefetches");
        assert_eq!(denied, 5);
        system.check_invariants().unwrap();
        // A denied decision for an accessed session is a missed access.
        for i in 0..8u64 {
            let _ = system.resolve_session(UserId(i), 5, true).unwrap();
        }
        let counts = system.tracker().counts();
        assert_eq!(counts.hits, 3);
        assert_eq!(counts.missed_accesses, 5);
        system.check_invariants().unwrap();
    }

    #[test]
    fn expired_payload_counts_against_precision() {
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(1, 0.9)], 0);
        // Resolve long after the 600 s TTL.
        let outcome = system.resolve_session(UserId(1), 10_000, true).unwrap();
        assert_eq!(outcome, Outcome::ExpiredPrefetch);
        assert_eq!(system.report().precision, Some(0.0));
        system.check_invariants().unwrap();
    }

    #[test]
    fn unresolved_previous_session_is_swept_on_the_next_wave() {
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(7, 0.9)], 0);
        // The ground truth for session 1 never arrived; session 2 starts.
        let second = system.handle_scores(&[prediction(7, 0.9)], 100);
        assert_eq!(second.len(), 1);
        system.check_invariants().unwrap();
        let counts = system.tracker().counts();
        // The orphaned prefetch resolved as waste; the new one is pending.
        assert_eq!(counts.wasted_prefetches, 1);
        assert_eq!(system.tracker().pending_len(), 1);
    }

    #[test]
    fn adaptive_loop_holds_target_precision_on_drifting_traffic() {
        // Scores uniform; P(access | score) = score^2 in the first phase
        // (hard traffic: high scores over-promise), then = score in the
        // second (scores become honest). The controller must track the
        // target through the shift.
        let target = 0.7;
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.3,
            budget: BudgetConfig {
                capacity_units: 1e9,
                refill_units_per_sec: 1e6,
                cost_per_prefetch_units: 1.0,
                max_inflight: 1_000_000,
            },
            cache: CacheConfig {
                shards: 8,
                capacity_per_shard: 1 << 20,
                ttl_secs: 1_000,
            },
            controller: ControllerConfig {
                target_precision: target,
                window: 250,
                gain: 0.5,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            payload_bytes: 8,
        });
        let mut rng = StdRng::seed_from_u64(42);
        let mut now = 0i64;
        for step in 0..120_000u64 {
            now += 1;
            let score: f64 = rng.gen();
            let p_access = if step < 60_000 { score * score } else { score };
            let accessed = rng.gen::<f64>() < p_access;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert!(report.controller_windows > 20);
        // The *last window* precision — the live operating point — holds
        // the target within the paper-style tolerance.
        let last = system.controller().last_snapshot().unwrap();
        assert!(
            (last.observed_precision - target).abs() < 0.1,
            "last window precision {} should track target {target}",
            last.observed_precision
        );
    }
}
