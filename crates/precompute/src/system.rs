//! The assembled subsystem: predict → decide → admit → prefetch → resolve
//! → adapt.
//!
//! [`PrecomputeSystem`] is driven by two calls per session:
//!
//! 1. [`PrecomputeSystem::handle_scores`] at session start, with the wave
//!    of batched predictions the serving engine just produced — applies the
//!    policy, asks the budget scheduler for admission, executes admitted
//!    prefetches into the cache, and registers every decision as pending;
//! 2. [`PrecomputeSystem::resolve_session`] when the session's ground
//!    truth is known — consumes the cached payload (fresh or not), resolves
//!    the decision into its outcome bucket, releases the inflight slot, and
//!    feeds the adaptive controller, which may move the threshold for
//!    subsequent decisions.
//!
//! The two invariants the acceptance criteria name are checkable at any
//! point via [`PrecomputeSystem::check_invariants`]: outcome conservation
//! and a never-overdrawn budget.

use crate::activity::{Activity, ActivityMap};
use crate::adaptive::{AdaptiveThresholdController, ControllerConfig};
use crate::cache::{CacheConfig, CacheStats, PrefetchCache};
use crate::decision::{Action, Decision, DecisionEngine, DecisionStats};
use crate::outcome::{Outcome, OutcomeCounts, OutcomeTracker};
use crate::scheduler::{
    ActivityBudgetStats, AdmissionOrder, AdmitResult, BudgetConfig, FairnessPolicy,
    PrefetchScheduler, SchedulerBudgetStats,
};
use bytes::Bytes;
use pp_data::schema::UserId;
use pp_serving::Prediction;
use serde::{Deserialize, Serialize};

/// Configuration of the assembled subsystem.
///
/// Every `now` the system is driven with is in **seconds** of traffic time:
/// the cache's `ttl_secs` and the budget's `refill_units_per_sec` are both
/// denominated against that clock. A deployment on a finer clock must
/// convert before calling in (the standalone
/// [`PrefetchScheduler::with_clock`](crate::scheduler::PrefetchScheduler::with_clock)
/// exists for embedding the budget alone under a fine-grained clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Threshold the decision engine starts from (the offline-calibrated
    /// operating point).
    pub initial_threshold: f64,
    /// Budget scheduler configuration.
    pub budget: BudgetConfig,
    /// Prefetch cache configuration.
    pub cache: CacheConfig,
    /// Adaptive threshold controller configuration.
    pub controller: ControllerConfig,
    /// Order a wave's prefetch intents are offered to the budget bucket:
    /// FIFO, or highest-probability-first when the bucket is low.
    pub admission: AdmissionOrder,
    /// When `true`, every closed controller window also drains the outcome
    /// tracker's (score, label) samples into
    /// [`pp_core::PrecomputePolicy::recalibrate`] and applies the refit
    /// threshold — the learned feedback loop, per activity. Degenerate
    /// windows (all one label) refuse to refit and the threshold holds.
    pub recalibrate_from_outcomes: bool,
    /// Size of the payload materialized per prefetch.
    pub payload_bytes: usize,
}

/// The multi-activity dimension of a shared deployment, layered on top of a
/// [`SystemConfig`] via [`PrecomputeSystem::new_multi`]: per-activity cost
/// profiles, per-activity starting thresholds, and the fairness policy
/// arbitrating the one shared budget bucket.
#[derive(Debug, Clone, Copy)]
pub struct MultiActivityConfig {
    /// Per-activity prefetch cost, in the budget's cost units (derive each
    /// from that activity's serving profile via
    /// [`crate::scheduler::prefetch_cost_units`]).
    pub costs: ActivityMap<f64>,
    /// Per-activity initial thresholds (each activity's offline-calibrated
    /// operating point; single-activity construction uses
    /// [`SystemConfig::initial_threshold`] for all three).
    pub initial_thresholds: ActivityMap<f64>,
    /// How the shared bucket arbitrates between activities.
    pub fairness: FairnessPolicy,
}

/// One activity's slice of a shared deployment's ledger: what it decided,
/// spent, and earned — the per-activity spend/hit accounting a fairness
/// policy is judged by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// The activity this slice describes.
    pub activity: Activity,
    /// Decision-engine counters for this activity.
    pub decisions: DecisionStats,
    /// This activity's slice of the shared budget ledger.
    pub budget: ActivityBudgetStats,
    /// Outcome bucket totals for this activity.
    pub outcomes: OutcomeCounts,
    /// Live precision over this activity's executed prefetches.
    pub precision: Option<f64>,
    /// Live recall over this activity's observed accesses.
    pub recall: Option<f64>,
    /// Live waste ratio over this activity's executed prefetches.
    pub waste_ratio: Option<f64>,
    /// Threshold currently in force for this activity.
    pub threshold: f64,
    /// Adjustment windows this activity's controller has closed.
    pub controller_windows: u64,
    /// Closed windows that produced a recalibrated threshold.
    pub recalibrations: u64,
    /// Closed windows whose samples were degenerate, so the threshold held.
    pub recalibration_holds: u64,
}

/// A point-in-time report of everything the subsystem measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Decision-engine counters.
    pub decisions: DecisionStats,
    /// Prefetches denied admission (budget or inflight).
    pub denied: u64,
    /// Outcome bucket totals.
    pub outcomes: OutcomeCounts,
    /// Live precision over executed prefetches, if any resolved.
    pub precision: Option<f64>,
    /// Live recall over observed accesses, if any resolved.
    pub recall: Option<f64>,
    /// Live waste ratio over executed prefetches, if any resolved.
    pub waste_ratio: Option<f64>,
    /// Budget scheduler counters.
    pub budget: SchedulerBudgetStats,
    /// Prefetch cache counters.
    pub cache: CacheStats,
    /// Threshold currently in force.
    pub threshold: f64,
    /// Adjustment windows the controller has closed.
    pub controller_windows: u64,
    /// Closed windows whose drained samples produced a recalibrated
    /// threshold.
    pub recalibrations: u64,
    /// Closed windows whose samples were degenerate or infeasible, so the
    /// threshold held.
    pub recalibration_holds: u64,
}

/// The full budget-aware precompute execution subsystem.
///
/// # Examples
///
/// The two-call flow — score a wave at session start, resolve when the
/// ground truth lands:
///
/// ```
/// use pp_data::schema::UserId;
/// use pp_precompute::{
///     AdmissionOrder, BudgetConfig, CacheConfig, ControllerConfig, Outcome, PrecomputeSystem,
///     SystemConfig,
/// };
/// use pp_serving::Prediction;
///
/// let mut system = PrecomputeSystem::new(SystemConfig {
///     initial_threshold: 0.5,
///     budget: BudgetConfig {
///         capacity_units: 100.0,
///         refill_units_per_sec: 10.0,
///         cost_per_prefetch_units: 10.0,
///         max_inflight: 8,
///     },
///     cache: CacheConfig::default(),
///     controller: ControllerConfig::default(),
///     admission: AdmissionOrder::Priority,
///     recalibrate_from_outcomes: false,
///     payload_bytes: 64,
/// });
/// let wave = [
///     Prediction { user_id: UserId(1), probability: 0.9 }, // prefetch
///     Prediction { user_id: UserId(2), probability: 0.2 }, // skip
/// ];
/// system.handle_scores(&wave, 0);
/// assert_eq!(system.resolve_session(UserId(1), 5, true), Some(Outcome::Hit));
/// assert_eq!(system.resolve_session(UserId(2), 5, false), Some(Outcome::CorrectSkip));
/// assert_eq!(system.report().precision, Some(1.0));
/// system.check_invariants().unwrap();
/// ```
#[derive(Debug)]
pub struct PrecomputeSystem {
    engine: DecisionEngine,
    scheduler: PrefetchScheduler,
    cache: PrefetchCache,
    tracker: OutcomeTracker,
    controllers: ActivityMap<AdaptiveThresholdController>,
    admission: AdmissionOrder,
    recalibrate_from_outcomes: bool,
    recalibrations: ActivityMap<u64>,
    recalibration_holds: ActivityMap<u64>,
    payload_bytes: usize,
    /// Whether the last admission pass with candidates hit a budget denial
    /// — the edge into exhaustion emits one `BudgetExhausted` event.
    budget_was_exhausted: bool,
    /// Latest traffic time seen — timestamps recalibration events, whose
    /// entry point ([`PrecomputeSystem::on_window_resolved`]) has no clock.
    clock: i64,
}

impl PrecomputeSystem {
    /// Builds a single-activity subsystem from `config`: every activity
    /// shares one cost, one threshold, and a greedy bucket — the classic
    /// flow, with all traffic on [`Activity::MobileTab`] unless tagged
    /// waves say otherwise.
    ///
    /// # Panics
    ///
    /// Panics when any component configuration is invalid (see the
    /// component constructors).
    pub fn new(config: SystemConfig) -> Self {
        Self::new_multi(
            config,
            MultiActivityConfig {
                costs: ActivityMap::uniform(config.budget.cost_per_prefetch_units),
                initial_thresholds: ActivityMap::uniform(config.initial_threshold),
                fairness: FairnessPolicy::Greedy,
            },
        )
    }

    /// Builds a **multi-activity** subsystem sharing one budget bucket:
    /// per-activity costs and starting thresholds from `multi`, contention
    /// arbitrated by `multi.fairness`, and a separate adaptive threshold
    /// controller (and recalibration loop) per activity.
    ///
    /// # Panics
    ///
    /// Panics when any component configuration is invalid (see the
    /// component constructors and [`FairnessPolicy`] validation).
    pub fn new_multi(config: SystemConfig, multi: MultiActivityConfig) -> Self {
        let controllers = ActivityMap::from_fn(|a| {
            AdaptiveThresholdController::new(multi.initial_thresholds[a], config.controller)
        });
        let mut engine = DecisionEngine::new(controllers[Activity::MobileTab].policy());
        for a in Activity::ALL {
            engine.set_policy_for(a, controllers[a].policy());
        }
        Self {
            engine,
            scheduler: PrefetchScheduler::shared(config.budget, multi.costs, multi.fairness),
            cache: PrefetchCache::new(config.cache),
            tracker: OutcomeTracker::new(),
            controllers,
            admission: config.admission,
            recalibrate_from_outcomes: config.recalibrate_from_outcomes,
            recalibrations: ActivityMap::uniform(0),
            recalibration_holds: ActivityMap::uniform(0),
            payload_bytes: config.payload_bytes,
            budget_was_exhausted: false,
            clock: 0,
        }
    }

    /// Handles one wave of batched predictions at traffic time `now`, all
    /// on the default activity ([`Activity::MobileTab`]) — the
    /// single-activity path. See [`PrecomputeSystem::handle_wave`].
    pub fn handle_scores(&mut self, predictions: &[Prediction], now: i64) -> Vec<Decision> {
        let tagged: Vec<(Activity, Prediction)> = predictions
            .iter()
            .map(|&p| (Activity::MobileTab, p))
            .collect();
        self.handle_wave(&tagged, now)
    }

    /// Handles one wave of batched, activity-tagged predictions at traffic
    /// time `now`: decides per prediction under its activity's policy,
    /// admits the wave's prefetch intents against the shared budget in the
    /// configured [`AdmissionOrder`] (and the bucket's fairness policy),
    /// executes admitted prefetches into the cache, and registers every
    /// decision for outcome resolution. Returns the decisions in input
    /// order.
    ///
    /// A user whose previous session never resolved is resolved first as
    /// "ended without access" so decisions cannot leak. A wave containing
    /// the same user twice is split at the repeat — the earlier segment is
    /// admitted and recorded first, so the repeat sweeps the user's earlier
    /// decision exactly as it would across waves (priority admission then
    /// ranks within each unique-user segment).
    ///
    /// **`UserId` is the session key, across activities**: the pending
    /// ledger and the prefetch cache hold at most one live session per
    /// `UserId`, so a wave entry for a user reuses — and first sweeps —
    /// that user's outstanding session even when the two are on *different*
    /// activities. A deployment where one user can be concurrently live on
    /// several activities must represent each (user, activity) pair as a
    /// distinct `UserId` (namespace the ids, as `precompute_sim`'s
    /// mixed-traffic scenario does); otherwise a Timeshift session start
    /// would force-resolve the same user's still-live MobileTab prefetch as
    /// "ended without access".
    pub fn handle_wave(
        &mut self,
        predictions: &[(Activity, Prediction)],
        now: i64,
    ) -> Vec<Decision> {
        let mut decisions = Vec::with_capacity(predictions.len());
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut segment_start = 0usize;
        for (i, (_, prediction)) in predictions.iter().enumerate() {
            if !seen.insert(prediction.user_id.0) {
                decisions.extend(self.handle_unique_wave(&predictions[segment_start..i], now));
                seen.clear();
                seen.insert(prediction.user_id.0);
                segment_start = i;
            }
        }
        decisions.extend(self.handle_unique_wave(&predictions[segment_start..], now));
        decisions
    }

    /// [`PrecomputeSystem::handle_wave`] for a wave with unique users.
    fn handle_unique_wave(
        &mut self,
        predictions: &[(Activity, Prediction)],
        now: i64,
    ) -> Vec<Decision> {
        self.clock = self.clock.max(now);
        let mut decisions = Vec::with_capacity(predictions.len());
        for (activity, prediction) in predictions {
            if self.tracker.pending_decision(prediction.user_id).is_some() {
                let _ = self.resolve_session(prediction.user_id, now, false);
            }
            decisions.push(self.engine.decide_for(*activity, prediction, now));
        }
        // One admission pass over the wave's prefetch intents: under
        // priority order a low bucket is spent on the highest-probability
        // candidates instead of whichever happened to arrive first, and the
        // fairness policy arbitrates across activities.
        let candidates: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.action == Action::Prefetch)
            .map(|(i, _)| i)
            .collect();
        let tagged: Vec<(Activity, f64)> = candidates
            .iter()
            .map(|&i| (decisions[i].activity, decisions[i].probability))
            .collect();
        let obs = crate::obs::PrecomputeObs::global();
        // Trace the admission pass when the wave carries at least one
        // sampled candidate: the wave-level `wave_admission` span and the
        // per-user `cache_insert` spans share a wave sequence number, and
        // each insert span carries the *user's* trace id — the same id the
        // serving engine stamped on that user's `predict_many_blocking`
        // spans — so one trace follows predict → decide → act.
        let tracer = pp_obs::Tracer::global();
        let wave_traced = tracer.enabled()
            && candidates
                .iter()
                .any(|&i| tracer.sampled(decisions[i].user_id.0));
        let wave_id = if wave_traced {
            tracer.next_batch_id()
        } else {
            0
        };
        let admit_span = wave_traced.then(pp_obs::SpanBuilder::start);
        let admitting = pp_obs::Stopwatch::start();
        let admissions = self
            .scheduler
            .admit_wave_tagged(now, &tagged, self.admission);
        admitting.record(&obs.admission_ns);
        if let Some(builder) = admit_span {
            builder.finish(
                tracer,
                pp_obs::TraceId(wave_id.max(1)),
                pp_obs::SpanId::NONE,
                pp_obs::Stage::WaveAdmission,
                pp_obs::Span::WAVE_WORKER,
                0,
                wave_id,
            );
        }
        if !candidates.is_empty() {
            obs.wave_size.record(candidates.len() as u64);
        }
        let mut denied_budget = false;
        for (&i, admission) in candidates.iter().zip(&admissions) {
            let activity = decisions[i].activity;
            match admission {
                AdmitResult::Admitted => {
                    obs.admitted[activity].inc();
                    let user = decisions[i].user_id.0;
                    let insert_span =
                        (wave_traced && tracer.sampled(user)).then(pp_obs::SpanBuilder::start);
                    self.cache.insert(
                        decisions[i].user_id,
                        Bytes::from(vec![0u8; self.payload_bytes]),
                        now,
                    );
                    if let Some(builder) = insert_span {
                        builder.finish(
                            tracer,
                            tracer.trace_for(user),
                            pp_obs::SpanId::NONE,
                            pp_obs::Stage::CacheInsert,
                            pp_obs::Span::WAVE_WORKER,
                            user,
                            wave_id,
                        );
                    }
                }
                AdmitResult::DeniedBudget | AdmitResult::DeniedInflight => {
                    obs.denied[activity].inc();
                    denied_budget |= *admission == AdmitResult::DeniedBudget;
                    decisions[i].action = Action::Denied;
                }
            }
        }
        obs.bucket_level_units.set(self.scheduler.tokens());
        if !candidates.is_empty() {
            if denied_budget && !self.budget_was_exhausted {
                pp_obs::MetricsRegistry::global().events().record(
                    now,
                    pp_obs::EventKind::BudgetExhausted,
                    "shared_bucket",
                    self.scheduler.tokens(),
                );
            }
            self.budget_was_exhausted = denied_budget;
        }
        for decision in &decisions {
            self.tracker.record(*decision);
        }
        decisions
    }

    /// Resolves the pending decision for `user` against the session's
    /// ground truth at time `now`. Consumes the cached payload (a prefetch
    /// that resolves — used or not — frees its cache slot and its inflight
    /// budget slot), classifies the outcome, and feeds the adaptive
    /// controller. Returns `None` when the user has no pending decision.
    pub fn resolve_session(&mut self, user: UserId, now: i64, accessed: bool) -> Option<Outcome> {
        self.clock = self.clock.max(now);
        let decision = self.tracker.pending_decision(user)?;
        let activity = decision.activity;
        let payload_served = if decision.action == Action::Prefetch {
            let payload = self.cache.take(user, now);
            self.scheduler.complete_one_for(activity);
            payload.is_some()
        } else {
            false
        };
        let outcome = self
            .tracker
            .resolve(user, accessed, payload_served)
            .expect("pending decision just observed");
        let controller = &mut self.controllers[activity];
        if let Some(window) = controller.observe(outcome) {
            self.engine.set_policy_for(activity, controller.policy());
            let obs = crate::obs::PrecomputeObs::global();
            obs.window_precision[activity].set(window.observed_precision);
            obs.threshold[activity].set(window.threshold_after);
            if pp_obs::is_enabled() {
                let events = pp_obs::MetricsRegistry::global().events();
                events.record(
                    now,
                    pp_obs::EventKind::WindowClosed,
                    activity.slug(),
                    window.observed_precision,
                );
                if window.threshold_after != window.threshold_before {
                    events.record(
                        now,
                        pp_obs::EventKind::ThresholdMove,
                        activity.slug(),
                        window.threshold_after,
                    );
                }
            }
            if self.recalibrate_from_outcomes {
                self.on_window_resolved(activity);
            }
        } else if self.recalibrate_from_outcomes
            && self.tracker.samples_len_for(activity)
                >= (8 * controller.config().window).min(crate::outcome::MAX_RETAINED_SAMPLES)
        {
            // The controller's window only advances on *prefetch* outcomes,
            // so a threshold stuck too high starves it and the loop would
            // deadlock at zero prefetches. Resolved skips still carry
            // (score, label) pairs though — once enough pile up without a
            // window close, recalibrate from them anyway so a saturated
            // threshold can find its way back to a live operating point.
            self.on_window_resolved(activity);
        }
        Some(outcome)
    }

    /// The learned feedback loop, fired once per closed controller window
    /// (and as a starvation fallback when samples pile up without one),
    /// independently per activity: drains the outcome tracker's
    /// (score, label) samples *for that activity* and re-fits its policy
    /// threshold for the recorded precision target on them. A successful
    /// fit moves that activity's operating point (clamped to the
    /// controller's safe band); a degenerate window — all-positive,
    /// all-negative, or an infeasible target — refuses to refit and the
    /// threshold *holds* at whatever the proportional controller chose.
    /// Returns the recalibrated threshold when one was applied.
    pub fn on_window_resolved(&mut self, activity: Activity) -> Option<f64> {
        let samples = self.tracker.drain_samples_for(activity);
        let scores: Vec<f64> = samples.iter().map(|s| s.score).collect();
        let labels: Vec<bool> = samples.iter().map(|s| s.label).collect();
        let controller = &mut self.controllers[activity];
        match controller.policy().recalibrate(&scores, &labels) {
            Some(refit) => {
                controller.set_threshold(refit.threshold());
                self.engine.set_policy_for(activity, controller.policy());
                self.recalibrations[activity] += 1;
                let threshold = controller.threshold();
                crate::obs::PrecomputeObs::global().threshold[activity].set(threshold);
                pp_obs::MetricsRegistry::global().events().record(
                    self.clock,
                    pp_obs::EventKind::Recalibration,
                    activity.slug(),
                    threshold,
                );
                Some(threshold)
            }
            None => {
                self.recalibration_holds[activity] += 1;
                pp_obs::MetricsRegistry::global().events().record(
                    self.clock,
                    pp_obs::EventKind::RecalibrationHold,
                    activity.slug(),
                    scores.len() as f64,
                );
                None
            }
        }
    }

    /// The decision engine (e.g. for
    /// [`DecisionEngine::score_and_decide`]-style wiring or inspection).
    pub fn decision_engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The budget scheduler.
    pub fn scheduler(&self) -> &PrefetchScheduler {
        &self.scheduler
    }

    /// The prefetch cache.
    pub fn cache(&self) -> &PrefetchCache {
        &self.cache
    }

    /// The outcome tracker.
    pub fn tracker(&self) -> &OutcomeTracker {
        &self.tracker
    }

    /// The adaptive controller of the default activity
    /// ([`Activity::MobileTab`]) — the single-activity view.
    pub fn controller(&self) -> &AdaptiveThresholdController {
        &self.controllers[Activity::MobileTab]
    }

    /// The adaptive controller holding `activity`'s operating point.
    pub fn controller_for(&self, activity: Activity) -> &AdaptiveThresholdController {
        &self.controllers[activity]
    }

    /// Snapshot of every live metric, aggregated across activities.
    /// `threshold` reports the default activity's operating point;
    /// per-activity thresholds live in
    /// [`PrecomputeSystem::activity_report`].
    pub fn report(&self) -> SystemReport {
        let counts = self.tracker.counts();
        let budget = self.scheduler.stats();
        SystemReport {
            decisions: self.engine.stats(),
            denied: budget.denied_budget + budget.denied_inflight,
            outcomes: counts,
            precision: counts.precision(),
            recall: counts.recall(),
            waste_ratio: counts.waste_ratio(),
            budget,
            cache: self.cache.stats(),
            threshold: self.controllers[Activity::MobileTab].threshold(),
            controller_windows: self
                .controllers
                .values()
                .map(super::adaptive::AdaptiveThresholdController::windows_closed)
                .sum(),
            recalibrations: self.recalibrations.values().sum(),
            recalibration_holds: self.recalibration_holds.values().sum(),
        }
    }

    /// One activity's slice of the ledger: decisions, budget spend, outcome
    /// buckets, live precision/recall, and its controller's state.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::{
    ///     Activity, ActivityMap, AdmissionOrder, BudgetConfig, CacheConfig, ControllerConfig,
    ///     FairnessPolicy, MultiActivityConfig, PrecomputeSystem, SystemConfig,
    /// };
    /// use pp_data::schema::UserId;
    /// use pp_serving::Prediction;
    ///
    /// let mut system = PrecomputeSystem::new_multi(
    ///     SystemConfig {
    ///         initial_threshold: 0.5,
    ///         budget: BudgetConfig {
    ///             capacity_units: 100.0,
    ///             refill_units_per_sec: 10.0,
    ///             cost_per_prefetch_units: 10.0,
    ///             max_inflight: 8,
    ///         },
    ///         cache: CacheConfig::default(),
    ///         controller: ControllerConfig::default(),
    ///         admission: AdmissionOrder::Priority,
    ///         recalibrate_from_outcomes: false,
    ///         payload_bytes: 64,
    ///     },
    ///     MultiActivityConfig {
    ///         costs: ActivityMap::from_fn(|a| if a == Activity::Mpu { 40.0 } else { 10.0 }),
    ///         initial_thresholds: ActivityMap::uniform(0.5),
    ///         fairness: FairnessPolicy::GuaranteedShare {
    ///             floors: ActivityMap::uniform(0.2),
    ///         },
    ///     },
    /// );
    /// let wave = [
    ///     (Activity::MobileTab, Prediction { user_id: UserId(1), probability: 0.9 }),
    ///     (Activity::Mpu, Prediction { user_id: UserId(2), probability: 0.8 }),
    /// ];
    /// system.handle_wave(&wave, 0);
    /// system.resolve_session(UserId(1), 5, true);
    /// system.resolve_session(UserId(2), 5, false);
    /// let mpu = system.activity_report(Activity::Mpu);
    /// assert_eq!(mpu.budget.units_spent, 40.0);
    /// assert_eq!(mpu.outcomes.wasted_prefetches, 1);
    /// assert_eq!(system.activity_report(Activity::MobileTab).outcomes.hits, 1);
    /// system.check_invariants().unwrap();
    /// ```
    pub fn activity_report(&self, activity: Activity) -> ActivityReport {
        let outcomes = self.tracker.counts_for(activity);
        ActivityReport {
            activity,
            decisions: self.engine.stats_for(activity),
            budget: self.scheduler.activity_stats(activity),
            outcomes,
            precision: outcomes.precision(),
            recall: outcomes.recall(),
            waste_ratio: outcomes.waste_ratio(),
            threshold: self.controllers[activity].threshold(),
            controller_windows: self.controllers[activity].windows_closed(),
            recalibrations: self.recalibrations[activity],
            recalibration_holds: self.recalibration_holds[activity],
        }
    }

    /// Checks the subsystem invariants: outcome conservation, budget never
    /// overdrawn, and cross-component books (admitted = executed prefetch
    /// decisions = cache insertions).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tracker.check_conservation()?;
        self.scheduler.check_invariants()?;
        let admitted = self.scheduler.stats().admitted;
        let inserted = self.cache.stats().insertions;
        if admitted != inserted {
            return Err(format!(
                "admitted {admitted} prefetches but inserted {inserted} payloads"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config() -> SystemConfig {
        SystemConfig {
            initial_threshold: 0.5,
            budget: BudgetConfig {
                capacity_units: 400.0,
                refill_units_per_sec: 50.0,
                cost_per_prefetch_units: 10.0,
                max_inflight: 64,
            },
            cache: CacheConfig {
                shards: 4,
                capacity_per_shard: 256,
                ttl_secs: 600,
            },
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 100,
                gain: 0.4,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            admission: AdmissionOrder::Fifo,
            recalibrate_from_outcomes: false,
            payload_bytes: 64,
        }
    }

    fn prediction(id: u64, p: f64) -> Prediction {
        Prediction {
            user_id: UserId(id),
            probability: p,
        }
    }

    #[test]
    fn end_to_end_wave_resolves_with_conservation() {
        let mut system = PrecomputeSystem::new(config());
        let wave: Vec<Prediction> = (0..10)
            .map(|i| prediction(i, if i % 2 == 0 { 0.9 } else { 0.1 }))
            .collect();
        let decisions = system.handle_scores(&wave, 1_000);
        assert_eq!(decisions.len(), 10);
        assert_eq!(
            decisions
                .iter()
                .filter(|d| d.action == Action::Prefetch)
                .count(),
            5
        );
        system.check_invariants().unwrap();
        // Resolve: even users (prefetched) accessed, odd did not.
        for i in 0..10u64 {
            let outcome = system
                .resolve_session(UserId(i), 1_010, i % 2 == 0)
                .unwrap();
            match i % 2 {
                0 => assert_eq!(outcome, Outcome::Hit),
                _ => assert_eq!(outcome, Outcome::CorrectSkip),
            }
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert_eq!(report.outcomes.resolved(), 10);
        assert_eq!(report.precision, Some(1.0));
        assert_eq!(report.recall, Some(1.0));
        assert_eq!(report.waste_ratio, Some(0.0));
        assert_eq!(report.cache.hits, 5);
        assert_eq!(system.scheduler().inflight(), 0);
        assert!(system.cache().is_empty());
    }

    #[test]
    fn budget_exhaustion_downgrades_to_denied() {
        let mut system = PrecomputeSystem::new(SystemConfig {
            budget: BudgetConfig {
                capacity_units: 30.0,
                refill_units_per_sec: 0.0,
                cost_per_prefetch_units: 10.0,
                max_inflight: 64,
            },
            ..config()
        });
        let wave: Vec<Prediction> = (0..8).map(|i| prediction(i, 0.9)).collect();
        let decisions = system.handle_scores(&wave, 0);
        let admitted = decisions
            .iter()
            .filter(|d| d.action == Action::Prefetch)
            .count();
        let denied = decisions
            .iter()
            .filter(|d| d.action == Action::Denied)
            .count();
        assert_eq!(admitted, 3, "bucket holds exactly 3 prefetches");
        assert_eq!(denied, 5);
        system.check_invariants().unwrap();
        // A denied decision for an accessed session is a missed access.
        for i in 0..8u64 {
            let _ = system.resolve_session(UserId(i), 5, true).unwrap();
        }
        let counts = system.tracker().counts();
        assert_eq!(counts.hits, 3);
        assert_eq!(counts.missed_accesses, 5);
        system.check_invariants().unwrap();
    }

    #[test]
    fn expired_payload_counts_against_precision() {
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(1, 0.9)], 0);
        // Resolve long after the 600 s TTL.
        let outcome = system.resolve_session(UserId(1), 10_000, true).unwrap();
        assert_eq!(outcome, Outcome::ExpiredPrefetch);
        assert_eq!(system.report().precision, Some(0.0));
        system.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_user_within_one_wave_sweeps_the_earlier_decision() {
        // The same user twice in a single wave must behave like two waves:
        // the first decision is admitted, recorded, then swept as "ended
        // without access" when the repeat arrives — not a panic.
        let mut system = PrecomputeSystem::new(config());
        let wave = [
            prediction(7, 0.9),
            prediction(8, 0.9),
            prediction(7, 0.9),
            prediction(7, 0.1),
        ];
        let decisions = system.handle_scores(&wave, 0);
        assert_eq!(decisions.len(), 4);
        assert_eq!(decisions[0].action, Action::Prefetch);
        assert_eq!(decisions[2].action, Action::Prefetch);
        assert_eq!(decisions[3].action, Action::Skip);
        system.check_invariants().unwrap();
        let counts = system.tracker().counts();
        // User 7's first two decisions were swept as wasted prefetches; the
        // third is pending alongside user 8's.
        assert_eq!(counts.wasted_prefetches, 2);
        assert_eq!(system.tracker().pending_len(), 2);
    }

    #[test]
    fn unresolved_previous_session_is_swept_on_the_next_wave() {
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(7, 0.9)], 0);
        // The ground truth for session 1 never arrived; session 2 starts.
        let second = system.handle_scores(&[prediction(7, 0.9)], 100);
        assert_eq!(second.len(), 1);
        system.check_invariants().unwrap();
        let counts = system.tracker().counts();
        // The orphaned prefetch resolved as waste; the new one is pending.
        assert_eq!(counts.wasted_prefetches, 1);
        assert_eq!(system.tracker().pending_len(), 1);
    }

    #[test]
    fn priority_admission_turns_a_tight_budget_into_more_hits() {
        // A bucket that affords 2 prefetches per wave, waves of 4 intents
        // whose probabilities are honest (P(access) = score). FIFO spends
        // the bucket on arrival order; priority on the best scores.
        let tight = |admission| {
            PrecomputeSystem::new(SystemConfig {
                initial_threshold: 0.1,
                budget: BudgetConfig {
                    capacity_units: 20.0,
                    refill_units_per_sec: 0.0,
                    cost_per_prefetch_units: 10.0,
                    max_inflight: 64,
                },
                admission,
                ..config()
            })
        };
        let wave: Vec<Prediction> = [0.2, 0.95, 0.3, 0.9]
            .iter()
            .enumerate()
            .map(|(i, &p)| prediction(i as u64, p))
            .collect();

        let mut fifo = tight(AdmissionOrder::Fifo);
        let fifo_decisions = fifo.handle_scores(&wave, 0);
        assert_eq!(fifo_decisions[0].action, Action::Prefetch);
        assert_eq!(fifo_decisions[1].action, Action::Prefetch);
        assert_eq!(fifo_decisions[2].action, Action::Denied);
        assert_eq!(fifo_decisions[3].action, Action::Denied);

        let mut priority = tight(AdmissionOrder::Priority);
        let priority_decisions = priority.handle_scores(&wave, 0);
        assert_eq!(priority_decisions[0].action, Action::Denied);
        assert_eq!(priority_decisions[1].action, Action::Prefetch);
        assert_eq!(priority_decisions[2].action, Action::Denied);
        assert_eq!(priority_decisions[3].action, Action::Prefetch);

        // Ground truth: exactly the two highest scores accessed. Priority
        // converts the same budget into strictly more hits.
        for (i, accessed) in [false, true, false, true].iter().enumerate() {
            fifo.resolve_session(UserId(i as u64), 5, *accessed)
                .unwrap();
            priority
                .resolve_session(UserId(i as u64), 5, *accessed)
                .unwrap();
        }
        assert_eq!(fifo.tracker().counts().hits, 1);
        assert_eq!(priority.tracker().counts().hits, 2);
        assert_eq!(
            fifo.scheduler().stats().admitted,
            priority.scheduler().stats().admitted,
            "equal budget spent"
        );
        fifo.check_invariants().unwrap();
        priority.check_invariants().unwrap();
    }

    #[test]
    fn greedy_sharing_starves_but_guaranteed_share_does_not() {
        // One tight shared bucket; MobileTab floods every wave ahead of a
        // single MPU candidate. Under greedy fairness MobileTab takes the
        // whole bucket each wave; under guaranteed-share MPU's floor keeps
        // it served. MPU prefetches cost 4× MobileTab's.
        let costs = ActivityMap::from_fn(|a| if a == Activity::Mpu { 40.0 } else { 10.0 });
        let run = |fairness: FairnessPolicy| {
            let mut system = PrecomputeSystem::new_multi(
                SystemConfig {
                    initial_threshold: 0.5,
                    budget: BudgetConfig {
                        capacity_units: 100.0,
                        refill_units_per_sec: 10.0,
                        cost_per_prefetch_units: 40.0,
                        max_inflight: 1_000,
                    },
                    ..config()
                },
                MultiActivityConfig {
                    costs,
                    initial_thresholds: ActivityMap::uniform(0.5),
                    fairness,
                },
            );
            let mut now = 0i64;
            for wave_index in 0..50u64 {
                now += 10;
                let mut wave: Vec<(Activity, Prediction)> = (0..12)
                    .map(|i| (Activity::MobileTab, prediction(wave_index * 100 + i, 0.9)))
                    .collect();
                wave.push((Activity::Mpu, prediction(wave_index * 100 + 50, 0.9)));
                system.handle_wave(&wave, now);
                for (_, p) in &wave {
                    system.resolve_session(p.user_id, now + 2, true).unwrap();
                }
                system.check_invariants().unwrap();
            }
            system
        };

        let greedy = run(FairnessPolicy::Greedy);
        assert_eq!(
            greedy.activity_report(Activity::Mpu).outcomes.hits,
            0,
            "greedy sharing lets MobileTab starve MPU"
        );

        let floors = ActivityMap::from_fn(|a| if a == Activity::Mpu { 0.4 } else { 0.0 });
        let fair = run(FairnessPolicy::GuaranteedShare { floors });
        let mpu = fair.activity_report(Activity::Mpu);
        assert!(
            mpu.outcomes.hits >= 40,
            "the floor guarantees MPU roughly one admission per wave, got {}",
            mpu.outcomes.hits
        );
        // The ledger lines up: MPU's spend is exactly its admissions × cost,
        // and every activity's spend sums to the bucket drain (also checked
        // by the scheduler invariant).
        assert!((mpu.budget.units_spent - mpu.budget.admitted as f64 * 40.0).abs() < 1e-6);
        fair.check_invariants().unwrap();
    }

    #[test]
    fn per_activity_controllers_diverge_to_their_own_operating_points() {
        // MobileTab scores are honest (P(access|s) = s); Timeshift scores
        // over-promise (P(access|s) = s²). Holding the same 0.7 precision
        // target therefore needs a higher Timeshift threshold — the two
        // controllers must find different operating points from outcomes
        // alone, and the recalibration loop must stay per-activity.
        let mut system = PrecomputeSystem::new_multi(
            SystemConfig {
                initial_threshold: 0.3,
                budget: BudgetConfig {
                    capacity_units: 1e9,
                    refill_units_per_sec: 1e6,
                    cost_per_prefetch_units: 1.0,
                    max_inflight: 1_000_000,
                },
                controller: ControllerConfig {
                    target_precision: 0.7,
                    window: 100,
                    gain: 0.4,
                    min_threshold: 0.01,
                    max_threshold: 0.99,
                },
                recalibrate_from_outcomes: true,
                ..config()
            },
            MultiActivityConfig {
                costs: ActivityMap::uniform(1.0),
                initial_thresholds: ActivityMap::uniform(0.3),
                fairness: FairnessPolicy::Greedy,
            },
        );
        let mut rng = StdRng::seed_from_u64(23);
        let mut now = 0i64;
        for step in 0..60_000u64 {
            now += 1;
            let score: f64 = rng.gen();
            let (activity, p_access) = if step % 2 == 0 {
                (Activity::MobileTab, score)
            } else {
                (Activity::Timeshift, score * score)
            };
            let accessed = rng.gen::<f64>() < p_access;
            system.handle_wave(&[(activity, prediction(step, score))], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        system.check_invariants().unwrap();
        let mobile = system.activity_report(Activity::MobileTab);
        let timeshift = system.activity_report(Activity::Timeshift);
        // Honest uniform scores need t ≈ 0.4 for 0.7 precision; squared
        // (over-promising) scores need t ≈ 0.78.
        assert!(
            (mobile.threshold - 0.4).abs() < 0.15,
            "MobileTab threshold {} should sit near 0.4",
            mobile.threshold
        );
        assert!(
            timeshift.threshold > mobile.threshold + 0.15,
            "Timeshift threshold {} must sit well above MobileTab's {}",
            timeshift.threshold,
            mobile.threshold
        );
        assert!(mobile.recalibrations > 5, "MobileTab loop must recalibrate");
        assert!(
            timeshift.recalibrations > 5,
            "Timeshift loop must recalibrate"
        );
        // MPU saw no traffic: its slice of the ledger stays empty.
        let mpu = system.activity_report(Activity::Mpu);
        assert_eq!(mpu.outcomes.resolved(), 0);
        assert_eq!(mpu.budget.admitted, 0);
        assert_eq!(mpu.controller_windows, 0);
    }

    #[test]
    fn window_close_recalibrates_the_threshold_from_drained_samples() {
        // Honest scores (P(access | score) = score), window of 50. With
        // recalibration on, every closed window drains (score, label)
        // samples and re-fits the threshold for the 0.7 target.
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.05,
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 50,
                gain: 0.2,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            recalibrate_from_outcomes: true,
            budget: BudgetConfig {
                capacity_units: 1e9,
                refill_units_per_sec: 1e6,
                cost_per_prefetch_units: 1.0,
                max_inflight: 1_000_000,
            },
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let mut now = 0i64;
        for step in 0..30_000u64 {
            now += 1;
            let score: f64 = rng.gen();
            let accessed = rng.gen::<f64>() < score;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert!(report.controller_windows > 10);
        assert!(
            report.recalibrations > 10,
            "windows should recalibrate ({} of {})",
            report.recalibrations,
            report.controller_windows
        );
        // Honest uniform scores: precision at threshold t is (1 + t) / 2,
        // so defending 0.7 needs t ≈ 0.4 — the refit must find that
        // neighbourhood from outcomes alone.
        assert!(
            (report.threshold - 0.4).abs() < 0.15,
            "recalibrated threshold {} should sit near 0.4",
            report.threshold
        );
        let last = system.controller().last_snapshot().unwrap();
        assert!(
            (last.observed_precision - 0.7).abs() < 0.15,
            "last window precision {} should track the target",
            last.observed_precision
        );
    }

    #[test]
    fn sample_triggered_recalibration_unsticks_a_saturated_threshold() {
        // The threshold starts at the max clamp: nothing prefetches, so the
        // controller window (prefetch outcomes only) never closes. Resolved
        // skips still carry (score, label) pairs — after 8 × window samples
        // pile up the system recalibrates from them and the threshold
        // returns to a live operating point instead of deadlocking.
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.99,
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 20,
                gain: 0.2,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            recalibrate_from_outcomes: true,
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(11);
        let mut now = 0i64;
        for step in 0..400u64 {
            now += 1;
            // Honest scores capped below the stuck threshold.
            let score: f64 = rng.gen::<f64>() * 0.9;
            let accessed = rng.gen::<f64>() < score;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        let report = system.report();
        assert!(
            report.recalibrations > 0,
            "the starvation fallback must recalibrate"
        );
        assert!(
            report.threshold < 0.9,
            "threshold {} should have left saturation",
            report.threshold
        );
        assert!(
            report.budget.admitted > 0,
            "prefetches must flow again after the rescue"
        );
        system.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_windows_hold_the_recalibrated_threshold() {
        // Every session accesses: windows are all-positive, which carries
        // no calibration signal — the refit must refuse and the threshold
        // hold instead of collapsing to the lowest observed score.
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.5,
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 10,
                gain: 0.0001,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            recalibrate_from_outcomes: true,
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut now = 0i64;
        for step in 0..200u64 {
            now += 1;
            // Scores above the threshold so prefetches execute; labels all
            // positive.
            let score = 0.6 + 0.39 * rng.gen::<f64>();
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, true).unwrap();
        }
        let report = system.report();
        assert!(report.controller_windows >= 10);
        assert_eq!(report.recalibrations, 0);
        assert_eq!(report.recalibration_holds, report.controller_windows);
        // The threshold never collapsed toward the minimum: with an
        // all-but-zero gain the only possible large move was a (refused)
        // recalibration reset.
        assert!(
            (report.threshold - 0.5).abs() < 0.05,
            "threshold {} must hold near 0.5 on degenerate windows",
            report.threshold
        );
        system.check_invariants().unwrap();
    }

    #[test]
    fn cache_expiry_accounting_matches_outcome_conservation() {
        // Two prefetches: one resolves within TTL (hit), one long after
        // (expired). The cache's expired/evicted split must line up with
        // the tracker's outcome buckets, under exact conservation.
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(1, 0.9), prediction(2, 0.9)], 0);
        assert_eq!(
            system.resolve_session(UserId(1), 10, true),
            Some(Outcome::Hit)
        );
        // TTL is 600 s: user 2's payload expires on discovery at t=10_000.
        assert_eq!(
            system.resolve_session(UserId(2), 10_000, true),
            Some(Outcome::ExpiredPrefetch)
        );
        let report = system.report();
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.expirations, 1);
        assert_eq!(
            report.cache.lru_evictions, 0,
            "expiry must not count as eviction"
        );
        assert_eq!(report.outcomes.hits, 1);
        assert_eq!(report.outcomes.expired_prefetches, 1);
        // Conservation: every decision in exactly one bucket, books balanced.
        system.check_invariants().unwrap();
        assert_eq!(report.outcomes.resolved(), 2);
    }

    #[test]
    fn adaptive_loop_holds_target_precision_on_drifting_traffic() {
        // Scores uniform; P(access | score) = score^2 in the first phase
        // (hard traffic: high scores over-promise), then = score in the
        // second (scores become honest). The controller must track the
        // target through the shift.
        let target = 0.7;
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.3,
            budget: BudgetConfig {
                capacity_units: 1e9,
                refill_units_per_sec: 1e6,
                cost_per_prefetch_units: 1.0,
                max_inflight: 1_000_000,
            },
            cache: CacheConfig {
                shards: 8,
                capacity_per_shard: 1 << 20,
                ttl_secs: 1_000,
            },
            controller: ControllerConfig {
                target_precision: target,
                window: 250,
                gain: 0.5,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            admission: AdmissionOrder::Fifo,
            recalibrate_from_outcomes: false,
            payload_bytes: 8,
        });
        let mut rng = StdRng::seed_from_u64(42);
        let mut now = 0i64;
        for step in 0..120_000u64 {
            now += 1;
            let score: f64 = rng.gen();
            let p_access = if step < 60_000 { score * score } else { score };
            let accessed = rng.gen::<f64>() < p_access;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert!(report.controller_windows > 20);
        // The *last window* precision — the live operating point — holds
        // the target within the paper-style tolerance.
        let last = system.controller().last_snapshot().unwrap();
        assert!(
            (last.observed_precision - target).abs() < 0.1,
            "last window precision {} should track target {target}",
            last.observed_precision
        );
    }
}
