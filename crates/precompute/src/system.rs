//! The assembled subsystem: predict → decide → admit → prefetch → resolve
//! → adapt.
//!
//! [`PrecomputeSystem`] is driven by two calls per session:
//!
//! 1. [`PrecomputeSystem::handle_scores`] at session start, with the wave
//!    of batched predictions the serving engine just produced — applies the
//!    policy, asks the budget scheduler for admission, executes admitted
//!    prefetches into the cache, and registers every decision as pending;
//! 2. [`PrecomputeSystem::resolve_session`] when the session's ground
//!    truth is known — consumes the cached payload (fresh or not), resolves
//!    the decision into its outcome bucket, releases the inflight slot, and
//!    feeds the adaptive controller, which may move the threshold for
//!    subsequent decisions.
//!
//! The two invariants the acceptance criteria name are checkable at any
//! point via [`PrecomputeSystem::check_invariants`]: outcome conservation
//! and a never-overdrawn budget.

use crate::adaptive::{AdaptiveThresholdController, ControllerConfig};
use crate::cache::{CacheConfig, CacheStats, PrefetchCache};
use crate::decision::{Action, Decision, DecisionEngine, DecisionStats};
use crate::outcome::{Outcome, OutcomeCounts, OutcomeTracker};
use crate::scheduler::{
    AdmissionOrder, AdmitResult, BudgetConfig, PrefetchScheduler, SchedulerBudgetStats,
};
use bytes::Bytes;
use pp_data::schema::UserId;
use pp_serving::Prediction;
use serde::{Deserialize, Serialize};

/// Configuration of the assembled subsystem.
///
/// Every `now` the system is driven with is in **seconds** of traffic time:
/// the cache's `ttl_secs` and the budget's `refill_units_per_sec` are both
/// denominated against that clock. A deployment on a finer clock must
/// convert before calling in (the standalone
/// [`PrefetchScheduler::with_clock`](crate::scheduler::PrefetchScheduler::with_clock)
/// exists for embedding the budget alone under a fine-grained clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Threshold the decision engine starts from (the offline-calibrated
    /// operating point).
    pub initial_threshold: f64,
    /// Budget scheduler configuration.
    pub budget: BudgetConfig,
    /// Prefetch cache configuration.
    pub cache: CacheConfig,
    /// Adaptive threshold controller configuration.
    pub controller: ControllerConfig,
    /// Order a wave's prefetch intents are offered to the budget bucket:
    /// FIFO, or highest-probability-first when the bucket is low.
    pub admission: AdmissionOrder,
    /// When `true`, every closed controller window also drains the outcome
    /// tracker's (score, label) samples into
    /// [`pp_core::PrecomputePolicy::recalibrate`] and applies the refit
    /// threshold — the learned feedback loop. Degenerate windows (all one
    /// label) refuse to refit and the threshold holds.
    pub recalibrate_from_outcomes: bool,
    /// Size of the payload materialized per prefetch.
    pub payload_bytes: usize,
}

/// A point-in-time report of everything the subsystem measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Decision-engine counters.
    pub decisions: DecisionStats,
    /// Prefetches denied admission (budget or inflight).
    pub denied: u64,
    /// Outcome bucket totals.
    pub outcomes: OutcomeCounts,
    /// Live precision over executed prefetches, if any resolved.
    pub precision: Option<f64>,
    /// Live recall over observed accesses, if any resolved.
    pub recall: Option<f64>,
    /// Live waste ratio over executed prefetches, if any resolved.
    pub waste_ratio: Option<f64>,
    /// Budget scheduler counters.
    pub budget: SchedulerBudgetStats,
    /// Prefetch cache counters.
    pub cache: CacheStats,
    /// Threshold currently in force.
    pub threshold: f64,
    /// Adjustment windows the controller has closed.
    pub controller_windows: u64,
    /// Closed windows whose drained samples produced a recalibrated
    /// threshold.
    pub recalibrations: u64,
    /// Closed windows whose samples were degenerate or infeasible, so the
    /// threshold held.
    pub recalibration_holds: u64,
}

/// The full budget-aware precompute execution subsystem.
#[derive(Debug)]
pub struct PrecomputeSystem {
    engine: DecisionEngine,
    scheduler: PrefetchScheduler,
    cache: PrefetchCache,
    tracker: OutcomeTracker,
    controller: AdaptiveThresholdController,
    admission: AdmissionOrder,
    recalibrate_from_outcomes: bool,
    recalibrations: u64,
    recalibration_holds: u64,
    payload_bytes: usize,
}

impl PrecomputeSystem {
    /// Builds the subsystem from `config`.
    ///
    /// # Panics
    ///
    /// Panics when any component configuration is invalid (see the
    /// component constructors).
    pub fn new(config: SystemConfig) -> Self {
        let controller =
            AdaptiveThresholdController::new(config.initial_threshold, config.controller);
        Self {
            engine: DecisionEngine::new(controller.policy()),
            scheduler: PrefetchScheduler::new(config.budget),
            cache: PrefetchCache::new(config.cache),
            tracker: OutcomeTracker::new(),
            controller,
            admission: config.admission,
            recalibrate_from_outcomes: config.recalibrate_from_outcomes,
            recalibrations: 0,
            recalibration_holds: 0,
            payload_bytes: config.payload_bytes,
        }
    }

    /// Handles one wave of batched predictions at traffic time `now`:
    /// decides per prediction, admits the wave's prefetch intents against
    /// the budget in the configured [`AdmissionOrder`], executes admitted
    /// prefetches into the cache, and registers every decision for outcome
    /// resolution. Returns the decisions in input order.
    ///
    /// A user whose previous session never resolved is resolved first as
    /// "ended without access" so decisions cannot leak. A wave containing
    /// the same user twice is split at the repeat — the earlier segment is
    /// admitted and recorded first, so the repeat sweeps the user's earlier
    /// decision exactly as it would across waves (priority admission then
    /// ranks within each unique-user segment).
    pub fn handle_scores(&mut self, predictions: &[Prediction], now: i64) -> Vec<Decision> {
        let mut decisions = Vec::with_capacity(predictions.len());
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut segment_start = 0usize;
        for (i, prediction) in predictions.iter().enumerate() {
            if !seen.insert(prediction.user_id.0) {
                decisions.extend(self.handle_unique_wave(&predictions[segment_start..i], now));
                seen.clear();
                seen.insert(prediction.user_id.0);
                segment_start = i;
            }
        }
        decisions.extend(self.handle_unique_wave(&predictions[segment_start..], now));
        decisions
    }

    /// [`PrecomputeSystem::handle_scores`] for a wave with unique users.
    fn handle_unique_wave(&mut self, predictions: &[Prediction], now: i64) -> Vec<Decision> {
        let mut decisions = Vec::with_capacity(predictions.len());
        for prediction in predictions {
            if self.tracker.pending_decision(prediction.user_id).is_some() {
                let _ = self.resolve_session(prediction.user_id, now, false);
            }
            decisions.push(self.engine.decide(prediction, now));
        }
        // One admission pass over the wave's prefetch intents: under
        // priority order a low bucket is spent on the highest-probability
        // candidates instead of whichever happened to arrive first.
        let candidates: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.action == Action::Prefetch)
            .map(|(i, _)| i)
            .collect();
        let probabilities: Vec<f64> = candidates
            .iter()
            .map(|&i| decisions[i].probability)
            .collect();
        let admissions = self
            .scheduler
            .admit_wave(now, &probabilities, self.admission);
        for (&i, admission) in candidates.iter().zip(&admissions) {
            match admission {
                AdmitResult::Admitted => {
                    self.cache.insert(
                        decisions[i].user_id,
                        Bytes::from(vec![0u8; self.payload_bytes]),
                        now,
                    );
                }
                AdmitResult::DeniedBudget | AdmitResult::DeniedInflight => {
                    decisions[i].action = Action::Denied;
                }
            }
        }
        for decision in &decisions {
            self.tracker.record(*decision);
        }
        decisions
    }

    /// Resolves the pending decision for `user` against the session's
    /// ground truth at time `now`. Consumes the cached payload (a prefetch
    /// that resolves — used or not — frees its cache slot and its inflight
    /// budget slot), classifies the outcome, and feeds the adaptive
    /// controller. Returns `None` when the user has no pending decision.
    pub fn resolve_session(&mut self, user: UserId, now: i64, accessed: bool) -> Option<Outcome> {
        let decision = self.tracker.pending_decision(user)?;
        let payload_served = if decision.action == Action::Prefetch {
            let payload = self.cache.take(user, now);
            self.scheduler.complete_one();
            payload.is_some()
        } else {
            false
        };
        let outcome = self
            .tracker
            .resolve(user, accessed, payload_served)
            .expect("pending decision just observed");
        if self.controller.observe(outcome).is_some() {
            self.engine.set_policy(self.controller.policy());
            if self.recalibrate_from_outcomes {
                self.on_window_resolved();
            }
        } else if self.recalibrate_from_outcomes
            && self.tracker.samples_len()
                >= (8 * self.controller.config().window).min(crate::outcome::MAX_RETAINED_SAMPLES)
        {
            // The controller's window only advances on *prefetch* outcomes,
            // so a threshold stuck too high starves it and the loop would
            // deadlock at zero prefetches. Resolved skips still carry
            // (score, label) pairs though — once enough pile up without a
            // window close, recalibrate from them anyway so a saturated
            // threshold can find its way back to a live operating point.
            self.on_window_resolved();
        }
        Some(outcome)
    }

    /// The learned feedback loop, fired once per closed controller window
    /// (and as a starvation fallback when samples pile up without one):
    /// drains the outcome tracker's (score, label) samples and re-fits the
    /// policy threshold for the recorded precision target on them. A
    /// successful fit moves the operating point (clamped to the
    /// controller's safe band); a degenerate window — all-positive,
    /// all-negative, or an infeasible target — refuses to refit and the
    /// threshold *holds* at whatever the proportional controller chose.
    /// Returns the recalibrated threshold when one was applied.
    pub fn on_window_resolved(&mut self) -> Option<f64> {
        let samples = self.tracker.drain_samples();
        let scores: Vec<f64> = samples.iter().map(|s| s.score).collect();
        let labels: Vec<bool> = samples.iter().map(|s| s.label).collect();
        match self.controller.policy().recalibrate(&scores, &labels) {
            Some(refit) => {
                self.controller.set_threshold(refit.threshold());
                self.engine.set_policy(self.controller.policy());
                self.recalibrations += 1;
                Some(self.controller.threshold())
            }
            None => {
                self.recalibration_holds += 1;
                None
            }
        }
    }

    /// The decision engine (e.g. for
    /// [`DecisionEngine::score_and_decide`]-style wiring or inspection).
    pub fn decision_engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The budget scheduler.
    pub fn scheduler(&self) -> &PrefetchScheduler {
        &self.scheduler
    }

    /// The prefetch cache.
    pub fn cache(&self) -> &PrefetchCache {
        &self.cache
    }

    /// The outcome tracker.
    pub fn tracker(&self) -> &OutcomeTracker {
        &self.tracker
    }

    /// The adaptive controller.
    pub fn controller(&self) -> &AdaptiveThresholdController {
        &self.controller
    }

    /// Snapshot of every live metric.
    pub fn report(&self) -> SystemReport {
        let counts = self.tracker.counts();
        let budget = self.scheduler.stats();
        SystemReport {
            decisions: self.engine.stats(),
            denied: budget.denied_budget + budget.denied_inflight,
            outcomes: counts,
            precision: counts.precision(),
            recall: counts.recall(),
            waste_ratio: counts.waste_ratio(),
            budget,
            cache: self.cache.stats(),
            threshold: self.controller.threshold(),
            controller_windows: self.controller.windows_closed(),
            recalibrations: self.recalibrations,
            recalibration_holds: self.recalibration_holds,
        }
    }

    /// Checks the subsystem invariants: outcome conservation, budget never
    /// overdrawn, and cross-component books (admitted = executed prefetch
    /// decisions = cache insertions).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tracker.check_conservation()?;
        self.scheduler.check_invariants()?;
        let admitted = self.scheduler.stats().admitted;
        let inserted = self.cache.stats().insertions;
        if admitted != inserted {
            return Err(format!(
                "admitted {admitted} prefetches but inserted {inserted} payloads"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config() -> SystemConfig {
        SystemConfig {
            initial_threshold: 0.5,
            budget: BudgetConfig {
                capacity_units: 400.0,
                refill_units_per_sec: 50.0,
                cost_per_prefetch_units: 10.0,
                max_inflight: 64,
            },
            cache: CacheConfig {
                shards: 4,
                capacity_per_shard: 256,
                ttl_secs: 600,
            },
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 100,
                gain: 0.4,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            admission: AdmissionOrder::Fifo,
            recalibrate_from_outcomes: false,
            payload_bytes: 64,
        }
    }

    fn prediction(id: u64, p: f64) -> Prediction {
        Prediction {
            user_id: UserId(id),
            probability: p,
        }
    }

    #[test]
    fn end_to_end_wave_resolves_with_conservation() {
        let mut system = PrecomputeSystem::new(config());
        let wave: Vec<Prediction> = (0..10)
            .map(|i| prediction(i, if i % 2 == 0 { 0.9 } else { 0.1 }))
            .collect();
        let decisions = system.handle_scores(&wave, 1_000);
        assert_eq!(decisions.len(), 10);
        assert_eq!(
            decisions
                .iter()
                .filter(|d| d.action == Action::Prefetch)
                .count(),
            5
        );
        system.check_invariants().unwrap();
        // Resolve: even users (prefetched) accessed, odd did not.
        for i in 0..10u64 {
            let outcome = system
                .resolve_session(UserId(i), 1_010, i % 2 == 0)
                .unwrap();
            match i % 2 {
                0 => assert_eq!(outcome, Outcome::Hit),
                _ => assert_eq!(outcome, Outcome::CorrectSkip),
            }
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert_eq!(report.outcomes.resolved(), 10);
        assert_eq!(report.precision, Some(1.0));
        assert_eq!(report.recall, Some(1.0));
        assert_eq!(report.waste_ratio, Some(0.0));
        assert_eq!(report.cache.hits, 5);
        assert_eq!(system.scheduler().inflight(), 0);
        assert!(system.cache().is_empty());
    }

    #[test]
    fn budget_exhaustion_downgrades_to_denied() {
        let mut system = PrecomputeSystem::new(SystemConfig {
            budget: BudgetConfig {
                capacity_units: 30.0,
                refill_units_per_sec: 0.0,
                cost_per_prefetch_units: 10.0,
                max_inflight: 64,
            },
            ..config()
        });
        let wave: Vec<Prediction> = (0..8).map(|i| prediction(i, 0.9)).collect();
        let decisions = system.handle_scores(&wave, 0);
        let admitted = decisions
            .iter()
            .filter(|d| d.action == Action::Prefetch)
            .count();
        let denied = decisions
            .iter()
            .filter(|d| d.action == Action::Denied)
            .count();
        assert_eq!(admitted, 3, "bucket holds exactly 3 prefetches");
        assert_eq!(denied, 5);
        system.check_invariants().unwrap();
        // A denied decision for an accessed session is a missed access.
        for i in 0..8u64 {
            let _ = system.resolve_session(UserId(i), 5, true).unwrap();
        }
        let counts = system.tracker().counts();
        assert_eq!(counts.hits, 3);
        assert_eq!(counts.missed_accesses, 5);
        system.check_invariants().unwrap();
    }

    #[test]
    fn expired_payload_counts_against_precision() {
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(1, 0.9)], 0);
        // Resolve long after the 600 s TTL.
        let outcome = system.resolve_session(UserId(1), 10_000, true).unwrap();
        assert_eq!(outcome, Outcome::ExpiredPrefetch);
        assert_eq!(system.report().precision, Some(0.0));
        system.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_user_within_one_wave_sweeps_the_earlier_decision() {
        // The same user twice in a single wave must behave like two waves:
        // the first decision is admitted, recorded, then swept as "ended
        // without access" when the repeat arrives — not a panic.
        let mut system = PrecomputeSystem::new(config());
        let wave = [
            prediction(7, 0.9),
            prediction(8, 0.9),
            prediction(7, 0.9),
            prediction(7, 0.1),
        ];
        let decisions = system.handle_scores(&wave, 0);
        assert_eq!(decisions.len(), 4);
        assert_eq!(decisions[0].action, Action::Prefetch);
        assert_eq!(decisions[2].action, Action::Prefetch);
        assert_eq!(decisions[3].action, Action::Skip);
        system.check_invariants().unwrap();
        let counts = system.tracker().counts();
        // User 7's first two decisions were swept as wasted prefetches; the
        // third is pending alongside user 8's.
        assert_eq!(counts.wasted_prefetches, 2);
        assert_eq!(system.tracker().pending_len(), 2);
    }

    #[test]
    fn unresolved_previous_session_is_swept_on_the_next_wave() {
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(7, 0.9)], 0);
        // The ground truth for session 1 never arrived; session 2 starts.
        let second = system.handle_scores(&[prediction(7, 0.9)], 100);
        assert_eq!(second.len(), 1);
        system.check_invariants().unwrap();
        let counts = system.tracker().counts();
        // The orphaned prefetch resolved as waste; the new one is pending.
        assert_eq!(counts.wasted_prefetches, 1);
        assert_eq!(system.tracker().pending_len(), 1);
    }

    #[test]
    fn priority_admission_turns_a_tight_budget_into_more_hits() {
        // A bucket that affords 2 prefetches per wave, waves of 4 intents
        // whose probabilities are honest (P(access) = score). FIFO spends
        // the bucket on arrival order; priority on the best scores.
        let tight = |admission| {
            PrecomputeSystem::new(SystemConfig {
                initial_threshold: 0.1,
                budget: BudgetConfig {
                    capacity_units: 20.0,
                    refill_units_per_sec: 0.0,
                    cost_per_prefetch_units: 10.0,
                    max_inflight: 64,
                },
                admission,
                ..config()
            })
        };
        let wave: Vec<Prediction> = [0.2, 0.95, 0.3, 0.9]
            .iter()
            .enumerate()
            .map(|(i, &p)| prediction(i as u64, p))
            .collect();

        let mut fifo = tight(AdmissionOrder::Fifo);
        let fifo_decisions = fifo.handle_scores(&wave, 0);
        assert_eq!(fifo_decisions[0].action, Action::Prefetch);
        assert_eq!(fifo_decisions[1].action, Action::Prefetch);
        assert_eq!(fifo_decisions[2].action, Action::Denied);
        assert_eq!(fifo_decisions[3].action, Action::Denied);

        let mut priority = tight(AdmissionOrder::Priority);
        let priority_decisions = priority.handle_scores(&wave, 0);
        assert_eq!(priority_decisions[0].action, Action::Denied);
        assert_eq!(priority_decisions[1].action, Action::Prefetch);
        assert_eq!(priority_decisions[2].action, Action::Denied);
        assert_eq!(priority_decisions[3].action, Action::Prefetch);

        // Ground truth: exactly the two highest scores accessed. Priority
        // converts the same budget into strictly more hits.
        for (i, accessed) in [false, true, false, true].iter().enumerate() {
            fifo.resolve_session(UserId(i as u64), 5, *accessed)
                .unwrap();
            priority
                .resolve_session(UserId(i as u64), 5, *accessed)
                .unwrap();
        }
        assert_eq!(fifo.tracker().counts().hits, 1);
        assert_eq!(priority.tracker().counts().hits, 2);
        assert_eq!(
            fifo.scheduler().stats().admitted,
            priority.scheduler().stats().admitted,
            "equal budget spent"
        );
        fifo.check_invariants().unwrap();
        priority.check_invariants().unwrap();
    }

    #[test]
    fn window_close_recalibrates_the_threshold_from_drained_samples() {
        // Honest scores (P(access | score) = score), window of 50. With
        // recalibration on, every closed window drains (score, label)
        // samples and re-fits the threshold for the 0.7 target.
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.05,
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 50,
                gain: 0.2,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            recalibrate_from_outcomes: true,
            budget: BudgetConfig {
                capacity_units: 1e9,
                refill_units_per_sec: 1e6,
                cost_per_prefetch_units: 1.0,
                max_inflight: 1_000_000,
            },
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let mut now = 0i64;
        for step in 0..30_000u64 {
            now += 1;
            let score: f64 = rng.gen();
            let accessed = rng.gen::<f64>() < score;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert!(report.controller_windows > 10);
        assert!(
            report.recalibrations > 10,
            "windows should recalibrate ({} of {})",
            report.recalibrations,
            report.controller_windows
        );
        // Honest uniform scores: precision at threshold t is (1 + t) / 2,
        // so defending 0.7 needs t ≈ 0.4 — the refit must find that
        // neighbourhood from outcomes alone.
        assert!(
            (report.threshold - 0.4).abs() < 0.15,
            "recalibrated threshold {} should sit near 0.4",
            report.threshold
        );
        let last = system.controller().last_snapshot().unwrap();
        assert!(
            (last.observed_precision - 0.7).abs() < 0.15,
            "last window precision {} should track the target",
            last.observed_precision
        );
    }

    #[test]
    fn sample_triggered_recalibration_unsticks_a_saturated_threshold() {
        // The threshold starts at the max clamp: nothing prefetches, so the
        // controller window (prefetch outcomes only) never closes. Resolved
        // skips still carry (score, label) pairs — after 8 × window samples
        // pile up the system recalibrates from them and the threshold
        // returns to a live operating point instead of deadlocking.
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.99,
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 20,
                gain: 0.2,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            recalibrate_from_outcomes: true,
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(11);
        let mut now = 0i64;
        for step in 0..400u64 {
            now += 1;
            // Honest scores capped below the stuck threshold.
            let score: f64 = rng.gen::<f64>() * 0.9;
            let accessed = rng.gen::<f64>() < score;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        let report = system.report();
        assert!(
            report.recalibrations > 0,
            "the starvation fallback must recalibrate"
        );
        assert!(
            report.threshold < 0.9,
            "threshold {} should have left saturation",
            report.threshold
        );
        assert!(
            report.budget.admitted > 0,
            "prefetches must flow again after the rescue"
        );
        system.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_windows_hold_the_recalibrated_threshold() {
        // Every session accesses: windows are all-positive, which carries
        // no calibration signal — the refit must refuse and the threshold
        // hold instead of collapsing to the lowest observed score.
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.5,
            controller: ControllerConfig {
                target_precision: 0.7,
                window: 10,
                gain: 0.0001,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            recalibrate_from_outcomes: true,
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut now = 0i64;
        for step in 0..200u64 {
            now += 1;
            // Scores above the threshold so prefetches execute; labels all
            // positive.
            let score = 0.6 + 0.39 * rng.gen::<f64>();
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, true).unwrap();
        }
        let report = system.report();
        assert!(report.controller_windows >= 10);
        assert_eq!(report.recalibrations, 0);
        assert_eq!(report.recalibration_holds, report.controller_windows);
        // The threshold never collapsed toward the minimum: with an
        // all-but-zero gain the only possible large move was a (refused)
        // recalibration reset.
        assert!(
            (report.threshold - 0.5).abs() < 0.05,
            "threshold {} must hold near 0.5 on degenerate windows",
            report.threshold
        );
        system.check_invariants().unwrap();
    }

    #[test]
    fn cache_expiry_accounting_matches_outcome_conservation() {
        // Two prefetches: one resolves within TTL (hit), one long after
        // (expired). The cache's expired/evicted split must line up with
        // the tracker's outcome buckets, under exact conservation.
        let mut system = PrecomputeSystem::new(config());
        system.handle_scores(&[prediction(1, 0.9), prediction(2, 0.9)], 0);
        assert_eq!(
            system.resolve_session(UserId(1), 10, true),
            Some(Outcome::Hit)
        );
        // TTL is 600 s: user 2's payload expires on discovery at t=10_000.
        assert_eq!(
            system.resolve_session(UserId(2), 10_000, true),
            Some(Outcome::ExpiredPrefetch)
        );
        let report = system.report();
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.expirations, 1);
        assert_eq!(
            report.cache.lru_evictions, 0,
            "expiry must not count as eviction"
        );
        assert_eq!(report.outcomes.hits, 1);
        assert_eq!(report.outcomes.expired_prefetches, 1);
        // Conservation: every decision in exactly one bucket, books balanced.
        system.check_invariants().unwrap();
        assert_eq!(report.outcomes.resolved(), 2);
    }

    #[test]
    fn adaptive_loop_holds_target_precision_on_drifting_traffic() {
        // Scores uniform; P(access | score) = score^2 in the first phase
        // (hard traffic: high scores over-promise), then = score in the
        // second (scores become honest). The controller must track the
        // target through the shift.
        let target = 0.7;
        let mut system = PrecomputeSystem::new(SystemConfig {
            initial_threshold: 0.3,
            budget: BudgetConfig {
                capacity_units: 1e9,
                refill_units_per_sec: 1e6,
                cost_per_prefetch_units: 1.0,
                max_inflight: 1_000_000,
            },
            cache: CacheConfig {
                shards: 8,
                capacity_per_shard: 1 << 20,
                ttl_secs: 1_000,
            },
            controller: ControllerConfig {
                target_precision: target,
                window: 250,
                gain: 0.5,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            admission: AdmissionOrder::Fifo,
            recalibrate_from_outcomes: false,
            payload_bytes: 8,
        });
        let mut rng = StdRng::seed_from_u64(42);
        let mut now = 0i64;
        for step in 0..120_000u64 {
            now += 1;
            let score: f64 = rng.gen();
            let p_access = if step < 60_000 { score * score } else { score };
            let accessed = rng.gen::<f64>() < p_access;
            system.handle_scores(&[prediction(step, score)], now);
            system.resolve_session(UserId(step), now, accessed).unwrap();
        }
        system.check_invariants().unwrap();
        let report = system.report();
        assert!(report.controller_windows > 20);
        // The *last window* precision — the live operating point — holds
        // the target within the paper-style tolerance.
        let last = system.controller().last_snapshot().unwrap();
        assert!(
            (last.observed_precision - target).abs() < 0.1,
            "last window precision {} should track target {target}",
            last.observed_precision
        );
    }
}
