//! Sharded storage for precomputed payloads.
//!
//! A prefetch materializes the activity's data *before* the user asks for
//! it; the [`PrefetchCache`] is where that payload waits. Entries carry a
//! TTL (precomputed data goes stale) and each shard is LRU-bounded (the
//! cache competes for the same memory as everything else on the device or
//! edge tier). Keys are user ids — one outstanding payload per user,
//! matching the one-decision-per-session-start flow.

use bytes::Bytes;
use parking_lot::Mutex;
use pp_data::schema::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Every time cumulative LRU evictions cross another multiple of this
/// stride, one `EvictionStorm` event is emitted — a bounded-rate signal
/// that inserts are displacing live payloads.
pub const EVICTION_STORM_STRIDE: u64 = 64;

/// Cache sizing and freshness configuration.
///
/// # Examples
///
/// ```
/// use pp_precompute::CacheConfig;
///
/// let config = CacheConfig { shards: 4, capacity_per_shard: 1_024, ttl_secs: 900 };
/// assert!(config.ttl_secs > 0);
/// assert_eq!(CacheConfig::default().shards, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Maximum payloads per shard (LRU beyond that).
    pub capacity_per_shard: usize,
    /// Seconds a payload stays servable after insertion.
    pub ttl_secs: i64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity_per_shard: 4_096,
            ttl_secs: 1_800,
        }
    }
}

/// Running counters of the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Payloads inserted.
    pub insertions: u64,
    /// Insertions that replaced a payload already held for the user.
    pub replacements: u64,
    /// Takes that returned a fresh payload.
    pub hits: u64,
    /// Takes that found nothing for the user.
    pub misses: u64,
    /// Takes that found only an expired payload (dropped, not served).
    pub expirations: u64,
    /// Payloads evicted by the per-shard LRU bound.
    pub lru_evictions: u64,
}

#[derive(Debug)]
struct Entry {
    payload: Bytes,
    expires_at: i64,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    /// tick → user id, oldest-touched first.
    lru: BTreeMap<u64, u64>,
    next_tick: u64,
}

/// What one `Shard::insert` did, for the stats ledger.
#[derive(Debug, Default)]
struct InsertEffects {
    replaced: bool,
    /// Still-fresh payloads displaced by the capacity bound.
    lru_evicted: u64,
    /// Already-expired payloads dropped while making room: these were dead
    /// before the bound hit them, so they count as expirations, not
    /// evictions — otherwise the eviction counter blames memory pressure
    /// for staleness and the expired/evicted split stops matching the
    /// outcome accounting.
    expired: u64,
}

impl Shard {
    fn insert(
        &mut self,
        user: u64,
        payload: Bytes,
        expires_at: i64,
        capacity: usize,
        now: i64,
    ) -> InsertEffects {
        let tick = self.next_tick;
        self.next_tick += 1;
        let replaced = match self.map.insert(
            user,
            Entry {
                payload,
                expires_at,
                tick,
            },
        ) {
            Some(old) => {
                self.lru.remove(&old.tick);
                true
            }
            None => false,
        };
        self.lru.insert(tick, user);
        let mut effects = InsertEffects {
            replaced,
            ..InsertEffects::default()
        };
        while self.map.len() > capacity {
            let (&oldest, _) = self.lru.iter().next().expect("lru tracks map");
            let victim = self.lru.remove(&oldest).expect("tick present");
            let entry = self.map.remove(&victim).expect("lru entry backed by map");
            if entry.expires_at <= now {
                effects.expired += 1;
            } else {
                effects.lru_evicted += 1;
            }
        }
        effects
    }

    fn take(&mut self, user: u64) -> Option<Entry> {
        let entry = self.map.remove(&user)?;
        self.lru.remove(&entry.tick);
        Some(entry)
    }

    /// Reads without consuming. A fresh entry is touched (its LRU recency
    /// refreshed); an expired entry is dropped *without* a recency touch —
    /// stale data must not look recently useful on its way out.
    fn get(&mut self, user: u64, now: i64) -> GetResult {
        let Some(entry) = self.map.get(&user) else {
            return GetResult::Miss;
        };
        if entry.expires_at <= now {
            let entry = self.map.remove(&user).expect("just observed");
            self.lru.remove(&entry.tick);
            return GetResult::Expired;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.map.get_mut(&user).expect("just observed");
        self.lru.remove(&entry.tick);
        entry.tick = tick;
        self.lru.insert(tick, user);
        GetResult::Fresh(entry.payload.clone())
    }
}

/// Outcome of a non-consuming shard read.
#[derive(Debug)]
enum GetResult {
    Fresh(Bytes),
    Expired,
    Miss,
}

/// A sharded, TTL + LRU bounded store of precomputed payloads.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use pp_data::schema::UserId;
/// use pp_precompute::{CacheConfig, PrefetchCache};
///
/// let cache = PrefetchCache::new(CacheConfig {
///     shards: 2,
///     capacity_per_shard: 8,
///     ttl_secs: 100,
/// });
/// cache.insert(UserId(1), Bytes::from_static(b"payload"), 1_000);
/// // Within the TTL the payload is served (and consumed by `take`)…
/// assert!(cache.take(UserId(1), 1_050).is_some());
/// // …but a payload discovered after its TTL is dropped, not served.
/// cache.insert(UserId(2), Bytes::from_static(b"stale"), 1_000);
/// assert!(cache.take(UserId(2), 1_200).is_none());
/// assert_eq!(cache.stats().expirations, 1);
/// ```
#[derive(Debug)]
pub struct PrefetchCache {
    shards: Vec<Mutex<Shard>>,
    config: CacheConfig,
    stats: Mutex<CacheStats>,
}

impl PrefetchCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless `shards`, `capacity_per_shard` and `ttl_secs` are all
    /// positive.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(
            config.capacity_per_shard > 0,
            "capacity_per_shard must be positive"
        );
        assert!(config.ttl_secs > 0, "ttl_secs must be positive");
        Self {
            shards: (0..config.shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            config,
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The shard a user's payload lives in (same SplitMix64 spread as
    /// [`pp_serving::ShardedStateStore`]).
    pub fn shard_index(&self, user: UserId) -> usize {
        let mut z = user.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Stores the payload prefetched for `user` at time `now`, replacing
    /// any previous payload for the same user; evicts the shard's
    /// least-recently-touched payload when the shard is full. A displaced
    /// payload that had already expired counts as an expiration, not an LRU
    /// eviction — it was dead before the capacity bound touched it.
    pub fn insert(&self, user: UserId, payload: Bytes, now: i64) {
        let obs = crate::obs::PrecomputeObs::global();
        let op = pp_obs::Stopwatch::start();
        let shard = &self.shards[self.shard_index(user)];
        let effects = shard.lock().insert(
            user.0,
            payload,
            now + self.config.ttl_secs,
            self.config.capacity_per_shard,
            now,
        );
        let mut stats = self.stats.lock();
        stats.insertions += 1;
        if effects.replaced {
            stats.replacements += 1;
        }
        let evictions_before = stats.lru_evictions;
        stats.lru_evictions += effects.lru_evicted;
        stats.expirations += effects.expired;
        obs.cache_evicted.add(effects.lru_evicted);
        obs.cache_expired.add(effects.expired);
        // An eviction storm: cumulative LRU evictions crossed another
        // multiple of the storm stride — inserts are displacing live
        // payloads faster than sessions consume them.
        if pp_obs::is_enabled()
            && stats.lru_evictions / EVICTION_STORM_STRIDE
                > evictions_before / EVICTION_STORM_STRIDE
        {
            pp_obs::MetricsRegistry::global().events().record(
                now,
                pp_obs::EventKind::EvictionStorm,
                "prefetch_cache",
                stats.lru_evictions as f64,
            );
        }
        drop(stats);
        op.record(&obs.cache_op_ns);
    }

    /// Reads the payload held for `user` without consuming it. A fresh
    /// payload is returned and its LRU recency refreshed; an expired payload
    /// is dropped on discovery — counted as `expired`, never as an LRU
    /// eviction, and without a recency touch on the way out.
    ///
    /// # Examples
    ///
    /// ```
    /// use bytes::Bytes;
    /// use pp_data::schema::UserId;
    /// use pp_precompute::{CacheConfig, PrefetchCache};
    ///
    /// let cache = PrefetchCache::new(CacheConfig::default());
    /// cache.insert(UserId(9), Bytes::from_static(b"p"), 0);
    /// // `get` peeks: the payload survives repeated reads…
    /// assert!(cache.get(UserId(9), 10).is_some());
    /// assert!(cache.get(UserId(9), 20).is_some());
    /// // …until `take` consumes it.
    /// assert!(cache.take(UserId(9), 30).is_some());
    /// assert!(cache.get(UserId(9), 40).is_none());
    /// ```
    pub fn get(&self, user: UserId, now: i64) -> Option<Bytes> {
        let obs = crate::obs::PrecomputeObs::global();
        let op = pp_obs::Stopwatch::start();
        let shard = &self.shards[self.shard_index(user)];
        let result = shard.lock().get(user.0, now);
        let mut stats = self.stats.lock();
        let payload = match result {
            GetResult::Fresh(payload) => {
                stats.hits += 1;
                obs.cache_hits.inc();
                Some(payload)
            }
            GetResult::Expired => {
                stats.expirations += 1;
                obs.cache_expired.inc();
                None
            }
            GetResult::Miss => {
                stats.misses += 1;
                obs.cache_misses.inc();
                None
            }
        };
        drop(stats);
        op.record(&obs.cache_op_ns);
        payload
    }

    /// Consumes the payload held for `user`, if it is still fresh at `now`.
    /// An expired payload is dropped and reported as `None` — serving stale
    /// precomputed data would be worse than recomputing.
    pub fn take(&self, user: UserId, now: i64) -> Option<Bytes> {
        let obs = crate::obs::PrecomputeObs::global();
        let op = pp_obs::Stopwatch::start();
        let shard = &self.shards[self.shard_index(user)];
        let entry = shard.lock().take(user.0);
        let mut stats = self.stats.lock();
        let payload = match entry {
            Some(entry) if entry.expires_at > now => {
                stats.hits += 1;
                obs.cache_hits.inc();
                Some(entry.payload)
            }
            Some(_) => {
                stats.expirations += 1;
                obs.cache_expired.inc();
                None
            }
            None => {
                stats.misses += 1;
                obs.cache_misses.inc();
                None
            }
        };
        drop(stats);
        op.record(&obs.cache_op_ns);
        payload
    }

    /// Drops every payload already expired at `now`, returning how many
    /// were dropped (counted as expirations).
    ///
    /// # Examples
    ///
    /// ```
    /// use bytes::Bytes;
    /// use pp_data::schema::UserId;
    /// use pp_precompute::{CacheConfig, PrefetchCache};
    ///
    /// let cache = PrefetchCache::new(CacheConfig {
    ///     shards: 1,
    ///     capacity_per_shard: 8,
    ///     ttl_secs: 50,
    /// });
    /// cache.insert(UserId(1), Bytes::from_static(b"old"), 0);   // expires at 50
    /// cache.insert(UserId(2), Bytes::from_static(b"new"), 100); // expires at 150
    /// assert_eq!(cache.purge_expired(120), 1);
    /// assert_eq!(cache.len(), 1);
    /// ```
    pub fn purge_expired(&self, now: i64) -> usize {
        let mut dropped = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let stale: Vec<u64> = shard
                .map
                .iter()
                .filter(|(_, e)| e.expires_at <= now)
                .map(|(&u, _)| u)
                .collect();
            for user in stale {
                shard.take(user);
                dropped += 1;
            }
        }
        self.stats.lock().expirations += dropped as u64;
        dropped
    }

    /// Number of payloads currently held (fresh or not yet purged).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Returns `true` when no payload is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes currently held.
    pub fn stored_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .map
                    .values()
                    .map(|e| e.payload.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Snapshot of the running counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, ttl: i64) -> PrefetchCache {
        PrefetchCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: capacity,
            ttl_secs: ttl,
        })
    }

    #[test]
    fn take_serves_fresh_and_drops_expired() {
        let c = cache(16, 100);
        c.insert(UserId(1), Bytes::from_static(b"payload"), 1_000);
        // Fresh within TTL.
        assert_eq!(
            c.take(UserId(1), 1_099).unwrap(),
            Bytes::from_static(b"payload")
        );
        // A take consumes: second take misses.
        assert!(c.take(UserId(1), 1_099).is_none());
        // Expired at exactly insert + ttl.
        c.insert(UserId(2), Bytes::from_static(b"old"), 1_000);
        assert!(c.take(UserId(2), 1_100).is_none());
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_replaces_per_user() {
        let c = cache(16, 100);
        c.insert(UserId(5), Bytes::from_static(b"v1"), 0);
        c.insert(UserId(5), Bytes::from_static(b"v2"), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.take(UserId(5), 50).unwrap(), Bytes::from_static(b"v2"));
        let stats = c.stats();
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.replacements, 1);
    }

    #[test]
    fn lru_bound_evicts_oldest_payload() {
        let c = cache(3, 1_000);
        for id in 0..3u64 {
            c.insert(UserId(id), Bytes::from(vec![id as u8]), 0);
        }
        c.insert(UserId(9), Bytes::from_static(b"new"), 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().lru_evictions, 1);
        // User 0 was the least recently touched.
        assert!(c.take(UserId(0), 2).is_none());
        assert!(c.take(UserId(9), 2).is_some());
    }

    #[test]
    fn purge_expired_sweeps_only_stale_entries() {
        let c = PrefetchCache::new(CacheConfig {
            shards: 4,
            capacity_per_shard: 8,
            ttl_secs: 50,
        });
        for id in 0..10u64 {
            c.insert(UserId(id), Bytes::from(vec![0u8; 4]), id as i64 * 10);
        }
        // At t=95, entries inserted at t<=40 (expiry <= 90 < 95) are stale:
        // ids 0..=4 expire at 50..=90.
        let dropped = c.purge_expired(95);
        assert_eq!(dropped, 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.stored_bytes(), 20);
        assert!(c.take(UserId(9), 95).is_some());
    }

    #[test]
    fn get_reads_without_consuming_and_refreshes_recency() {
        let c = cache(2, 100);
        c.insert(UserId(1), Bytes::from_static(b"a"), 0);
        c.insert(UserId(2), Bytes::from_static(b"b"), 1);
        // A fresh get does not consume…
        assert_eq!(c.get(UserId(1), 50).unwrap(), Bytes::from_static(b"a"));
        assert_eq!(c.get(UserId(1), 50).unwrap(), Bytes::from_static(b"a"));
        assert_eq!(c.len(), 2);
        // …and refreshes recency: user 2 is now the LRU victim.
        c.insert(UserId(3), Bytes::from_static(b"c"), 2);
        assert!(c.get(UserId(2), 3).is_none());
        assert!(c.get(UserId(1), 3).is_some());
        let stats = c.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.lru_evictions, 1);
    }

    #[test]
    fn expired_entry_on_get_counts_as_expired_and_skips_the_recency_touch() {
        let c = cache(2, 100);
        c.insert(UserId(1), Bytes::from_static(b"old"), 0);
        c.insert(UserId(2), Bytes::from_static(b"young"), 150);
        // User 1's payload expired at t=100; discovering that on get() must
        // count as `expired`, not `evicted`, and must not refresh recency —
        // the entry is dropped outright.
        assert!(c.get(UserId(1), 200).is_none());
        let stats = c.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.lru_evictions, 0);
        assert_eq!(c.len(), 1);
        // The fresh entry is untouched and the freed slot is reusable
        // without an eviction.
        c.insert(UserId(3), Bytes::from_static(b"new"), 200);
        assert_eq!(c.stats().lru_evictions, 0);
        assert!(c.get(UserId(2), 200).is_some());
        assert!(c.get(UserId(3), 200).is_some());
    }

    #[test]
    fn lru_displacement_of_an_expired_entry_counts_as_expiration() {
        let c = cache(2, 10);
        c.insert(UserId(1), Bytes::from_static(b"dead"), 0); // expires at 10
        c.insert(UserId(2), Bytes::from_static(b"live"), 95);
        // At t=100 the shard is full and user 1's payload is long expired:
        // displacing it is an expiration, not a capacity eviction.
        c.insert(UserId(3), Bytes::from_static(b"new"), 100);
        let stats = c.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.lru_evictions, 0);
        // Displacing the still-fresh user 2 at t=100 *is* an eviction.
        c.insert(UserId(4), Bytes::from_static(b"newer"), 100);
        let stats = c.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.lru_evictions, 1);
    }

    #[test]
    fn users_spread_across_shards() {
        let c = PrefetchCache::new(CacheConfig {
            shards: 8,
            capacity_per_shard: 1_000,
            ttl_secs: 10,
        });
        let mut counts = [0usize; 8];
        for id in 0..800u64 {
            counts[c.shard_index(UserId(id))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (40..=200).contains(&count),
                "shard {shard} holds {count} of 800 users"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ttl_secs must be positive")]
    fn zero_ttl_panics() {
        let _ = cache(4, 0);
    }
}
