//! Budget-constrained prefetch admission.
//!
//! A prefetch is not free: it costs the lookups, bytes and compute of
//! actually materializing the activity's data. The [`PrefetchScheduler`]
//! admits prefetches from a token bucket denominated in the abstract cost
//! units of `pp-serving::cost` — [`prefetch_cost_units`] converts a
//! [`ServingProfile`] through [`CostWeights`], so the budget speaks the
//! same language as the §9 serving-cost model — plus a max-inflight cap
//! bounding how much speculative work may be outstanding at once.
//!
//! Invariant (tested): the bucket level always stays within
//! `[0, capacity_units]` — the budget is *never* overdrawn.

use pp_serving::{CostWeights, ServingProfile};
use serde::{Deserialize, Serialize};

/// Cost of executing one prefetch described by `profile`, in the abstract
/// FLOP-equivalent units of [`CostWeights`] — exactly
/// [`ServingProfile::cost_units`], so the budget and the §9 comparison can
/// never drift apart.
pub fn prefetch_cost_units(profile: &ServingProfile, weights: &CostWeights) -> f64 {
    profile.cost_units(weights)
}

/// Token-bucket budget configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// Bucket size: the largest burst of cost units spendable at once.
    pub capacity_units: f64,
    /// Sustained budget: units replenished per second of traffic time.
    pub refill_units_per_sec: f64,
    /// Cost of one prefetch, in the same units (see
    /// [`prefetch_cost_units`]).
    pub cost_per_prefetch_units: f64,
    /// Maximum prefetches admitted but not yet resolved.
    pub max_inflight: usize,
}

impl BudgetConfig {
    /// Builds a budget whose per-prefetch cost comes from a serving
    /// profile: the bucket holds `burst_prefetches` worth of cost and
    /// refills at `sustained_prefetches_per_sec` worth per second.
    pub fn from_profile(
        profile: &ServingProfile,
        weights: &CostWeights,
        burst_prefetches: f64,
        sustained_prefetches_per_sec: f64,
        max_inflight: usize,
    ) -> Self {
        let cost = prefetch_cost_units(profile, weights);
        Self {
            capacity_units: burst_prefetches * cost,
            refill_units_per_sec: sustained_prefetches_per_sec * cost,
            cost_per_prefetch_units: cost,
            max_inflight,
        }
    }
}

/// In what order a wave of prefetch candidates is offered to the bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionOrder {
    /// Candidates are admitted in arrival order — the first over-budget
    /// candidate and everything after it is denied regardless of score.
    Fifo,
    /// Candidates are admitted highest-probability-first: when the bucket
    /// cannot afford the whole wave, the budget goes to the prefetches most
    /// likely to become hits instead of whichever arrived first.
    Priority,
}

/// Why an admission attempt succeeded or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitResult {
    /// The prefetch was admitted; its cost was deducted and one inflight
    /// slot taken.
    Admitted,
    /// The bucket held fewer tokens than one prefetch costs.
    DeniedBudget,
    /// The max-inflight cap was reached.
    DeniedInflight,
}

/// Running counters of the scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerBudgetStats {
    /// Prefetches admitted.
    pub admitted: u64,
    /// Admissions denied for lack of tokens.
    pub denied_budget: u64,
    /// Admissions denied by the inflight cap.
    pub denied_inflight: u64,
    /// Cost units spent on admitted prefetches.
    pub units_spent: f64,
    /// Cost units made available so far (initial bucket + effective
    /// refills; refill beyond a full bucket is not offered).
    pub units_offered: f64,
    /// Highest concurrent inflight count observed.
    pub max_inflight_seen: usize,
}

impl SchedulerBudgetStats {
    /// Fraction of the offered budget actually spent, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.units_offered <= 0.0 {
            0.0
        } else {
            self.units_spent / self.units_offered
        }
    }
}

/// Token-bucket + max-inflight admission control for prefetches.
#[derive(Debug, Clone)]
pub struct PrefetchScheduler {
    config: BudgetConfig,
    tokens: f64,
    /// Timestamp of the last refill; monotone (stale clocks refill nothing).
    refilled_at: Option<i64>,
    /// Clock ticks per second of traffic time (1.0 = a seconds clock).
    ticks_per_sec: f64,
    inflight: usize,
    stats: SchedulerBudgetStats,
}

impl PrefetchScheduler {
    /// Creates a scheduler with a full bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_units > 0`, `refill_units_per_sec >= 0`,
    /// `max_inflight > 0`, and one prefetch fits in the bucket
    /// (`0 < cost_per_prefetch_units <= capacity_units` — otherwise nothing
    /// could ever be admitted).
    pub fn new(config: BudgetConfig) -> Self {
        assert!(config.capacity_units > 0.0, "capacity must be positive");
        assert!(
            config.refill_units_per_sec >= 0.0,
            "refill rate must be non-negative"
        );
        assert!(config.max_inflight > 0, "max_inflight must be positive");
        assert!(
            config.cost_per_prefetch_units > 0.0
                && config.cost_per_prefetch_units <= config.capacity_units,
            "one prefetch must fit in the bucket"
        );
        Self {
            config,
            tokens: config.capacity_units,
            refilled_at: None,
            ticks_per_sec: 1.0,
            inflight: 0,
            stats: SchedulerBudgetStats {
                units_offered: config.capacity_units,
                ..SchedulerBudgetStats::default()
            },
        }
    }

    /// Creates a scheduler whose `now` timestamps tick `ticks_per_sec`
    /// times per second of traffic time (e.g. `1_000.0` for a milliseconds
    /// clock). Refill is computed from the *fractional* elapsed seconds
    /// `(now − last) / ticks_per_sec`, so N small ticks refill exactly as
    /// much as one big tick — a caller quantizing a fine-grained clock down
    /// to whole seconds would instead silently drop every sub-second
    /// remainder and starve a low-rate bucket.
    ///
    /// # Panics
    ///
    /// Panics on the [`PrefetchScheduler::new`] conditions, or when
    /// `ticks_per_sec` is not positive and finite.
    pub fn with_clock(config: BudgetConfig, ticks_per_sec: f64) -> Self {
        assert!(
            ticks_per_sec > 0.0 && ticks_per_sec.is_finite(),
            "ticks_per_sec must be positive and finite"
        );
        let mut scheduler = Self::new(config);
        scheduler.ticks_per_sec = ticks_per_sec;
        scheduler
    }

    /// The budget configuration.
    pub fn config(&self) -> BudgetConfig {
        self.config
    }

    /// Clock ticks per second of traffic time (1.0 = a seconds clock).
    pub fn ticks_per_sec(&self) -> f64 {
        self.ticks_per_sec
    }

    /// Tokens currently in the bucket.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Prefetches admitted but not yet resolved.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SchedulerBudgetStats {
        self.stats
    }

    fn refill(&mut self, now: i64) {
        // Fractional elapsed-seconds conversion: a sub-second tick (under a
        // fine-grained clock) still refills its exact share, instead of the
        // whole-unit truncation that starves a low-rate bucket.
        let since_secs = match self.refilled_at {
            None => {
                self.refilled_at = Some(now);
                return;
            }
            Some(at) if now <= at => return,
            Some(at) => (now - at) as f64 / self.ticks_per_sec,
        };
        let added = (since_secs * self.config.refill_units_per_sec)
            .min(self.config.capacity_units - self.tokens);
        self.tokens += added;
        self.stats.units_offered += added;
        self.refilled_at = Some(now);
    }

    /// Attempts to admit one prefetch at traffic time `now` (seconds).
    /// Refills the bucket for the elapsed time first, then checks the
    /// inflight cap and the bucket level. On admission the cost is deducted
    /// and one inflight slot is taken; pair with
    /// [`PrefetchScheduler::complete_one`] when the prefetch resolves.
    pub fn try_admit(&mut self, now: i64) -> AdmitResult {
        self.refill(now);
        if self.inflight >= self.config.max_inflight {
            self.stats.denied_inflight += 1;
            return AdmitResult::DeniedInflight;
        }
        if self.tokens < self.config.cost_per_prefetch_units {
            self.stats.denied_budget += 1;
            return AdmitResult::DeniedBudget;
        }
        self.tokens -= self.config.cost_per_prefetch_units;
        self.inflight += 1;
        self.stats.admitted += 1;
        self.stats.units_spent += self.config.cost_per_prefetch_units;
        self.stats.max_inflight_seen = self.stats.max_inflight_seen.max(self.inflight);
        AdmitResult::Admitted
    }

    /// Admits one wave of prefetch candidates at traffic time `now`,
    /// returning one [`AdmitResult`] per candidate *in input order*.
    ///
    /// The bucket refills once for the whole wave, then candidates are
    /// offered in the given [`AdmissionOrder`]: FIFO spends the budget on
    /// whichever candidates come first; `Priority` sorts the wave by
    /// predicted probability (descending, ties kept in arrival order) so a
    /// low bucket goes to the prefetches most likely to become hits. With
    /// enough budget and inflight room for the whole wave the two orders
    /// admit identically.
    pub fn admit_wave(
        &mut self,
        now: i64,
        probabilities: &[f64],
        order: AdmissionOrder,
    ) -> Vec<AdmitResult> {
        let mut indices: Vec<usize> = (0..probabilities.len()).collect();
        if order == AdmissionOrder::Priority {
            // Stable sort: equal probabilities keep FIFO order.
            indices.sort_by(|&a, &b| {
                probabilities[b]
                    .partial_cmp(&probabilities[a])
                    .expect("probabilities must not be NaN")
            });
        }
        let mut results = vec![AdmitResult::DeniedBudget; probabilities.len()];
        for index in indices {
            results[index] = self.try_admit(now);
        }
        results
    }

    /// Releases one inflight slot (an admitted prefetch resolved).
    pub fn complete_one(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// Checks the budget invariants, returning a description of the first
    /// violation: the bucket level must stay in `[0, capacity]` and the
    /// books must balance (`offered == spent + tokens` up to float error).
    pub fn check_invariants(&self) -> Result<(), String> {
        let eps = 1e-6 * self.config.capacity_units.max(1.0);
        if self.tokens < -eps {
            return Err(format!("bucket overdrawn: {} tokens", self.tokens));
        }
        if self.tokens > self.config.capacity_units + eps {
            return Err(format!(
                "bucket overfilled: {} tokens > capacity {}",
                self.tokens, self.config.capacity_units
            ));
        }
        let balance = self.stats.units_offered - self.stats.units_spent - self.tokens;
        if balance.abs() > eps.max(1e-9 * self.stats.units_offered) {
            return Err(format!("budget books off by {balance} units"));
        }
        if self.inflight > self.config.max_inflight {
            return Err(format!(
                "inflight {} exceeds cap {}",
                self.inflight, self.config.max_inflight
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config() -> BudgetConfig {
        BudgetConfig {
            capacity_units: 100.0,
            refill_units_per_sec: 10.0,
            cost_per_prefetch_units: 25.0,
            max_inflight: 3,
        }
    }

    #[test]
    fn burst_is_capped_by_the_bucket_then_by_refill() {
        let mut s = PrefetchScheduler::new(config());
        // Bucket holds 4 prefetches, but the inflight cap stops the 4th.
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        assert_eq!(s.try_admit(0), AdmitResult::DeniedInflight);
        s.complete_one();
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        s.complete_one();
        // Bucket is now empty (4 × 25 spent).
        assert_eq!(s.try_admit(0), AdmitResult::DeniedBudget);
        // 2.5 seconds refills one prefetch's worth.
        assert_eq!(s.try_admit(2), AdmitResult::DeniedBudget);
        assert_eq!(s.try_admit(3), AdmitResult::Admitted);
        assert!(s.check_invariants().is_ok());
        let stats = s.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.denied_budget, 2);
        assert_eq!(stats.denied_inflight, 1);
        assert_eq!(stats.max_inflight_seen, 3);
        assert!((stats.units_spent - 125.0).abs() < 1e-9);
    }

    #[test]
    fn refill_never_overfills_and_ignores_stale_clocks() {
        let mut s = PrefetchScheduler::new(config());
        assert_eq!(s.try_admit(100), AdmitResult::Admitted);
        s.complete_one();
        // A century of idle time refills only back to capacity.
        assert_eq!(s.try_admit(3_200_000_000), AdmitResult::Admitted);
        s.complete_one();
        assert!(s.tokens() <= s.config().capacity_units);
        // Time going backwards refills nothing (and does not panic).
        let before = s.tokens();
        assert_ne!(s.try_admit(0), AdmitResult::DeniedInflight);
        assert!(s.tokens() <= before);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn utilization_is_spent_over_offered() {
        let mut s = PrefetchScheduler::new(config());
        assert_eq!(s.stats().utilization(), 0.0);
        let _ = s.try_admit(0);
        // 25 spent of the 100 offered so far.
        assert!((s.stats().utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_profile_costs_match_the_cost_model() {
        let profile = ServingProfile {
            lookups_per_prediction: 1.0,
            bytes_per_prediction: 512.0,
            model_flops_per_prediction: 1_000.0,
            storage_keys_per_user: 1.0,
            storage_bytes_per_user: 512.0,
        };
        let weights = CostWeights::default();
        let cost = prefetch_cost_units(&profile, &weights);
        assert!((cost - (50_000.0 + 5_120.0 + 1_000.0)).abs() < 1e-9);
        let budget = BudgetConfig::from_profile(&profile, &weights, 8.0, 2.0, 16);
        assert!((budget.capacity_units - 8.0 * cost).abs() < 1e-9);
        assert!((budget.refill_units_per_sec - 2.0 * cost).abs() < 1e-9);
        assert!((budget.cost_per_prefetch_units - cost).abs() < 1e-9);
    }

    #[test]
    fn fractional_clock_refills_sub_second_ticks() {
        // A fine-grained clock with a slow bucket: 2 units/s means one
        // 25-unit prefetch every 12.5 s. Under whole-second truncation a
        // sub-second tick would refill 0 units forever (starvation);
        // fractional conversion credits each tick its exact share.
        let config = BudgetConfig {
            capacity_units: 100.0,
            refill_units_per_sec: 2.0,
            cost_per_prefetch_units: 25.0,
            max_inflight: 16,
        };
        // 8 ticks/s keeps every refill increment (2.0 / 8 = 0.25 units)
        // exactly representable, so the equality edge below is not at the
        // mercy of float accumulation.
        let mut s = PrefetchScheduler::with_clock(config, 8.0);
        assert_eq!(s.ticks_per_sec(), 8.0);
        // Drain the initial bucket (4 × 25 units).
        for _ in 0..4 {
            assert_eq!(s.try_admit(0), AdmitResult::Admitted);
            s.complete_one();
        }
        assert_eq!(s.try_admit(0), AdmitResult::DeniedBudget);
        // 99 single-tick refills: 24.75 units — one tick short of a prefetch.
        let mut now = 0i64;
        for _ in 0..99 {
            now += 1;
            s.refill(now);
        }
        assert!((s.tokens() - 24.75).abs() < 1e-12, "tokens {}", s.tokens());
        assert_eq!(s.try_admit(now), AdmitResult::DeniedBudget);
        // The 100th tick (12.5 s total) crosses the cost line exactly.
        assert_eq!(s.try_admit(now + 1), AdmitResult::Admitted);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn n_small_ticks_refill_exactly_as_much_as_one_big_tick() {
        let config = BudgetConfig {
            capacity_units: 1_000.0,
            // 240 s of refill (888 units) fits inside one prefetch's
            // headroom, so the capacity cap never masks a refill mismatch.
            refill_units_per_sec: 3.7,
            cost_per_prefetch_units: 900.0,
            max_inflight: 8,
        };
        for ticks_per_sec in [1.0, 10.0, 1_000.0] {
            // Spend one prefetch so there is headroom to refill into.
            let mut fine = PrefetchScheduler::with_clock(config, ticks_per_sec);
            let mut coarse = PrefetchScheduler::with_clock(config, ticks_per_sec);
            assert_eq!(fine.try_admit(0), AdmitResult::Admitted);
            assert_eq!(coarse.try_admit(0), AdmitResult::Admitted);
            // 240 ticks as 240 × 1 vs 1 × 240.
            for tick in 1..=240i64 {
                fine.refill(tick);
            }
            coarse.refill(240);
            assert!(
                (fine.tokens() - coarse.tokens()).abs() < 1e-6,
                "clock {ticks_per_sec}: {} vs {}",
                fine.tokens(),
                coarse.tokens()
            );
            assert!(fine.check_invariants().is_ok());
            assert!(coarse.check_invariants().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "ticks_per_sec must be positive")]
    fn zero_clock_scale_panics() {
        let _ = PrefetchScheduler::with_clock(config(), 0.0);
    }

    #[test]
    fn priority_admission_spends_a_low_bucket_on_the_best_candidates() {
        // Bucket affords exactly 2 of 5 candidates.
        let tight = BudgetConfig {
            capacity_units: 50.0,
            refill_units_per_sec: 0.0,
            cost_per_prefetch_units: 25.0,
            max_inflight: 16,
        };
        let probs = [0.3, 0.9, 0.1, 0.8, 0.7];

        let mut fifo = PrefetchScheduler::new(tight);
        let fifo_results = fifo.admit_wave(0, &probs, AdmissionOrder::Fifo);
        assert_eq!(
            fifo_results,
            vec![
                AdmitResult::Admitted, // 0.3 arrived first
                AdmitResult::Admitted, // 0.9
                AdmitResult::DeniedBudget,
                AdmitResult::DeniedBudget,
                AdmitResult::DeniedBudget,
            ]
        );

        let mut priority = PrefetchScheduler::new(tight);
        let priority_results = priority.admit_wave(0, &probs, AdmissionOrder::Priority);
        assert_eq!(
            priority_results,
            vec![
                AdmitResult::DeniedBudget,
                AdmitResult::Admitted, // 0.9: best
                AdmitResult::DeniedBudget,
                AdmitResult::Admitted, // 0.8: second best
                AdmitResult::DeniedBudget,
            ]
        );
        assert!(fifo.check_invariants().is_ok());
        assert!(priority.check_invariants().is_ok());
        assert_eq!(fifo.stats().admitted, priority.stats().admitted);
    }

    #[test]
    fn admission_orders_agree_when_the_budget_is_ample() {
        let probs = [0.9, 0.2, 0.5, 0.7];
        let mut fifo = PrefetchScheduler::new(config());
        let mut priority = PrefetchScheduler::new(config());
        assert_eq!(
            fifo.admit_wave(0, &probs[..3], AdmissionOrder::Fifo),
            priority.admit_wave(0, &probs[..3], AdmissionOrder::Priority),
        );
        // Inflight-cap denials also land on the *lowest*-probability
        // candidates under priority admission.
        let mut s = PrefetchScheduler::new(BudgetConfig {
            capacity_units: 1_000.0,
            refill_units_per_sec: 0.0,
            cost_per_prefetch_units: 1.0,
            max_inflight: 2,
        });
        let results = s.admit_wave(0, &probs, AdmissionOrder::Priority);
        assert_eq!(
            results,
            vec![
                AdmitResult::Admitted,       // 0.9
                AdmitResult::DeniedInflight, // 0.2
                AdmitResult::DeniedInflight, // 0.5
                AdmitResult::Admitted,       // 0.7
            ]
        );
    }

    #[test]
    #[should_panic(expected = "one prefetch must fit")]
    fn oversized_prefetch_panics() {
        let _ = PrefetchScheduler::new(BudgetConfig {
            capacity_units: 10.0,
            refill_units_per_sec: 1.0,
            cost_per_prefetch_units: 11.0,
            max_inflight: 1,
        });
    }

    proptest! {
        #[test]
        fn budget_is_never_overdrawn(
            gaps in prop::collection::vec(0i64..30, 1..300),
            completes in prop::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut s = PrefetchScheduler::new(BudgetConfig {
                capacity_units: 60.0,
                refill_units_per_sec: 3.0,
                cost_per_prefetch_units: 17.0,
                max_inflight: 4,
            });
            let mut now = 0i64;
            for (i, gap) in gaps.iter().enumerate() {
                now += gap;
                let result = s.try_admit(now);
                prop_assert!(s.check_invariants().is_ok(), "after admit: {:?}", s.check_invariants());
                if result == AdmitResult::Admitted && completes.get(i).copied().unwrap_or(false) {
                    s.complete_one();
                }
                prop_assert!(s.tokens() >= 0.0);
                prop_assert!(s.tokens() <= 60.0 + 1e-6);
                prop_assert!(s.inflight() <= 4);
            }
            let stats = s.stats();
            prop_assert!((stats.units_spent - stats.admitted as f64 * 17.0).abs() < 1e-6);
            prop_assert!(stats.utilization() <= 1.0 + 1e-9);
        }
    }
}
