//! Budget-constrained prefetch admission.
//!
//! A prefetch is not free: it costs the lookups, bytes and compute of
//! actually materializing the activity's data. The [`PrefetchScheduler`]
//! admits prefetches from a token bucket denominated in the abstract cost
//! units of `pp-serving::cost` — [`prefetch_cost_units`] converts a
//! [`ServingProfile`] through [`CostWeights`], so the budget speaks the
//! same language as the §9 serving-cost model — plus a max-inflight cap
//! bounding how much speculative work may be outstanding at once.
//!
//! The bucket can be **shared across activities**
//! ([`PrefetchScheduler::shared`]): each [`Activity`] carries its own
//! per-prefetch cost (different models, different payloads) and spends from
//! the one bucket under a pluggable [`FairnessPolicy`] —
//!
//! * [`FairnessPolicy::Greedy`] — unconstrained: first come (or highest
//!   probability first), first served; one hot activity may drain the
//!   bucket for everyone;
//! * [`FairnessPolicy::GuaranteedShare`] — a floor fraction of the bucket
//!   is reserved per activity: the common pool is contested, but an
//!   activity's reserve refills at its floor share of the budget and only
//!   that activity can spend it, so no activity can be starved;
//! * [`FairnessPolicy::DeficitRoundRobin`] — wave admission splits the
//!   bucket across activities by deficit-weighted round-robin (resolved to
//!   its weighted max-min fixed point): each activity accrues
//!   weight-proportional credit and admits while its credit covers its
//!   cost, so a synchronized wave is split across activities in proportion
//!   to their weights instead of in arrival order.
//!
//! Invariants (tested): the bucket level always stays within
//! `[0, capacity_units]` — the budget is *never* overdrawn under any
//! fairness policy — and per-activity spends always sum to the total bucket
//! drain.

use crate::activity::{Activity, ActivityMap};
use pp_serving::{CostWeights, ServingProfile};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cost of executing one prefetch described by `profile`, in the abstract
/// FLOP-equivalent units of [`CostWeights`] — exactly
/// [`ServingProfile::cost_units`], so the budget and the §9 comparison can
/// never drift apart.
///
/// # Examples
///
/// ```
/// use pp_precompute::prefetch_cost_units;
/// use pp_serving::{CostWeights, ServingProfile};
///
/// let profile = ServingProfile {
///     lookups_per_prediction: 1.0,
///     bytes_per_prediction: 512.0,
///     model_flops_per_prediction: 1_000.0,
///     storage_keys_per_user: 1.0,
///     storage_bytes_per_user: 512.0,
/// };
/// let cost = prefetch_cost_units(&profile, &CostWeights::default());
/// // one lookup (50k) + 512 bytes (5 120) + the model FLOPs
/// assert_eq!(cost, 56_120.0);
/// ```
pub fn prefetch_cost_units(profile: &ServingProfile, weights: &CostWeights) -> f64 {
    profile.cost_units(weights)
}

/// Token-bucket budget configuration.
///
/// # Examples
///
/// ```
/// use pp_precompute::BudgetConfig;
///
/// // A bucket holding 4 prefetches, refilling one per 2.5 s.
/// let config = BudgetConfig {
///     capacity_units: 100.0,
///     refill_units_per_sec: 10.0,
///     cost_per_prefetch_units: 25.0,
///     max_inflight: 8,
/// };
/// assert!(config.cost_per_prefetch_units <= config.capacity_units);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// Bucket size: the largest burst of cost units spendable at once.
    pub capacity_units: f64,
    /// Sustained budget: units replenished per second of traffic time.
    pub refill_units_per_sec: f64,
    /// Cost of one prefetch, in the same units (see
    /// [`prefetch_cost_units`]). For a shared multi-activity bucket this is
    /// the *default* cost, used by the untagged admission path; tagged
    /// admission uses the per-activity costs handed to
    /// [`PrefetchScheduler::shared`].
    pub cost_per_prefetch_units: f64,
    /// Maximum prefetches admitted but not yet resolved.
    pub max_inflight: usize,
}

impl BudgetConfig {
    /// Builds a budget whose per-prefetch cost comes from a serving
    /// profile: the bucket holds `burst_prefetches` worth of cost and
    /// refills at `sustained_prefetches_per_sec` worth per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::BudgetConfig;
    /// use pp_serving::{CostWeights, ServingProfile};
    ///
    /// let profile = ServingProfile {
    ///     lookups_per_prediction: 1.0,
    ///     bytes_per_prediction: 512.0,
    ///     model_flops_per_prediction: 1_000.0,
    ///     storage_keys_per_user: 1.0,
    ///     storage_bytes_per_user: 512.0,
    /// };
    /// let budget = BudgetConfig::from_profile(&profile, &CostWeights::default(), 8.0, 2.0, 16);
    /// assert_eq!(budget.capacity_units, 8.0 * budget.cost_per_prefetch_units);
    /// ```
    pub fn from_profile(
        profile: &ServingProfile,
        weights: &CostWeights,
        burst_prefetches: f64,
        sustained_prefetches_per_sec: f64,
        max_inflight: usize,
    ) -> Self {
        let cost = prefetch_cost_units(profile, weights);
        Self {
            capacity_units: burst_prefetches * cost,
            refill_units_per_sec: sustained_prefetches_per_sec * cost,
            cost_per_prefetch_units: cost,
            max_inflight,
        }
    }
}

/// In what order a wave of prefetch candidates is offered to the bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionOrder {
    /// Candidates are admitted in arrival order — the first over-budget
    /// candidate and everything after it is denied regardless of score.
    Fifo,
    /// Candidates are admitted highest-probability-first: when the bucket
    /// cannot afford the whole wave, the budget goes to the prefetches most
    /// likely to become hits instead of whichever arrived first.
    Priority,
}

/// How a shared bucket arbitrates between activities competing for the
/// same budget. See the [module docs](crate::scheduler) for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FairnessPolicy {
    /// No fairness constraint: candidates spend the shared bucket in
    /// whatever order the [`AdmissionOrder`] produces. Cheapest and
    /// highest-throughput, but one hot activity can starve the others.
    Greedy,
    /// Per-activity guaranteed-share floors: `floors[a]` is the fraction of
    /// the bucket (capacity *and* refill) reserved exclusively for activity
    /// `a`. The unreserved remainder is a common pool contested greedily.
    /// Floors must each be in `[0, 1]` and sum to at most 1.
    GuaranteedShare {
        /// Reserved fraction of the budget per activity (`Σ ≤ 1`).
        floors: ActivityMap<f64>,
    },
    /// Deficit-weighted round-robin across activities inside
    /// [`PrefetchScheduler::admit_wave_tagged`]: each activity accrues
    /// `weights[a]`-proportional credit and admits candidates while its
    /// credit covers its per-prefetch cost, with an activity that runs out
    /// of candidates donating its surplus credit back. Resolved to its
    /// per-wave fixed point (weighted max-min / water-filling over the
    /// available tokens), so a synchronized wave is split across
    /// activities in proportion to their weights *in cost units* instead
    /// of first-come-first-served. Unspent credit of an activity that
    /// still had candidates **persists as deficit into the next wave**
    /// (classic DRR), so an expensive activity whose per-wave fair share
    /// cannot cover one prefetch accumulates credit across waves and
    /// catches up instead of starving; an activity whose queue drains
    /// donates its surplus back. The bucket itself stays one greedy
    /// shared pool. Weights must be positive.
    DeficitRoundRobin {
        /// Relative budget weight per activity (all `> 0`).
        weights: ActivityMap<f64>,
    },
}

impl FairnessPolicy {
    /// Stable snake_case name for reports and logs.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::{ActivityMap, FairnessPolicy};
    ///
    /// assert_eq!(FairnessPolicy::Greedy.name(), "greedy");
    /// let floors = ActivityMap::uniform(0.2);
    /// assert_eq!(FairnessPolicy::GuaranteedShare { floors }.name(), "guaranteed_share");
    /// ```
    pub fn name(&self) -> &'static str {
        match self {
            FairnessPolicy::Greedy => "greedy",
            FairnessPolicy::GuaranteedShare { .. } => "guaranteed_share",
            FairnessPolicy::DeficitRoundRobin { .. } => "deficit_round_robin",
        }
    }

    fn validate(&self) {
        match self {
            FairnessPolicy::Greedy => {}
            FairnessPolicy::GuaranteedShare { floors } => {
                assert!(
                    floors.values().all(|f| (0.0..=1.0).contains(f)),
                    "guaranteed-share floors must be fractions in [0, 1]"
                );
                assert!(
                    floors.values().sum::<f64>() <= 1.0 + 1e-12,
                    "guaranteed-share floors must sum to at most 1"
                );
            }
            FairnessPolicy::DeficitRoundRobin { weights } => {
                assert!(
                    weights.values().all(|w| *w > 0.0 && w.is_finite()),
                    "deficit-round-robin weights must be positive"
                );
            }
        }
    }
}

/// Why an admission attempt succeeded or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitResult {
    /// The prefetch was admitted; its cost was deducted and one inflight
    /// slot taken.
    Admitted,
    /// The bucket (plus the activity's reserve, if any) held fewer tokens
    /// than one prefetch costs.
    DeniedBudget,
    /// The max-inflight cap was reached.
    DeniedInflight,
}

/// Running counters of the scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerBudgetStats {
    /// Prefetches admitted.
    pub admitted: u64,
    /// Admissions denied for lack of tokens.
    pub denied_budget: u64,
    /// Admissions denied by the inflight cap.
    pub denied_inflight: u64,
    /// Cost units spent on admitted prefetches.
    pub units_spent: f64,
    /// Cost units made available so far (initial bucket + effective
    /// refills; refill beyond a full bucket is not offered).
    pub units_offered: f64,
    /// Highest concurrent inflight count observed.
    pub max_inflight_seen: usize,
}

impl SchedulerBudgetStats {
    /// Fraction of the offered budget actually spent, in `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::SchedulerBudgetStats;
    ///
    /// let stats = SchedulerBudgetStats {
    ///     units_spent: 25.0,
    ///     units_offered: 100.0,
    ///     ..SchedulerBudgetStats::default()
    /// };
    /// assert_eq!(stats.utilization(), 0.25);
    /// ```
    pub fn utilization(&self) -> f64 {
        if self.units_offered <= 0.0 {
            0.0
        } else {
            self.units_spent / self.units_offered
        }
    }
}

/// Per-activity slice of the shared budget's ledger: what one activity
/// spent and how often it was turned away. Per-activity *hit* accounting
/// lives in [`crate::outcome::OutcomeTracker::counts_for`], which resolves
/// admitted prefetches against ground truth; together the two form the
/// spend/hit ledger of a shared deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityBudgetStats {
    /// Prefetches admitted for this activity.
    pub admitted: u64,
    /// Admissions denied for lack of tokens.
    pub denied_budget: u64,
    /// Admissions denied by the (global) inflight cap.
    pub denied_inflight: u64,
    /// Cost units this activity drained from the shared bucket.
    pub units_spent: f64,
}

/// Token-bucket + max-inflight admission control for prefetches.
///
/// # Examples
///
/// A single-activity bucket holding two 25-unit prefetches:
///
/// ```
/// use pp_precompute::{AdmitResult, BudgetConfig, PrefetchScheduler};
///
/// let mut scheduler = PrefetchScheduler::new(BudgetConfig {
///     capacity_units: 50.0,
///     refill_units_per_sec: 10.0,
///     cost_per_prefetch_units: 25.0,
///     max_inflight: 8,
/// });
/// assert_eq!(scheduler.try_admit(0), AdmitResult::Admitted);
/// assert_eq!(scheduler.try_admit(0), AdmitResult::Admitted);
/// assert_eq!(scheduler.try_admit(0), AdmitResult::DeniedBudget);
/// // 2.5 s of refill affords the next one.
/// assert_eq!(scheduler.try_admit(3), AdmitResult::Admitted);
/// scheduler.check_invariants().unwrap();
/// ```
///
/// A bucket shared by three activities with guaranteed-share floors:
///
/// ```
/// use pp_precompute::{
///     Activity, ActivityMap, AdmissionOrder, AdmitResult, BudgetConfig, FairnessPolicy,
///     PrefetchScheduler,
/// };
///
/// let mut scheduler = PrefetchScheduler::shared(
///     BudgetConfig {
///         capacity_units: 100.0,
///         refill_units_per_sec: 0.0,
///         cost_per_prefetch_units: 25.0,
///         max_inflight: 16,
///     },
///     ActivityMap::uniform(25.0),
///     FairnessPolicy::GuaranteedShare { floors: ActivityMap::uniform(0.25) },
/// );
/// // MobileTab drains the common pool (25 shared units) and its own
/// // 25-unit reserve, but cannot touch the other activities' reserves.
/// for _ in 0..2 {
///     assert_eq!(
///         scheduler.try_admit_for(Activity::MobileTab, 0),
///         AdmitResult::Admitted
///     );
/// }
/// assert_eq!(
///     scheduler.try_admit_for(Activity::MobileTab, 0),
///     AdmitResult::DeniedBudget
/// );
/// assert_eq!(
///     scheduler.try_admit_for(Activity::Timeshift, 0),
///     AdmitResult::Admitted
/// );
/// scheduler.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchScheduler {
    config: BudgetConfig,
    /// Tokens in the common pool (the whole bucket unless guaranteed-share
    /// reserves carve part of it out).
    tokens: f64,
    /// Guaranteed-share reserves per activity (all zero otherwise).
    reserved: ActivityMap<f64>,
    /// Per-activity per-prefetch cost (uniform for single-activity use).
    costs: ActivityMap<f64>,
    fairness: FairnessPolicy,
    /// Timestamp of the last refill; monotone (stale clocks refill nothing).
    refilled_at: Option<i64>,
    /// Clock ticks per second of traffic time (1.0 = a seconds clock).
    ticks_per_sec: f64,
    inflight: usize,
    /// Inflight prefetches per activity (always sums to `inflight`).
    inflight_by_activity: ActivityMap<usize>,
    /// Per-activity inflight caps, checked after the global cap
    /// (`usize::MAX` = uncapped, the default).
    inflight_caps: ActivityMap<usize>,
    /// Unspent deficit-round-robin credit carried across waves, per
    /// activity (zero for other fairness policies).
    drr_deficit: ActivityMap<f64>,
    stats: SchedulerBudgetStats,
    by_activity: ActivityMap<ActivityBudgetStats>,
}

impl PrefetchScheduler {
    /// Creates a single-activity scheduler with a full bucket (greedy
    /// fairness, uniform costs — exactly the classic token bucket).
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_units > 0`, `refill_units_per_sec >= 0`,
    /// `max_inflight > 0`, and one prefetch fits in the bucket
    /// (`0 < cost_per_prefetch_units <= capacity_units` — otherwise nothing
    /// could ever be admitted).
    pub fn new(config: BudgetConfig) -> Self {
        Self::shared(
            config,
            ActivityMap::uniform(config.cost_per_prefetch_units),
            FairnessPolicy::Greedy,
        )
    }

    /// Creates a scheduler whose one token bucket is **shared** by every
    /// [`Activity`]: `costs[a]` is activity `a`'s per-prefetch cost (derive
    /// it from that activity's serving profile via [`prefetch_cost_units`])
    /// and `fairness` arbitrates contention — see [`FairnessPolicy`].
    ///
    /// Under [`FairnessPolicy::GuaranteedShare`] the bucket starts full
    /// with each reserve at its floor share and the remainder in the common
    /// pool; refill is split the same way.
    ///
    /// # Panics
    ///
    /// Panics on the [`PrefetchScheduler::new`] conditions, when any
    /// activity's cost is not in `(0, capacity_units]`, or when the
    /// fairness policy is malformed (floors outside `[0, 1]` or summing
    /// past 1; non-positive weights).
    pub fn shared(config: BudgetConfig, costs: ActivityMap<f64>, fairness: FairnessPolicy) -> Self {
        assert!(config.capacity_units > 0.0, "capacity must be positive");
        assert!(
            config.refill_units_per_sec >= 0.0,
            "refill rate must be non-negative"
        );
        assert!(config.max_inflight > 0, "max_inflight must be positive");
        assert!(
            config.cost_per_prefetch_units > 0.0
                && config.cost_per_prefetch_units <= config.capacity_units,
            "one prefetch must fit in the bucket"
        );
        assert!(
            costs
                .values()
                .all(|c| *c > 0.0 && *c <= config.capacity_units),
            "every activity's prefetch must fit in the bucket"
        );
        fairness.validate();
        let reserved = match fairness {
            FairnessPolicy::GuaranteedShare { floors } => {
                floors.map(|_, f| f * config.capacity_units)
            }
            _ => ActivityMap::uniform(0.0),
        };
        let shared0 = config.capacity_units - reserved.values().sum::<f64>();
        Self {
            config,
            tokens: shared0,
            reserved,
            costs,
            fairness,
            refilled_at: None,
            ticks_per_sec: 1.0,
            inflight: 0,
            inflight_by_activity: ActivityMap::uniform(0),
            inflight_caps: ActivityMap::uniform(usize::MAX),
            drr_deficit: ActivityMap::uniform(0.0),
            stats: SchedulerBudgetStats {
                units_offered: config.capacity_units,
                ..SchedulerBudgetStats::default()
            },
            by_activity: ActivityMap::uniform(ActivityBudgetStats::default()),
        }
    }

    /// Creates a scheduler whose `now` timestamps tick `ticks_per_sec`
    /// times per second of traffic time (e.g. `1_000.0` for a milliseconds
    /// clock). Refill is computed from the *fractional* elapsed seconds
    /// `(now − last) / ticks_per_sec`, so N small ticks refill exactly as
    /// much as one big tick — a caller quantizing a fine-grained clock down
    /// to whole seconds would instead silently drop every sub-second
    /// remainder and starve a low-rate bucket.
    ///
    /// # Panics
    ///
    /// Panics on the [`PrefetchScheduler::new`] conditions, or when
    /// `ticks_per_sec` is not positive and finite.
    pub fn with_clock(config: BudgetConfig, ticks_per_sec: f64) -> Self {
        assert!(
            ticks_per_sec > 0.0 && ticks_per_sec.is_finite(),
            "ticks_per_sec must be positive and finite"
        );
        let mut scheduler = Self::new(config);
        scheduler.ticks_per_sec = ticks_per_sec;
        scheduler
    }

    /// The budget configuration.
    pub fn config(&self) -> BudgetConfig {
        self.config
    }

    /// The fairness policy arbitrating the shared bucket.
    pub fn fairness(&self) -> FairnessPolicy {
        self.fairness
    }

    /// Per-prefetch cost of `activity`, in bucket units.
    pub fn cost_for(&self, activity: Activity) -> f64 {
        self.costs[activity]
    }

    /// Clock ticks per second of traffic time (1.0 = a seconds clock).
    pub fn ticks_per_sec(&self) -> f64 {
        self.ticks_per_sec
    }

    /// Tokens currently in the bucket (common pool **plus** every
    /// guaranteed-share reserve).
    pub fn tokens(&self) -> f64 {
        self.tokens + self.reserved.values().sum::<f64>()
    }

    /// Tokens currently reserved for `activity` (zero unless the fairness
    /// policy is [`FairnessPolicy::GuaranteedShare`]).
    pub fn reserved_tokens(&self, activity: Activity) -> f64 {
        self.reserved[activity]
    }

    /// Prefetches admitted but not yet resolved.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Prefetches admitted for `activity` but not yet resolved.
    pub fn inflight_for(&self, activity: Activity) -> usize {
        self.inflight_by_activity[activity]
    }

    /// `activity`'s inflight cap (`usize::MAX` when uncapped).
    pub fn max_inflight_for(&self, activity: Activity) -> usize {
        self.inflight_caps[activity]
    }

    /// Caps how many of `activity`'s prefetches may be inflight at once,
    /// on top of the global `max_inflight`. The default (`usize::MAX`)
    /// leaves only the global cap — today's behavior. Lowering a cap below
    /// the activity's current inflight count only affects *new*
    /// admissions; already-inflight prefetches drain normally.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero (a zero cap would silently disable the
    /// activity; configure its policy or weights instead).
    pub fn set_max_inflight_for(&mut self, activity: Activity, cap: usize) {
        assert!(cap > 0, "per-activity inflight cap must be positive");
        self.inflight_caps[activity] = cap;
    }

    /// Unspent [`FairnessPolicy::DeficitRoundRobin`] credit carried for
    /// `activity` from earlier waves (zero under other policies, and for
    /// activities whose queues drained).
    pub fn drr_deficit(&self, activity: Activity) -> f64 {
        self.drr_deficit[activity]
    }

    /// Counters accumulated so far, across all activities.
    pub fn stats(&self) -> SchedulerBudgetStats {
        self.stats
    }

    /// This activity's slice of the shared ledger.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::{Activity, ActivityMap, BudgetConfig, FairnessPolicy, PrefetchScheduler};
    ///
    /// let mut s = PrefetchScheduler::shared(
    ///     BudgetConfig {
    ///         capacity_units: 100.0,
    ///         refill_units_per_sec: 0.0,
    ///         cost_per_prefetch_units: 10.0,
    ///         max_inflight: 8,
    ///     },
    ///     ActivityMap::from_fn(|a| 10.0 * (a.index() + 1) as f64),
    ///     FairnessPolicy::Greedy,
    /// );
    /// s.try_admit_for(Activity::Mpu, 0);
    /// assert_eq!(s.activity_stats(Activity::Mpu).units_spent, 30.0);
    /// assert_eq!(s.activity_stats(Activity::MobileTab).admitted, 0);
    /// ```
    pub fn activity_stats(&self, activity: Activity) -> ActivityBudgetStats {
        self.by_activity[activity]
    }

    fn refill(&mut self, now: i64) {
        // Fractional elapsed-seconds conversion: a sub-second tick (under a
        // fine-grained clock) still refills its exact share, instead of the
        // whole-unit truncation that starves a low-rate bucket.
        let since_secs = match self.refilled_at {
            None => {
                self.refilled_at = Some(now);
                return;
            }
            Some(at) if now <= at => return,
            Some(at) => (now - at) as f64 / self.ticks_per_sec,
        };
        let added = (since_secs * self.config.refill_units_per_sec)
            .min(self.config.capacity_units - self.tokens());
        self.stats.units_offered += added;
        self.refilled_at = Some(now);
        match self.fairness {
            FairnessPolicy::GuaranteedShare { floors } => {
                // Each reserve takes its floor share of the refill, capped
                // at its slice of the capacity; whatever the full reserves
                // decline spills into the common pool (and, if the pool is
                // itself full, back into reserves with headroom — `added`
                // already fits under the total capacity).
                let mut remaining = added;
                for a in Activity::ALL {
                    let cap = floors[a] * self.config.capacity_units;
                    let take = (floors[a] * added).min((cap - self.reserved[a]).max(0.0));
                    self.reserved[a] += take;
                    remaining -= take;
                }
                let shared_cap = self.config.capacity_units
                    - floors.values().sum::<f64>() * self.config.capacity_units;
                let take = remaining.min((shared_cap - self.tokens).max(0.0));
                self.tokens += take;
                remaining -= take;
                for a in Activity::ALL {
                    if remaining <= 0.0 {
                        break;
                    }
                    let cap = floors[a] * self.config.capacity_units;
                    let take = remaining.min((cap - self.reserved[a]).max(0.0));
                    self.reserved[a] += take;
                    remaining -= take;
                }
                // Float dust from the min/max chain stays in the pool so the
                // offered/spent/tokens books balance exactly.
                self.tokens += remaining.max(0.0);
            }
            _ => self.tokens += added,
        }
    }

    /// Attempts to admit one prefetch at traffic time `now` (seconds) on
    /// the default activity ([`Activity::MobileTab`]) — the single-activity
    /// path. See [`PrefetchScheduler::try_admit_for`].
    pub fn try_admit(&mut self, now: i64) -> AdmitResult {
        self.try_admit_for(Activity::MobileTab, now)
    }

    /// Attempts to admit one prefetch for `activity` at traffic time `now`
    /// (seconds). Refills the bucket for the elapsed time first, then
    /// checks the inflight caps (global, then this activity's) and the
    /// funds this activity may draw on (the common pool plus its own
    /// reserve). On admission the activity's cost is deducted — common
    /// pool first, reserve for the remainder — and one inflight slot is
    /// taken; pair with [`PrefetchScheduler::complete_one_for`] when the
    /// prefetch resolves.
    pub fn try_admit_for(&mut self, activity: Activity, now: i64) -> AdmitResult {
        self.refill(now);
        if self.inflight >= self.config.max_inflight
            || self.inflight_by_activity[activity] >= self.inflight_caps[activity]
        {
            self.stats.denied_inflight += 1;
            self.by_activity[activity].denied_inflight += 1;
            return AdmitResult::DeniedInflight;
        }
        let cost = self.costs[activity];
        if self.tokens + self.reserved[activity] < cost {
            self.stats.denied_budget += 1;
            self.by_activity[activity].denied_budget += 1;
            return AdmitResult::DeniedBudget;
        }
        let from_pool = cost.min(self.tokens);
        self.tokens -= from_pool;
        self.reserved[activity] -= cost - from_pool;
        self.inflight += 1;
        self.inflight_by_activity[activity] += 1;
        self.stats.admitted += 1;
        self.stats.units_spent += cost;
        self.stats.max_inflight_seen = self.stats.max_inflight_seen.max(self.inflight);
        let slice = &mut self.by_activity[activity];
        slice.admitted += 1;
        slice.units_spent += cost;
        AdmitResult::Admitted
    }

    /// Admits one wave of single-activity prefetch candidates at traffic
    /// time `now`, returning one [`AdmitResult`] per candidate *in input
    /// order* — [`PrefetchScheduler::admit_wave_tagged`] with every
    /// candidate on the default activity.
    ///
    /// The bucket refills once for the whole wave, then candidates are
    /// offered in the given [`AdmissionOrder`]: FIFO spends the budget on
    /// whichever candidates come first; `Priority` sorts the wave by
    /// predicted probability (descending, ties kept in arrival order) so a
    /// low bucket goes to the prefetches most likely to become hits. With
    /// enough budget and inflight room for the whole wave the two orders
    /// admit identically.
    pub fn admit_wave(
        &mut self,
        now: i64,
        probabilities: &[f64],
        order: AdmissionOrder,
    ) -> Vec<AdmitResult> {
        let candidates: Vec<(Activity, f64)> = probabilities
            .iter()
            .map(|&p| (Activity::MobileTab, p))
            .collect();
        self.admit_wave_tagged(now, &candidates, order)
    }

    /// Admits one wave of `(activity, probability)` prefetch candidates at
    /// traffic time `now`, returning one [`AdmitResult`] per candidate *in
    /// input order*.
    ///
    /// Under [`FairnessPolicy::Greedy`] and
    /// [`FairnessPolicy::GuaranteedShare`] the wave is offered in the given
    /// [`AdmissionOrder`] (globally FIFO, or globally highest probability
    /// first); guaranteed-share reserves then bound how much of it any one
    /// activity can win. Under [`FairnessPolicy::DeficitRoundRobin`] the
    /// wave is first ordered *within* each activity by the
    /// [`AdmissionOrder`] and then interleaved across activities by deficit
    /// round-robin, so the bucket is split weight-proportionally (in cost
    /// units) even when one activity dominates the wave's head.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::{
    ///     Activity, ActivityMap, AdmissionOrder, AdmitResult, BudgetConfig, FairnessPolicy,
    ///     PrefetchScheduler,
    /// };
    ///
    /// // An 80-unit bucket; MobileTab prefetches cost 10, MPU's cost 40.
    /// let mut s = PrefetchScheduler::shared(
    ///     BudgetConfig {
    ///         capacity_units: 80.0,
    ///         refill_units_per_sec: 0.0,
    ///         cost_per_prefetch_units: 40.0,
    ///         max_inflight: 16,
    ///     },
    ///     ActivityMap::from_fn(|a| if a == Activity::Mpu { 40.0 } else { 10.0 }),
    ///     FairnessPolicy::DeficitRoundRobin { weights: ActivityMap::uniform(1.0) },
    /// );
    /// // Eight MobileTab candidates arrived ahead of the one MPU candidate.
    /// // FIFO under greedy fairness would spend all 80 units on MobileTab;
    /// // equal-weight round-robin gives each activity 40 units of credit.
    /// let mut wave = vec![(Activity::MobileTab, 0.9); 8];
    /// wave.push((Activity::Mpu, 0.6));
    /// let results = s.admit_wave_tagged(0, &wave, AdmissionOrder::Fifo);
    /// assert_eq!(results[8], AdmitResult::Admitted);
    /// assert_eq!(s.activity_stats(Activity::Mpu).admitted, 1);
    /// assert_eq!(s.activity_stats(Activity::MobileTab).admitted, 4);
    /// ```
    pub fn admit_wave_tagged(
        &mut self,
        now: i64,
        candidates: &[(Activity, f64)],
        order: AdmissionOrder,
    ) -> Vec<AdmitResult> {
        let mut results = vec![AdmitResult::DeniedBudget; candidates.len()];
        match self.fairness {
            FairnessPolicy::DeficitRoundRobin { weights } => {
                // Per-activity queues, each ordered by the admission order.
                let mut queues: ActivityMap<VecDeque<usize>> =
                    ActivityMap::from_fn(|_| VecDeque::new());
                for index in ordered_indices(candidates, order) {
                    queues[candidates[index].0].push_back(index);
                }
                // Deficit-weighted credit, resolved to its per-wave fixed
                // point: running the classic round-robin quantum loop to
                // completion over one wave and a finite pool hands each
                // contending activity the weighted max-min (water-filling)
                // share of the available tokens — an activity whose queue
                // ends early donates its surplus back, one whose fair share
                // cannot cover even a single prefetch leaves its credit in
                // the pool rather than spending it. Computing that fixed
                // point directly keeps the loop deterministic and O(waves).
                //
                // Deficits persist across waves: credit an activity could
                // not spend last wave (because one prefetch costs more than
                // its share) is honored *first* out of this wave's tokens,
                // and only the remainder is re-split — so a starved
                // expensive activity accumulates toward its cost over
                // successive waves instead of resetting to the same
                // too-small share every time.
                self.refill(now);
                let demand = ActivityMap::from_fn(|a| queues[a].len() as f64 * self.costs[a]);
                // A deficit is only worth what its activity can still use.
                let effective = ActivityMap::from_fn(|a| self.drr_deficit[a].min(demand[a]));
                let carried: f64 = effective.values().sum();
                let mut credit = if carried <= self.tokens {
                    let fresh_demand =
                        ActivityMap::from_fn(|a| (demand[a] - effective[a]).max(0.0));
                    let fresh = weighted_water_fill(&fresh_demand, &weights, self.tokens - carried);
                    ActivityMap::from_fn(|a| effective[a] + fresh[a])
                } else {
                    // Not enough tokens to honor every carried deficit
                    // (possible when direct try_admit_for calls drained the
                    // pool between waves): scale them down pro rata.
                    effective.map(|_, &d| d * (self.tokens / carried))
                };
                // Drain the queues interleaved, one candidate per activity
                // per round, heaviest weight first — budget fairness comes
                // from the credit shares, but the *inflight slots* are a
                // second scarce resource: draining one activity to
                // completion before the next would hand a binding
                // max-inflight cap to whichever activity happens to come
                // first, inverting the weights.
                let mut rotation = Activity::ALL;
                rotation.sort_by(|&a, &b| {
                    weights[b]
                        .partial_cmp(&weights[a])
                        .expect("weights are validated finite")
                });
                let mut starved = ActivityMap::uniform(false);
                loop {
                    let mut any = false;
                    for &a in &rotation {
                        let Some(&index) = queues[a].front() else {
                            continue;
                        };
                        any = true;
                        if credit[a] + 1e-9 * self.costs[a] >= self.costs[a] {
                            let result = self.try_admit_for(a, now);
                            results[index] = result;
                            if result == AdmitResult::Admitted {
                                credit[a] -= self.costs[a];
                            } else if result == AdmitResult::DeniedBudget {
                                starved[a] = true;
                            }
                        } else {
                            // Out of fair-share credit: the tokens still in
                            // the pool belong to the other activities'
                            // shares this wave. Booked as a budget denial.
                            results[index] = AdmitResult::DeniedBudget;
                            self.stats.denied_budget += 1;
                            self.by_activity[a].denied_budget += 1;
                            starved[a] = true;
                        }
                        queues[a].pop_front();
                    }
                    if !any {
                        break;
                    }
                }
                // Bank unspent credit as next wave's deficit for every
                // activity the budget turned away this wave; an activity
                // whose candidates were all served (or that had none)
                // donates its surplus back to the pool. Capped at one
                // bucket so a long drought cannot bank unbounded claims.
                for a in Activity::ALL {
                    self.drr_deficit[a] = if starved[a] {
                        credit[a].max(0.0).min(self.config.capacity_units)
                    } else {
                        0.0
                    };
                }
            }
            FairnessPolicy::Greedy | FairnessPolicy::GuaranteedShare { .. } => {
                for index in ordered_indices(candidates, order) {
                    results[index] = self.try_admit_for(candidates[index].0, now);
                }
            }
        }
        results
    }

    /// Releases one inflight slot on the default activity
    /// ([`Activity::MobileTab`]) — the single-activity path. See
    /// [`PrefetchScheduler::complete_one_for`].
    pub fn complete_one(&mut self) {
        self.complete_one_for(Activity::MobileTab);
    }

    /// Releases one of `activity`'s inflight slots (an admitted prefetch
    /// resolved). A completion with nothing inflight for that activity is
    /// ignored, keeping the global and per-activity books consistent.
    pub fn complete_one_for(&mut self, activity: Activity) {
        if self.inflight_by_activity[activity] > 0 {
            self.inflight_by_activity[activity] -= 1;
            self.inflight -= 1;
        }
    }

    /// Checks the budget invariants, returning a description of the first
    /// violation: the bucket level (pool + reserves) must stay in
    /// `[0, capacity]`, each reserve within its floor slice, the books must
    /// balance (`offered == spent + tokens` up to float error), and the
    /// per-activity spends must sum to the total drain.
    pub fn check_invariants(&self) -> Result<(), String> {
        let eps = 1e-6 * self.config.capacity_units.max(1.0);
        let total = self.tokens();
        if self.tokens < -eps {
            return Err(format!("common pool overdrawn: {} tokens", self.tokens));
        }
        for (activity, &reserve) in self.reserved.iter() {
            if reserve < -eps {
                return Err(format!("{activity} reserve overdrawn: {reserve} tokens"));
            }
            if let FairnessPolicy::GuaranteedShare { floors } = self.fairness {
                let cap = floors[activity] * self.config.capacity_units;
                if reserve > cap + eps {
                    return Err(format!(
                        "{activity} reserve overfilled: {reserve} tokens > floor slice {cap}"
                    ));
                }
            }
        }
        if total > self.config.capacity_units + eps {
            return Err(format!(
                "bucket overfilled: {total} tokens > capacity {}",
                self.config.capacity_units
            ));
        }
        let balance = self.stats.units_offered - self.stats.units_spent - total;
        if balance.abs() > eps.max(1e-9 * self.stats.units_offered) {
            return Err(format!("budget books off by {balance} units"));
        }
        let spent_by_activity: f64 = self.by_activity.values().map(|s| s.units_spent).sum();
        if (spent_by_activity - self.stats.units_spent).abs()
            > eps.max(1e-9 * self.stats.units_spent)
        {
            return Err(format!(
                "per-activity spends ({spent_by_activity}) do not sum to the total drain ({})",
                self.stats.units_spent
            ));
        }
        let admitted_by_activity: u64 = self.by_activity.values().map(|s| s.admitted).sum();
        if admitted_by_activity != self.stats.admitted {
            return Err(format!(
                "per-activity admissions ({admitted_by_activity}) do not sum to the total ({})",
                self.stats.admitted
            ));
        }
        if self.inflight > self.config.max_inflight {
            return Err(format!(
                "inflight {} exceeds cap {}",
                self.inflight, self.config.max_inflight
            ));
        }
        let inflight_by_activity: usize = self.inflight_by_activity.values().sum();
        if inflight_by_activity != self.inflight {
            return Err(format!(
                "per-activity inflight ({inflight_by_activity}) does not sum to the total ({})",
                self.inflight
            ));
        }
        for (activity, &deficit) in self.drr_deficit.iter() {
            if !deficit.is_finite() || deficit < 0.0 || deficit > self.config.capacity_units + eps {
                return Err(format!(
                    "{activity} DRR deficit {deficit} outside [0, capacity]"
                ));
            }
        }
        Ok(())
    }
}

/// Weighted max-min (water-filling) allocation of `avail` tokens across
/// the activities' demands: repeatedly split the remaining tokens among the
/// still-unsatisfied activities in proportion to their weights, capping each
/// at its remaining demand; a capped activity's surplus is redistributed to
/// the rest. The fixed point of deficit-weighted round-robin over one wave.
fn weighted_water_fill(
    demand: &ActivityMap<f64>,
    weights: &ActivityMap<f64>,
    avail: f64,
) -> ActivityMap<f64> {
    let mut alloc = ActivityMap::uniform(0.0f64);
    let mut remaining = avail.max(0.0);
    let mut active: Vec<Activity> = Activity::ALL
        .into_iter()
        .filter(|&a| demand[a] > 0.0)
        .collect();
    while remaining > 1e-12 && !active.is_empty() {
        let weight_sum: f64 = active.iter().map(|&a| weights[a]).sum();
        let round = remaining;
        let mut still_unsatisfied = Vec::new();
        let mut progressed = false;
        for &a in &active {
            let share = round * weights[a] / weight_sum;
            let take = share.min(demand[a] - alloc[a]);
            alloc[a] += take;
            remaining -= take;
            if take > 0.0 {
                progressed = true;
            }
            if alloc[a] < demand[a] - 1e-12 {
                still_unsatisfied.push(a);
            }
        }
        active = still_unsatisfied;
        if !progressed {
            break;
        }
    }
    alloc
}

/// Candidate indices in the order an [`AdmissionOrder`] offers them:
/// arrival order for FIFO, probability-descending (stable) for priority.
fn ordered_indices(candidates: &[(Activity, f64)], order: AdmissionOrder) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..candidates.len()).collect();
    if order == AdmissionOrder::Priority {
        // Stable sort: equal probabilities keep FIFO order.
        indices.sort_by(|&a, &b| {
            candidates[b]
                .1
                .partial_cmp(&candidates[a].1)
                .expect("probabilities must not be NaN")
        });
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config() -> BudgetConfig {
        BudgetConfig {
            capacity_units: 100.0,
            refill_units_per_sec: 10.0,
            cost_per_prefetch_units: 25.0,
            max_inflight: 3,
        }
    }

    #[test]
    fn burst_is_capped_by_the_bucket_then_by_refill() {
        let mut s = PrefetchScheduler::new(config());
        // Bucket holds 4 prefetches, but the inflight cap stops the 4th.
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        assert_eq!(s.try_admit(0), AdmitResult::DeniedInflight);
        s.complete_one();
        assert_eq!(s.try_admit(0), AdmitResult::Admitted);
        s.complete_one();
        // Bucket is now empty (4 × 25 spent).
        assert_eq!(s.try_admit(0), AdmitResult::DeniedBudget);
        // 2.5 seconds refills one prefetch's worth.
        assert_eq!(s.try_admit(2), AdmitResult::DeniedBudget);
        assert_eq!(s.try_admit(3), AdmitResult::Admitted);
        assert!(s.check_invariants().is_ok());
        let stats = s.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.denied_budget, 2);
        assert_eq!(stats.denied_inflight, 1);
        assert_eq!(stats.max_inflight_seen, 3);
        assert!((stats.units_spent - 125.0).abs() < 1e-9);
        // Single-activity use books everything on the default activity.
        let slice = s.activity_stats(Activity::MobileTab);
        assert_eq!(slice.admitted, 5);
        assert!((slice.units_spent - 125.0).abs() < 1e-9);
        assert_eq!(
            s.activity_stats(Activity::Mpu),
            ActivityBudgetStats::default()
        );
    }

    #[test]
    fn refill_never_overfills_and_ignores_stale_clocks() {
        let mut s = PrefetchScheduler::new(config());
        assert_eq!(s.try_admit(100), AdmitResult::Admitted);
        s.complete_one();
        // A century of idle time refills only back to capacity.
        assert_eq!(s.try_admit(3_200_000_000), AdmitResult::Admitted);
        s.complete_one();
        assert!(s.tokens() <= s.config().capacity_units);
        // Time going backwards refills nothing (and does not panic).
        let before = s.tokens();
        assert_ne!(s.try_admit(0), AdmitResult::DeniedInflight);
        assert!(s.tokens() <= before);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn utilization_is_spent_over_offered() {
        let mut s = PrefetchScheduler::new(config());
        assert_eq!(s.stats().utilization(), 0.0);
        let _ = s.try_admit(0);
        // 25 spent of the 100 offered so far.
        assert!((s.stats().utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_profile_costs_match_the_cost_model() {
        let profile = ServingProfile {
            lookups_per_prediction: 1.0,
            bytes_per_prediction: 512.0,
            model_flops_per_prediction: 1_000.0,
            storage_keys_per_user: 1.0,
            storage_bytes_per_user: 512.0,
        };
        let weights = CostWeights::default();
        let cost = prefetch_cost_units(&profile, &weights);
        assert!((cost - (50_000.0 + 5_120.0 + 1_000.0)).abs() < 1e-9);
        let budget = BudgetConfig::from_profile(&profile, &weights, 8.0, 2.0, 16);
        assert!((budget.capacity_units - 8.0 * cost).abs() < 1e-9);
        assert!((budget.refill_units_per_sec - 2.0 * cost).abs() < 1e-9);
        assert!((budget.cost_per_prefetch_units - cost).abs() < 1e-9);
    }

    #[test]
    fn fractional_clock_refills_sub_second_ticks() {
        // A fine-grained clock with a slow bucket: 2 units/s means one
        // 25-unit prefetch every 12.5 s. Under whole-second truncation a
        // sub-second tick would refill 0 units forever (starvation);
        // fractional conversion credits each tick its exact share.
        let config = BudgetConfig {
            capacity_units: 100.0,
            refill_units_per_sec: 2.0,
            cost_per_prefetch_units: 25.0,
            max_inflight: 16,
        };
        // 8 ticks/s keeps every refill increment (2.0 / 8 = 0.25 units)
        // exactly representable, so the equality edge below is not at the
        // mercy of float accumulation.
        let mut s = PrefetchScheduler::with_clock(config, 8.0);
        assert_eq!(s.ticks_per_sec(), 8.0);
        // Drain the initial bucket (4 × 25 units).
        for _ in 0..4 {
            assert_eq!(s.try_admit(0), AdmitResult::Admitted);
            s.complete_one();
        }
        assert_eq!(s.try_admit(0), AdmitResult::DeniedBudget);
        // 99 single-tick refills: 24.75 units — one tick short of a prefetch.
        let mut now = 0i64;
        for _ in 0..99 {
            now += 1;
            s.refill(now);
        }
        assert!((s.tokens() - 24.75).abs() < 1e-12, "tokens {}", s.tokens());
        assert_eq!(s.try_admit(now), AdmitResult::DeniedBudget);
        // The 100th tick (12.5 s total) crosses the cost line exactly.
        assert_eq!(s.try_admit(now + 1), AdmitResult::Admitted);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn n_small_ticks_refill_exactly_as_much_as_one_big_tick() {
        let config = BudgetConfig {
            capacity_units: 1_000.0,
            // 240 s of refill (888 units) fits inside one prefetch's
            // headroom, so the capacity cap never masks a refill mismatch.
            refill_units_per_sec: 3.7,
            cost_per_prefetch_units: 900.0,
            max_inflight: 8,
        };
        for ticks_per_sec in [1.0, 10.0, 1_000.0] {
            // Spend one prefetch so there is headroom to refill into.
            let mut fine = PrefetchScheduler::with_clock(config, ticks_per_sec);
            let mut coarse = PrefetchScheduler::with_clock(config, ticks_per_sec);
            assert_eq!(fine.try_admit(0), AdmitResult::Admitted);
            assert_eq!(coarse.try_admit(0), AdmitResult::Admitted);
            // 240 ticks as 240 × 1 vs 1 × 240.
            for tick in 1..=240i64 {
                fine.refill(tick);
            }
            coarse.refill(240);
            assert!(
                (fine.tokens() - coarse.tokens()).abs() < 1e-6,
                "clock {ticks_per_sec}: {} vs {}",
                fine.tokens(),
                coarse.tokens()
            );
            assert!(fine.check_invariants().is_ok());
            assert!(coarse.check_invariants().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "ticks_per_sec must be positive")]
    fn zero_clock_scale_panics() {
        let _ = PrefetchScheduler::with_clock(config(), 0.0);
    }

    #[test]
    fn priority_admission_spends_a_low_bucket_on_the_best_candidates() {
        // Bucket affords exactly 2 of 5 candidates.
        let tight = BudgetConfig {
            capacity_units: 50.0,
            refill_units_per_sec: 0.0,
            cost_per_prefetch_units: 25.0,
            max_inflight: 16,
        };
        let probs = [0.3, 0.9, 0.1, 0.8, 0.7];

        let mut fifo = PrefetchScheduler::new(tight);
        let fifo_results = fifo.admit_wave(0, &probs, AdmissionOrder::Fifo);
        assert_eq!(
            fifo_results,
            vec![
                AdmitResult::Admitted, // 0.3 arrived first
                AdmitResult::Admitted, // 0.9
                AdmitResult::DeniedBudget,
                AdmitResult::DeniedBudget,
                AdmitResult::DeniedBudget,
            ]
        );

        let mut priority = PrefetchScheduler::new(tight);
        let priority_results = priority.admit_wave(0, &probs, AdmissionOrder::Priority);
        assert_eq!(
            priority_results,
            vec![
                AdmitResult::DeniedBudget,
                AdmitResult::Admitted, // 0.9: best
                AdmitResult::DeniedBudget,
                AdmitResult::Admitted, // 0.8: second best
                AdmitResult::DeniedBudget,
            ]
        );
        assert!(fifo.check_invariants().is_ok());
        assert!(priority.check_invariants().is_ok());
        assert_eq!(fifo.stats().admitted, priority.stats().admitted);
    }

    #[test]
    fn admission_orders_agree_when_the_budget_is_ample() {
        let probs = [0.9, 0.2, 0.5, 0.7];
        let mut fifo = PrefetchScheduler::new(config());
        let mut priority = PrefetchScheduler::new(config());
        assert_eq!(
            fifo.admit_wave(0, &probs[..3], AdmissionOrder::Fifo),
            priority.admit_wave(0, &probs[..3], AdmissionOrder::Priority),
        );
        // Inflight-cap denials also land on the *lowest*-probability
        // candidates under priority admission.
        let mut s = PrefetchScheduler::new(BudgetConfig {
            capacity_units: 1_000.0,
            refill_units_per_sec: 0.0,
            cost_per_prefetch_units: 1.0,
            max_inflight: 2,
        });
        let results = s.admit_wave(0, &probs, AdmissionOrder::Priority);
        assert_eq!(
            results,
            vec![
                AdmitResult::Admitted,       // 0.9
                AdmitResult::DeniedInflight, // 0.2
                AdmitResult::DeniedInflight, // 0.5
                AdmitResult::Admitted,       // 0.7
            ]
        );
    }

    #[test]
    #[should_panic(expected = "one prefetch must fit")]
    fn oversized_prefetch_panics() {
        let _ = PrefetchScheduler::new(BudgetConfig {
            capacity_units: 10.0,
            refill_units_per_sec: 1.0,
            cost_per_prefetch_units: 11.0,
            max_inflight: 1,
        });
    }

    // ---- shared multi-activity bucket -----------------------------------

    /// A shared bucket with per-activity costs 10 / 20 / 40.
    fn shared_config(capacity: f64, refill: f64) -> (BudgetConfig, ActivityMap<f64>) {
        (
            BudgetConfig {
                capacity_units: capacity,
                refill_units_per_sec: refill,
                cost_per_prefetch_units: 40.0,
                max_inflight: 1_000,
            },
            ActivityMap::from_fn(|a| match a {
                Activity::MobileTab => 10.0,
                Activity::Timeshift => 20.0,
                Activity::Mpu => 40.0,
            }),
        )
    }

    #[test]
    fn greedy_shared_bucket_lets_one_activity_take_everything() {
        let (config, costs) = shared_config(100.0, 0.0);
        let mut s = PrefetchScheduler::shared(config, costs, FairnessPolicy::Greedy);
        // MobileTab drains the whole bucket before anyone else shows up.
        for _ in 0..10 {
            assert_eq!(
                s.try_admit_for(Activity::MobileTab, 0),
                AdmitResult::Admitted
            );
        }
        assert_eq!(
            s.try_admit_for(Activity::Timeshift, 0),
            AdmitResult::DeniedBudget
        );
        assert_eq!(s.try_admit_for(Activity::Mpu, 0), AdmitResult::DeniedBudget);
        assert_eq!(s.activity_stats(Activity::MobileTab).admitted, 10);
        assert!((s.activity_stats(Activity::MobileTab).units_spent - 100.0).abs() < 1e-9);
        assert_eq!(s.activity_stats(Activity::Timeshift).denied_budget, 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn guaranteed_share_reserves_survive_an_aggressor() {
        let (config, costs) = shared_config(100.0, 0.0);
        // 20% of the bucket reserved per activity; 40% common pool.
        let floors = ActivityMap::uniform(0.2);
        let mut s =
            PrefetchScheduler::shared(config, costs, FairnessPolicy::GuaranteedShare { floors });
        assert!((s.tokens() - 100.0).abs() < 1e-9);
        assert!((s.reserved_tokens(Activity::Mpu) - 20.0).abs() < 1e-9);
        // MobileTab can win the common pool (40) plus its own reserve (20):
        // 6 × 10 units — and not an Mpu/Timeshift token more.
        for _ in 0..6 {
            assert_eq!(
                s.try_admit_for(Activity::MobileTab, 0),
                AdmitResult::Admitted
            );
        }
        assert_eq!(
            s.try_admit_for(Activity::MobileTab, 0),
            AdmitResult::DeniedBudget
        );
        // The other activities still hold their guaranteed floors: the
        // 20-unit Timeshift prefetch fits its reserve exactly, while the
        // 40-unit MPU prefetch exceeds its 20-unit reserve (the common
        // pool the aggressor drained is gone).
        assert_eq!(
            s.try_admit_for(Activity::Timeshift, 0),
            AdmitResult::Admitted
        );
        assert_eq!(s.try_admit_for(Activity::Mpu, 0), AdmitResult::DeniedBudget);
        assert!(s.reserved_tokens(Activity::Timeshift).abs() < 1e-9);
        s.check_invariants().unwrap();
    }

    #[test]
    fn guaranteed_share_refill_feeds_the_floors() {
        let (config, costs) = shared_config(100.0, 10.0);
        let floors = ActivityMap::uniform(0.25); // no common pool headroom: 25 % shared
        let mut s =
            PrefetchScheduler::shared(config, costs, FairnessPolicy::GuaranteedShare { floors });
        // Drain everything MobileTab can reach (pool 25 + reserve 25 = 5 × 10).
        for _ in 0..5 {
            assert_eq!(
                s.try_admit_for(Activity::MobileTab, 0),
                AdmitResult::Admitted
            );
        }
        assert_eq!(
            s.try_admit_for(Activity::MobileTab, 0),
            AdmitResult::DeniedBudget
        );
        // 4 s of refill = 40 units: 10 to each reserve (capped at its floor
        // slice) and 10 to the pool. MobileTab's reserve was empty, so it
        // gets its 10 units back regardless of contention.
        assert_eq!(
            s.try_admit_for(Activity::MobileTab, 4),
            AdmitResult::Admitted
        );
        // Full reserves decline their share: Timeshift's reserve was full
        // (25), so the refill must not overfill it.
        assert!(s.reserved_tokens(Activity::Timeshift) <= 25.0 + 1e-9);
        s.check_invariants().unwrap();
    }

    #[test]
    fn deficit_round_robin_splits_a_wave_by_weight() {
        let (config, costs) = shared_config(120.0, 0.0);
        let mut s = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::DeficitRoundRobin {
                weights: ActivityMap::uniform(1.0),
            },
        );
        // A wave dominated by MobileTab candidates, 120 units in the bucket.
        // Equal weights split the budget in cost units — 40 per activity,
        // with Timeshift's unused 20 redistributed — where FIFO would have
        // handed the whole bucket to the eight MobileTab arrivals at the
        // head.
        let mut wave: Vec<(Activity, f64)> = vec![(Activity::MobileTab, 0.9); 8];
        wave.push((Activity::Timeshift, 0.8));
        wave.push((Activity::Mpu, 0.7));
        let results = s.admit_wave_tagged(0, &wave, AdmissionOrder::Fifo);
        assert_eq!(results[9], AdmitResult::Admitted, "MPU (40 units) admitted");
        assert_eq!(
            results[8],
            AdmitResult::Admitted,
            "Timeshift (20 units) admitted"
        );
        // MobileTab's share: its 40 plus all of Timeshift's 20-unit surplus
        // (MPU's 40-unit demand was already satisfied by its own share).
        assert_eq!(s.activity_stats(Activity::MobileTab).admitted, 6);
        assert!((s.stats().units_spent - 120.0).abs() < 1e-9);
        s.check_invariants().unwrap();
    }

    #[test]
    fn deficit_round_robin_deficits_accumulate_until_a_starved_activity_catches_up() {
        // A 60-unit bucket refilling 10 units/s; every second a wave of
        // eight cheap MobileTab candidates (10 units each) plus one
        // expensive MPU candidate (40 units), equal weights. MPU's
        // per-wave fair share never covers one prefetch, so per-wave
        // credit reset starved it forever; persistent deficits let it
        // accumulate its share across waves and admit periodically.
        let (config, costs) = shared_config(60.0, 10.0);
        let mut s = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::DeficitRoundRobin {
                weights: ActivityMap::uniform(1.0),
            },
        );
        let mut mpu_admitted = 0u64;
        let mut mobile_admitted = 0u64;
        for now in 0..12i64 {
            let mut wave: Vec<(Activity, f64)> = vec![(Activity::MobileTab, 0.9); 8];
            wave.push((Activity::Mpu, 0.8));
            let results = s.admit_wave_tagged(now, &wave, AdmissionOrder::Fifo);
            for (&(activity, _), result) in wave.iter().zip(&results) {
                if *result == AdmitResult::Admitted {
                    s.complete_one_for(activity);
                    match activity {
                        Activity::Mpu => mpu_admitted += 1,
                        _ => mobile_admitted += 1,
                    }
                }
            }
            s.check_invariants().unwrap();
            assert!(
                s.drr_deficit(Activity::Mpu) <= config.capacity_units,
                "deficit must stay bounded"
            );
        }
        assert!(
            mpu_admitted >= 2,
            "starved MPU must catch up over successive waves, admitted {mpu_admitted}"
        );
        assert!(
            mobile_admitted > mpu_admitted,
            "MobileTab keeps the majority share ({mobile_admitted} vs {mpu_admitted})"
        );
    }

    #[test]
    fn drained_queues_donate_their_deficit_back() {
        // MPU banks a deficit while starved, then stops showing up: the
        // next wave it sits out must clear its claim so the others get
        // the whole bucket again.
        let (config, costs) = shared_config(60.0, 10.0);
        let mut s = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::DeficitRoundRobin {
                weights: ActivityMap::uniform(1.0),
            },
        );
        let mut wave: Vec<(Activity, f64)> = vec![(Activity::MobileTab, 0.9); 8];
        wave.push((Activity::Mpu, 0.8));
        s.admit_wave_tagged(0, &wave, AdmissionOrder::Fifo);
        assert!(
            s.drr_deficit(Activity::Mpu) > 0.0,
            "starved MPU banks a deficit"
        );
        // MPU absent: its deficit is donated, not hoarded.
        let mobile_only: Vec<(Activity, f64)> = vec![(Activity::MobileTab, 0.9); 8];
        s.admit_wave_tagged(1, &mobile_only, AdmissionOrder::Fifo);
        assert_eq!(s.drr_deficit(Activity::Mpu), 0.0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn per_activity_inflight_cap_binds_only_its_activity() {
        let (config, costs) = shared_config(1_000.0, 0.0);
        let mut s = PrefetchScheduler::shared(config, costs, FairnessPolicy::Greedy);
        s.set_max_inflight_for(Activity::Timeshift, 2);
        assert_eq!(s.max_inflight_for(Activity::Timeshift), 2);
        assert_eq!(s.max_inflight_for(Activity::MobileTab), usize::MAX);
        for _ in 0..2 {
            assert_eq!(
                s.try_admit_for(Activity::Timeshift, 0),
                AdmitResult::Admitted
            );
        }
        // Timeshift is at its cap; the others are untouched.
        assert_eq!(
            s.try_admit_for(Activity::Timeshift, 0),
            AdmitResult::DeniedInflight
        );
        assert_eq!(
            s.try_admit_for(Activity::MobileTab, 0),
            AdmitResult::Admitted
        );
        assert_eq!(s.inflight_for(Activity::Timeshift), 2);
        assert_eq!(s.inflight(), 3);
        assert_eq!(s.activity_stats(Activity::Timeshift).denied_inflight, 1);
        s.check_invariants().unwrap();
        // Completing a Timeshift prefetch frees its slot.
        s.complete_one_for(Activity::Timeshift);
        assert_eq!(
            s.try_admit_for(Activity::Timeshift, 0),
            AdmitResult::Admitted
        );
        s.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "per-activity inflight cap must be positive")]
    fn zero_per_activity_cap_panics() {
        let (config, costs) = shared_config(100.0, 0.0);
        let mut s = PrefetchScheduler::shared(config, costs, FairnessPolicy::Greedy);
        s.set_max_inflight_for(Activity::Mpu, 0);
    }

    #[test]
    fn deficit_round_robin_respects_admission_order_within_an_activity() {
        let (config, costs) = shared_config(40.0, 0.0);
        let mut s = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::DeficitRoundRobin {
                weights: ActivityMap::uniform(1.0),
            },
        );
        // Two MobileTab candidates fit (the other 20 units go to Timeshift);
        // priority order must pick the two best MobileTab scores.
        let wave = [
            (Activity::MobileTab, 0.2),
            (Activity::MobileTab, 0.9),
            (Activity::MobileTab, 0.8),
            (Activity::Timeshift, 0.5),
        ];
        let results = s.admit_wave_tagged(0, &wave, AdmissionOrder::Priority);
        assert_eq!(results[1], AdmitResult::Admitted);
        assert_eq!(results[2], AdmitResult::Admitted);
        assert_eq!(results[3], AdmitResult::Admitted);
        assert_eq!(results[0], AdmitResult::DeniedBudget);
        s.check_invariants().unwrap();
    }

    #[test]
    fn deficit_round_robin_hands_scarce_inflight_slots_to_the_heaviest_weight() {
        // One inflight slot left; ample budget and credit for both
        // candidates. The slot must go to the heaviest-weighted activity,
        // not to whichever activity sorts first in Activity::ALL.
        let (config, costs) = shared_config(1_000.0, 0.0);
        let config = BudgetConfig {
            max_inflight: 1,
            ..config
        };
        let mut s = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::DeficitRoundRobin {
                weights: ActivityMap::from_fn(|a| if a == Activity::Mpu { 3.0 } else { 1.0 }),
            },
        );
        let wave = [(Activity::MobileTab, 0.9), (Activity::Mpu, 0.1)];
        let results = s.admit_wave_tagged(0, &wave, AdmissionOrder::Fifo);
        assert_eq!(
            results[1],
            AdmitResult::Admitted,
            "heaviest weight wins the slot"
        );
        assert_eq!(results[0], AdmitResult::DeniedInflight);
        s.check_invariants().unwrap();
    }

    #[test]
    fn tagged_and_untagged_waves_agree_on_the_default_activity() {
        let probs = [0.9, 0.2, 0.5];
        let mut untagged = PrefetchScheduler::new(config());
        let mut tagged = PrefetchScheduler::new(config());
        let candidates: Vec<(Activity, f64)> =
            probs.iter().map(|&p| (Activity::MobileTab, p)).collect();
        assert_eq!(
            untagged.admit_wave(0, &probs, AdmissionOrder::Priority),
            tagged.admit_wave_tagged(0, &candidates, AdmissionOrder::Priority)
        );
        assert_eq!(untagged.stats(), tagged.stats());
    }

    #[test]
    #[should_panic(expected = "floors must sum to at most 1")]
    fn overcommitted_floors_panic() {
        let (config, costs) = shared_config(100.0, 0.0);
        let _ = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::GuaranteedShare {
                floors: ActivityMap::uniform(0.5),
            },
        );
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_drr_weight_panics() {
        let (config, costs) = shared_config(100.0, 0.0);
        let _ = PrefetchScheduler::shared(
            config,
            costs,
            FairnessPolicy::DeficitRoundRobin {
                weights: ActivityMap::from_fn(|a| if a == Activity::Mpu { 0.0 } else { 1.0 }),
            },
        );
    }

    #[test]
    #[should_panic(expected = "every activity's prefetch must fit")]
    fn oversized_activity_cost_panics() {
        let (config, _) = shared_config(100.0, 0.0);
        let _ = PrefetchScheduler::shared(
            config,
            ActivityMap::from_fn(|a| if a == Activity::Mpu { 101.0 } else { 10.0 }),
            FairnessPolicy::Greedy,
        );
    }

    proptest! {
        #[test]
        fn budget_is_never_overdrawn(
            gaps in prop::collection::vec(0i64..30, 1..300),
            completes in prop::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut s = PrefetchScheduler::new(BudgetConfig {
                capacity_units: 60.0,
                refill_units_per_sec: 3.0,
                cost_per_prefetch_units: 17.0,
                max_inflight: 4,
            });
            let mut now = 0i64;
            for (i, gap) in gaps.iter().enumerate() {
                now += gap;
                let result = s.try_admit(now);
                prop_assert!(s.check_invariants().is_ok(), "after admit: {:?}", s.check_invariants());
                if result == AdmitResult::Admitted && completes.get(i).copied().unwrap_or(false) {
                    s.complete_one();
                }
                prop_assert!(s.tokens() >= 0.0);
                prop_assert!(s.tokens() <= 60.0 + 1e-6);
                prop_assert!(s.inflight() <= 4);
            }
            let stats = s.stats();
            prop_assert!((stats.units_spent - stats.admitted as f64 * 17.0).abs() < 1e-6);
            prop_assert!(stats.utilization() <= 1.0 + 1e-9);
        }

        /// Shared-bucket conservation, the property the acceptance criteria
        /// name: under every fairness policy, for arbitrary interleavings of
        /// tagged admissions, clock gaps and completions, (1) per-activity
        /// spends always sum to the total bucket drain, (2) the books
        /// balance (`offered == spent + tokens`), and (3) no policy admits
        /// past the budget — the bucket level never leaves `[0, capacity]`.
        #[test]
        fn shared_bucket_conserves_under_every_fairness_policy(
            policy_pick in 0u8..3,
            waves in prop::collection::vec(
                prop::collection::vec((0u8..3, 0.0f64..1.0), 0..12),
                1..40,
            ),
            gaps in prop::collection::vec(0i64..20, 1..40),
            priority in any::<bool>(),
        ) {
            let (config, costs) = shared_config(120.0, 4.0);
            let fairness = match policy_pick {
                0 => FairnessPolicy::Greedy,
                1 => FairnessPolicy::GuaranteedShare {
                    floors: ActivityMap::from_fn(|a| match a {
                        Activity::MobileTab => 0.1,
                        Activity::Timeshift => 0.2,
                        Activity::Mpu => 0.4,
                    }),
                },
                _ => FairnessPolicy::DeficitRoundRobin {
                    weights: ActivityMap::from_fn(|a| 1.0 + a.index() as f64),
                },
            };
            let mut s = PrefetchScheduler::shared(config, costs, fairness);
            let order = if priority { AdmissionOrder::Priority } else { AdmissionOrder::Fifo };
            let mut now = 0i64;
            for (wave, gap) in waves.iter().zip(gaps.iter().cycle()) {
                now += gap;
                let candidates: Vec<(Activity, f64)> = wave
                    .iter()
                    .map(|&(a, p)| (Activity::ALL[a as usize], p))
                    .collect();
                let results = s.admit_wave_tagged(now, &candidates, order);
                prop_assert_eq!(results.len(), candidates.len());
                // Release half the admitted slots to keep inflight moving.
                for (i, r) in results.iter().enumerate() {
                    if *r == AdmitResult::Admitted && i % 2 == 0 {
                        s.complete_one_for(candidates[i].0);
                    }
                }
                prop_assert!(
                    s.check_invariants().is_ok(),
                    "{} violated: {:?}",
                    fairness.name(),
                    s.check_invariants()
                );
                prop_assert!(s.tokens() >= -1e-6);
                prop_assert!(s.tokens() <= config.capacity_units + 1e-6);
                // Conservation: Σ per-activity spend == total drain, and the
                // total drain never exceeds what the bucket offered.
                let stats = s.stats();
                let by_activity: f64 = Activity::ALL
                    .iter()
                    .map(|&a| s.activity_stats(a).units_spent)
                    .sum();
                prop_assert!((by_activity - stats.units_spent).abs() < 1e-6);
                prop_assert!(stats.units_spent <= stats.units_offered + 1e-6);
            }
        }

        /// Guaranteed-share floors actually guarantee service: an aggressor
        /// activity hammering the bucket can never deny the floored activity
        /// the admissions its reserve refill pays for.
        #[test]
        fn guaranteed_share_floor_prevents_starvation(
            aggressor_waves in prop::collection::vec(1usize..20, 5..30),
        ) {
            let (config, costs) = shared_config(100.0, 10.0);
            let floors = ActivityMap::from_fn(|a| match a {
                Activity::Mpu => 0.4, // reserve slice: 40 units — one MPU prefetch
                _ => 0.0,
            });
            let mut s = PrefetchScheduler::shared(
                config,
                costs,
                FairnessPolicy::GuaranteedShare { floors },
            );
            let mut now = 0i64;
            let mut mpu_admitted = 0u64;
            for burst in &aggressor_waves {
                // MobileTab floods the bucket…
                for _ in 0..*burst {
                    if s.try_admit_for(Activity::MobileTab, now) == AdmitResult::Admitted {
                        s.complete_one();
                    }
                }
                // …then 10 s pass (100 offered units, 40 of them reserved
                // for MPU) and MPU asks once.
                now += 10;
                if s.try_admit_for(Activity::Mpu, now) == AdmitResult::Admitted {
                    s.complete_one_for(Activity::Mpu);
                    mpu_admitted += 1;
                }
                prop_assert!(s.check_invariants().is_ok());
            }
            // Every post-gap MPU attempt after the first must be admitted:
            // 10 s × 10 units/s × 0.4 floor = one 40-unit MPU prefetch.
            prop_assert!(
                mpu_admitted >= aggressor_waves.len() as u64 - 1,
                "MPU starved: {} of {} admitted",
                mpu_admitted,
                aggressor_waves.len()
            );
        }
    }
}
