//! The activity dimension of a shared precompute deployment.
//!
//! The paper's production setting serves several precompute *activities* out
//! of one resource pool: the MobileTab prefetch that launched first (§9),
//! the Timeshift data queries, and the MPU notification predictions. Each
//! activity has its own traffic, its own model (and therefore its own
//! per-prefetch cost profile), and its own precision operating point — but
//! they all draw from the *same* budget. This module provides the small
//! vocabulary the rest of `pp-precompute` is threaded with:
//!
//! * [`Activity`] — the three activities, mirroring
//!   [`pp_data::schema::DatasetKind`];
//! * [`ActivityMap`] — a dense, `Copy`-friendly map with exactly one slot
//!   per activity (per-activity costs, floors, counters, policies…);
//! * [`jain_index`] — Jain's fairness index, the scalar the mixed-traffic
//!   benchmark reports for "how evenly did the shared budget serve the
//!   activities".

use pp_data::schema::DatasetKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A precompute activity sharing the deployment's resource pool.
///
/// # Examples
///
/// ```
/// use pp_precompute::Activity;
///
/// assert_eq!(Activity::ALL.len(), 3);
/// assert_eq!(Activity::MobileTab.index(), 0);
/// assert_eq!(Activity::from(pp_data::schema::DatasetKind::Mpu), Activity::Mpu);
/// assert_eq!(Activity::Timeshift.to_string(), "Timeshift");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Mobile application tab prefetch (the paper's §9 launch activity).
    MobileTab,
    /// Timeshifted data queries on website load.
    Timeshift,
    /// Mobile-phone-use notification precompute.
    Mpu,
}

impl Activity {
    /// Every activity, in index order — iterate this instead of matching.
    pub const ALL: [Activity; 3] = [Activity::MobileTab, Activity::Timeshift, Activity::Mpu];

    /// Number of activities (the fixed size of an [`ActivityMap`]).
    pub const COUNT: usize = 3;

    /// The dense index of this activity in `[0, Activity::COUNT)`.
    pub fn index(self) -> usize {
        match self {
            Activity::MobileTab => 0,
            Activity::Timeshift => 1,
            Activity::Mpu => 2,
        }
    }

    /// A lowercase identifier suitable for metric names and JSON keys.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_precompute::Activity;
    ///
    /// assert_eq!(Activity::MobileTab.slug(), "mobile_tab");
    /// ```
    pub fn slug(self) -> &'static str {
        match self {
            Activity::MobileTab => "mobile_tab",
            Activity::Timeshift => "timeshift",
            Activity::Mpu => "mpu",
        }
    }
}

impl From<DatasetKind> for Activity {
    fn from(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::MobileTab => Activity::MobileTab,
            DatasetKind::Timeshift => Activity::Timeshift,
            DatasetKind::Mpu => Activity::Mpu,
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activity::MobileTab => write!(f, "MobileTab"),
            Activity::Timeshift => write!(f, "Timeshift"),
            Activity::Mpu => write!(f, "MPU"),
        }
    }
}

/// A dense map with exactly one `T` per [`Activity`].
///
/// This is the shape every per-activity quantity in the crate takes:
/// cost profiles, guaranteed-share floors, spend counters, outcome buckets,
/// threshold controllers. It is `Copy` whenever `T` is, so configurations
/// built from it stay cheap to pass around.
///
/// # Examples
///
/// ```
/// use pp_precompute::{Activity, ActivityMap};
///
/// let mut spend = ActivityMap::uniform(0.0f64);
/// spend[Activity::Mpu] += 7.5;
/// assert_eq!(spend[Activity::Mpu], 7.5);
/// assert_eq!(spend[Activity::MobileTab], 0.0);
///
/// let costs = ActivityMap::from_fn(|a| 10.0 * (a.index() + 1) as f64);
/// assert_eq!(costs.values().sum::<f64>(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityMap<T>(pub(crate) [T; Activity::COUNT]);

impl<T> ActivityMap<T> {
    /// Builds a map by evaluating `f` once per activity, in index order.
    pub fn from_fn(mut f: impl FnMut(Activity) -> T) -> Self {
        ActivityMap([
            f(Activity::MobileTab),
            f(Activity::Timeshift),
            f(Activity::Mpu),
        ])
    }

    /// Builds a map holding a clone of `value` in every slot.
    pub fn uniform(value: T) -> Self
    where
        T: Clone,
    {
        Self::from_fn(|_| value.clone())
    }

    /// Iterates `(activity, &value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Activity, &T)> {
        Activity::ALL.iter().map(move |&a| (a, &self.0[a.index()]))
    }

    /// Iterates the values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.0.iter()
    }

    /// Maps every slot through `f`, keeping the activity association.
    pub fn map<U>(&self, mut f: impl FnMut(Activity, &T) -> U) -> ActivityMap<U> {
        ActivityMap::from_fn(|a| f(a, &self.0[a.index()]))
    }
}

impl<T> std::ops::Index<Activity> for ActivityMap<T> {
    type Output = T;
    fn index(&self, activity: Activity) -> &T {
        &self.0[activity.index()]
    }
}

impl<T> std::ops::IndexMut<Activity> for ActivityMap<T> {
    fn index_mut(&mut self, activity: Activity) -> &mut T {
        &mut self.0[activity.index()]
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]` — `1.0` means perfectly even, `1/n`
/// means one party took everything. An all-zero allocation is reported as
/// `1.0` (nobody got anything; nobody was favoured).
///
/// # Examples
///
/// ```
/// use pp_precompute::jain_index;
///
/// assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|v| *v >= 0.0 && v.is_finite()),
        "jain_index takes non-negative finite allocations"
    );
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq <= 0.0 || values.is_empty() {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip_and_cover_all() {
        for (i, &a) in Activity::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
        assert_eq!(Activity::ALL.len(), Activity::COUNT);
        assert_eq!(Activity::from(DatasetKind::MobileTab), Activity::MobileTab);
        assert_eq!(Activity::from(DatasetKind::Timeshift), Activity::Timeshift);
        assert_eq!(Activity::from(DatasetKind::Mpu), Activity::Mpu);
    }

    #[test]
    fn map_indexing_and_iteration() {
        let mut m = ActivityMap::uniform(0u64);
        m[Activity::Timeshift] = 5;
        assert_eq!(m[Activity::Timeshift], 5);
        assert_eq!(m[Activity::MobileTab], 0);
        let doubled = m.map(|_, v| v * 2);
        assert_eq!(doubled[Activity::Timeshift], 10);
        let collected: Vec<(Activity, u64)> = m.iter().map(|(a, &v)| (a, v)).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (Activity::Timeshift, 5));
        assert_eq!(m.values().sum::<u64>(), 5);
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_index(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[4.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let skewed = jain_index(&[10.0, 1.0, 1.0]);
        assert!(skewed > 1.0 / 3.0 && skewed < 1.0);
        assert_eq!(jain_index(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jain_rejects_negative_allocations() {
        let _ = jain_index(&[1.0, -0.5]);
    }

    #[test]
    fn activity_serde_round_trips() {
        let json = serde_json::to_string(&Activity::Mpu).unwrap();
        let back: Activity = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Activity::Mpu);
    }
}
