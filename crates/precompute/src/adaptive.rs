//! Online threshold control.
//!
//! Offline calibration picks a threshold that hits the precision target on
//! held-out data; live traffic then drifts away from it (cold users arrive,
//! habits shift, score distributions move). The
//! [`AdaptiveThresholdController`] closes the loop: it watches resolved
//! prefetch outcomes in fixed-size windows and nudges the threshold
//! proportionally to the precision error, clamped to a safe band — a tiny
//! integral-free P-controller, which is enough because precision responds
//! monotonically to the threshold.

use crate::outcome::Outcome;
use pp_core::PrecomputePolicy;
use serde::{Deserialize, Serialize};

/// Controller tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// The precision the controller defends.
    pub target_precision: f64,
    /// Resolved prefetches per adjustment window.
    pub window: usize,
    /// Threshold step per unit of precision error.
    pub gain: f64,
    /// Lower clamp for the threshold.
    pub min_threshold: f64,
    /// Upper clamp for the threshold.
    pub max_threshold: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            target_precision: 0.6,
            window: 200,
            gain: 0.25,
            min_threshold: 0.01,
            max_threshold: 0.99,
        }
    }
}

/// One closed adjustment window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Precision observed over the window's resolved prefetches.
    pub observed_precision: f64,
    /// Threshold in force during the window.
    pub threshold_before: f64,
    /// Threshold after the adjustment.
    pub threshold_after: f64,
    /// Resolved prefetches in the window.
    pub prefetches: usize,
}

/// Nudges the decision threshold to hold a precision target online.
#[derive(Debug, Clone)]
pub struct AdaptiveThresholdController {
    config: ControllerConfig,
    threshold: f64,
    window_hits: usize,
    window_prefetches: usize,
    windows_closed: u64,
    last_snapshot: Option<WindowSnapshot>,
}

impl AdaptiveThresholdController {
    /// Creates a controller starting from `initial_threshold`.
    ///
    /// # Panics
    ///
    /// Panics unless the target is a probability, the window is positive,
    /// the gain is positive, and
    /// `0 <= min_threshold <= initial_threshold <= max_threshold <= 1`.
    pub fn new(initial_threshold: f64, config: ControllerConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.target_precision),
            "target precision must be a probability"
        );
        assert!(config.window > 0, "window must be positive");
        assert!(config.gain > 0.0, "gain must be positive");
        assert!(
            0.0 <= config.min_threshold
                && config.min_threshold <= initial_threshold
                && initial_threshold <= config.max_threshold
                && config.max_threshold <= 1.0,
            "thresholds must satisfy 0 <= min <= initial <= max <= 1"
        );
        Self {
            config,
            threshold: initial_threshold,
            window_hits: 0,
            window_prefetches: 0,
            windows_closed: 0,
            last_snapshot: None,
        }
    }

    /// The controller tuning.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// The threshold currently in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The current operating point as a policy (threshold + defended
    /// target), ready to hand to a
    /// [`DecisionEngine`](crate::decision::DecisionEngine).
    pub fn policy(&self) -> PrecomputePolicy {
        PrecomputePolicy::with_threshold_for_target(self.threshold, self.config.target_precision)
    }

    /// Number of adjustment windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// The most recently closed window, if any.
    pub fn last_snapshot(&self) -> Option<WindowSnapshot> {
        self.last_snapshot
    }

    /// Moves the operating point to an externally computed threshold — the
    /// entry point for a recalibration fit on drained outcome samples —
    /// clamped to the controller's safe band. The open adjustment window
    /// keeps accumulating: an external move is a better estimate of the
    /// operating point, not a reason to discard its evidence.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold.clamp(self.config.min_threshold, self.config.max_threshold);
    }

    /// Feeds one resolved outcome. Only executed prefetches advance the
    /// window (skips say nothing about precision). When the window fills,
    /// the threshold moves by `gain × (target − observed)` — precision too
    /// low pushes the threshold *up* (prefetch less, more selectively),
    /// precision above target relaxes it *down* to recover recall — and the
    /// closed window is returned.
    pub fn observe(&mut self, outcome: Outcome) -> Option<WindowSnapshot> {
        match outcome {
            Outcome::Hit => {
                self.window_hits += 1;
                self.window_prefetches += 1;
            }
            Outcome::WastedPrefetch | Outcome::ExpiredPrefetch => {
                self.window_prefetches += 1;
            }
            Outcome::MissedAccess | Outcome::CorrectSkip => return None,
        }
        if self.window_prefetches < self.config.window {
            return None;
        }
        let observed = self.window_hits as f64 / self.window_prefetches as f64;
        let error = self.config.target_precision - observed;
        let before = self.threshold;
        self.threshold = (self.threshold + self.config.gain * error)
            .clamp(self.config.min_threshold, self.config.max_threshold);
        let snapshot = WindowSnapshot {
            observed_precision: observed,
            threshold_before: before,
            threshold_after: self.threshold,
            prefetches: self.window_prefetches,
        };
        self.window_hits = 0;
        self.window_prefetches = 0;
        self.windows_closed += 1;
        self.last_snapshot = Some(snapshot);
        Some(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(window: usize) -> AdaptiveThresholdController {
        AdaptiveThresholdController::new(
            0.5,
            ControllerConfig {
                target_precision: 0.6,
                window,
                gain: 0.25,
                min_threshold: 0.05,
                max_threshold: 0.95,
            },
        )
    }

    #[test]
    fn low_precision_raises_the_threshold() {
        let mut c = controller(4);
        // 1 hit in 4 prefetches: precision 0.25, far below target 0.6.
        assert!(c.observe(Outcome::Hit).is_none());
        assert!(c.observe(Outcome::WastedPrefetch).is_none());
        assert!(c.observe(Outcome::WastedPrefetch).is_none());
        let snapshot = c.observe(Outcome::ExpiredPrefetch).unwrap();
        assert!((snapshot.observed_precision - 0.25).abs() < 1e-12);
        assert!(snapshot.threshold_after > snapshot.threshold_before);
        assert!((c.threshold() - (0.5 + 0.25 * (0.6 - 0.25))).abs() < 1e-12);
        assert_eq!(c.windows_closed(), 1);
    }

    #[test]
    fn high_precision_relaxes_the_threshold() {
        let mut c = controller(4);
        for _ in 0..3 {
            assert!(c.observe(Outcome::Hit).is_none());
        }
        let snapshot = c.observe(Outcome::Hit).unwrap();
        assert!((snapshot.observed_precision - 1.0).abs() < 1e-12);
        assert!(c.threshold() < 0.5, "threshold should relax to buy recall");
    }

    #[test]
    fn skips_and_misses_do_not_advance_the_window() {
        let mut c = controller(2);
        for _ in 0..100 {
            assert!(c.observe(Outcome::CorrectSkip).is_none());
            assert!(c.observe(Outcome::MissedAccess).is_none());
        }
        assert_eq!(c.windows_closed(), 0);
        assert!((c.threshold() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_stays_clamped_forever() {
        let mut c = controller(1);
        // Hammer with pure waste: threshold must stop at the max clamp.
        for _ in 0..200 {
            let _ = c.observe(Outcome::WastedPrefetch);
        }
        assert!((c.threshold() - 0.95).abs() < 1e-12);
        // And pure hits walk it down to the min clamp.
        for _ in 0..200 {
            let _ = c.observe(Outcome::Hit);
        }
        assert!((c.threshold() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn external_threshold_moves_are_clamped_to_the_safe_band() {
        let mut c = controller(4);
        c.set_threshold(0.62);
        assert!((c.threshold() - 0.62).abs() < 1e-12);
        c.set_threshold(1.0);
        assert!((c.threshold() - 0.95).abs() < 1e-12);
        c.set_threshold(0.0);
        assert!((c.threshold() - 0.05).abs() < 1e-12);
        // The open window's evidence is retained: one more waste after the
        // move still closes the 4-wide window with full counts.
        c.set_threshold(0.5);
        for _ in 0..3 {
            assert!(c.observe(Outcome::Hit).is_none());
        }
        let snapshot = c.observe(Outcome::WastedPrefetch).unwrap();
        assert_eq!(snapshot.prefetches, 4);
        assert!((snapshot.threshold_before - 0.5).abs() < 1e-12);
    }

    #[test]
    fn policy_carries_threshold_and_target() {
        let c = controller(8);
        let policy = c.policy();
        assert!((policy.threshold() - 0.5).abs() < 1e-12);
        assert_eq!(policy.target_precision(), Some(0.6));
    }

    #[test]
    fn converges_on_a_synthetic_score_stream() {
        // Scores uniform in [0, 1]; P(access | score s) = s. Precision at
        // threshold t is E[s | s >= t] = (1 + t) / 2, so holding precision
        // 0.75 needs t = 0.5. Start far away at 0.10 and let the controller
        // find it from outcomes alone.
        let mut c = AdaptiveThresholdController::new(
            0.10,
            ControllerConfig {
                target_precision: 0.75,
                window: 400,
                gain: 0.5,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
        );
        // Deterministic xorshift stream.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..400_000 {
            let score = next();
            if score >= c.threshold() {
                let accessed = next() < score;
                let _ = c.observe(if accessed {
                    Outcome::Hit
                } else {
                    Outcome::WastedPrefetch
                });
            }
        }
        assert!(c.windows_closed() > 50);
        assert!(
            (c.threshold() - 0.5).abs() < 0.1,
            "controller should settle near 0.5, got {}",
            c.threshold()
        );
        let observed = c.last_snapshot().unwrap().observed_precision;
        assert!(
            (observed - 0.75).abs() < 0.05,
            "window precision should track the target, got {observed}"
        );
    }
}
