//! # pp-precompute
//!
//! The budget-aware precompute *execution* subsystem: everything between a
//! predicted access probability and a measured, accounted-for prefetch.
//!
//! The paper's end goal is not prediction but precompute (§8–§9): turn
//! access probabilities into prefetch decisions that maximize successful
//! prefetches under a resource budget, at a precision target (60% for the
//! MobileTab launch). `pp-serving` produces batched scores; this crate
//! closes the predict → act → measure loop around them:
//!
//! * [`decision`] — the [`DecisionEngine`]: applies a
//!   [`pp_core::PrecomputePolicy`] to batched [`pp_serving::Prediction`]s
//!   (straight from a [`pp_serving::BatchServingEngine`] via
//!   `predict_many_blocking`) and emits per-request [`Decision`]s;
//! * [`scheduler`] — the [`PrefetchScheduler`]: token-bucket admission with
//!   a max-inflight cap, costing each prefetch in the abstract cost units
//!   of `pp-serving::cost` ([`prefetch_cost_units`]), so "budget" means the
//!   same thing as the §9 serving-cost model; fractional-clock refill, and
//!   [`AdmissionOrder`]-controlled wave admission (FIFO, or
//!   highest-probability-first so a low bucket is spent on the prefetches
//!   most likely to become hits);
//! * [`cache`] — the sharded [`PrefetchCache`]: TTL + LRU bounded storage
//!   for precomputed payloads keyed by user (a TTL-expired payload counts
//!   as expired, never as an LRU eviction);
//! * [`outcome`] — the [`OutcomeTracker`]: resolves every decision against
//!   what the session actually did (hit / wasted prefetch / expired
//!   prefetch / missed access / correct skip) with exact conservation,
//!   emits live precision / recall / waste, and retains drainable
//!   ([`ResolvedSample`]) (score, label) pairs for recalibration;
//! * [`adaptive`] — the [`AdaptiveThresholdController`]: nudges the
//!   decision threshold online, window by window, to hold the target
//!   precision as traffic drifts;
//! * [`system`] — the [`PrecomputeSystem`] wiring all five together behind
//!   two calls: `handle_scores` at session start, `resolve_session` when
//!   the ground truth lands — plus the learned feedback loop
//!   (`on_window_resolved`): every closed controller window drains the
//!   tracker's (score, label) samples into
//!   [`pp_core::PrecomputePolicy::recalibrate`] and applies the refit
//!   threshold, with a starvation fallback so a saturated threshold
//!   recovers from resolved skips instead of deadlocking.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod cache;
pub mod decision;
pub mod outcome;
pub mod scheduler;
pub mod system;

pub use adaptive::{AdaptiveThresholdController, ControllerConfig, WindowSnapshot};
pub use cache::{CacheConfig, CacheStats, PrefetchCache};
pub use decision::{Action, Decision, DecisionEngine, DecisionStats};
pub use outcome::{Outcome, OutcomeCounts, OutcomeTracker, ResolvedSample, MAX_RETAINED_SAMPLES};
pub use scheduler::{
    prefetch_cost_units, AdmissionOrder, AdmitResult, BudgetConfig, PrefetchScheduler,
    SchedulerBudgetStats,
};
pub use system::{PrecomputeSystem, SystemConfig, SystemReport};
