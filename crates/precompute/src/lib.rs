//! # pp-precompute
//!
//! The budget-aware precompute *execution* subsystem: everything between a
//! predicted access probability and a measured, accounted-for prefetch.
//!
//! The paper's end goal is not prediction but precompute (§8–§9): turn
//! access probabilities into prefetch decisions that maximize successful
//! prefetches under a resource budget, at a precision target (60% for the
//! MobileTab launch). `pp-serving` produces batched scores; this crate
//! closes the predict → act → measure loop around them:
//!
//! * [`activity`] — the [`Activity`] dimension of a shared deployment
//!   (MobileTab / Timeshift / MPU), the dense per-activity [`ActivityMap`],
//!   and [`jain_index`] for fairness reporting;
//! * [`decision`] — the [`DecisionEngine`]: applies per-activity
//!   [`pp_core::PrecomputePolicy`]s to batched [`pp_serving::Prediction`]s
//!   (straight from a [`pp_serving::BatchServingEngine`] via
//!   `predict_many_blocking`) and emits per-request [`Decision`]s;
//! * [`scheduler`] — the [`PrefetchScheduler`]: token-bucket admission with
//!   a max-inflight cap, costing each prefetch in the abstract cost units
//!   of `pp-serving::cost` ([`prefetch_cost_units`]), so "budget" means the
//!   same thing as the §9 serving-cost model; fractional-clock refill,
//!   [`AdmissionOrder`]-controlled wave admission (FIFO, or
//!   highest-probability-first so a low bucket is spent on the prefetches
//!   most likely to become hits), and **shared multi-activity buckets**:
//!   per-activity costs drawing on one budget under a pluggable
//!   [`FairnessPolicy`] (greedy, guaranteed-share floors, or
//!   deficit-weighted round-robin), with per-activity spend accounting that
//!   provably sums to the total drain;
//! * [`cache`] — the sharded [`PrefetchCache`]: TTL + LRU bounded storage
//!   for precomputed payloads keyed by user (a TTL-expired payload counts
//!   as expired, never as an LRU eviction);
//! * [`outcome`] — the [`OutcomeTracker`]: resolves every decision against
//!   what the session actually did (hit / wasted prefetch / expired
//!   prefetch / missed access / correct skip) with exact conservation,
//!   emits live precision / recall / waste per activity, and retains
//!   drainable ([`ResolvedSample`]) (score, label) pairs per activity for
//!   recalibration;
//! * [`obs`] — cached `pp-obs` handles instrumenting admission, the token
//!   bucket, the prefetch cache, and the per-activity precision/threshold
//!   trajectories (compiled to no-ops without the `obs` feature);
//! * [`adaptive`] — the [`AdaptiveThresholdController`]: nudges the
//!   decision threshold online, window by window, to hold the target
//!   precision as traffic drifts;
//! * [`system`] — the [`PrecomputeSystem`] wiring all of it together behind
//!   two calls: `handle_scores` / `handle_wave` at session start,
//!   `resolve_session` when the ground truth lands — with one adaptive
//!   controller and one learned feedback loop (`on_window_resolved`) *per
//!   activity*: every closed controller window drains that activity's
//!   (score, label) samples into
//!   [`pp_core::PrecomputePolicy::recalibrate`] and applies the refit
//!   threshold, with a starvation fallback so a saturated threshold
//!   recovers from resolved skips instead of deadlocking. The per-activity
//!   spend/hit ledger surfaces through
//!   [`PrecomputeSystem::activity_report`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod adaptive;
pub mod cache;
pub mod decision;
pub mod obs;
pub mod outcome;
pub mod scheduler;
pub mod system;

pub use activity::{jain_index, Activity, ActivityMap};
pub use adaptive::{AdaptiveThresholdController, ControllerConfig, WindowSnapshot};
pub use cache::{CacheConfig, CacheStats, PrefetchCache};
pub use decision::{Action, Decision, DecisionEngine, DecisionStats};
pub use obs::PrecomputeObs;
pub use outcome::{Outcome, OutcomeCounts, OutcomeTracker, ResolvedSample, MAX_RETAINED_SAMPLES};
pub use scheduler::{
    prefetch_cost_units, ActivityBudgetStats, AdmissionOrder, AdmitResult, BudgetConfig,
    FairnessPolicy, PrefetchScheduler, SchedulerBudgetStats,
};
pub use system::{
    ActivityReport, MultiActivityConfig, PrecomputeSystem, SystemConfig, SystemReport,
};
