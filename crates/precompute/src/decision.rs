//! Turning batched scores into precompute decisions.
//!
//! The [`DecisionEngine`] is deliberately small: policy application plus
//! bookkeeping. Admission control (budget) lives in
//! [`crate::scheduler::PrefetchScheduler`]; the engine records *intent*
//! (prefetch / skip) and the system downgrades a prefetch to
//! [`Action::Denied`] when the budget refuses it.

use crate::activity::{Activity, ActivityMap};
use pp_core::PrecomputePolicy;
use pp_data::schema::UserId;
use pp_serving::{BatchServingEngine, PredictRequest, Prediction};
use serde::{Deserialize, Serialize};

/// What the subsystem did (or declined to do) for one scored session start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// The policy fired and the prefetch was admitted and executed.
    Prefetch,
    /// The predicted probability fell below the threshold.
    Skip,
    /// The policy fired but the budget scheduler refused admission.
    Denied,
}

/// One precompute decision for one session start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The user the session belongs to.
    pub user_id: UserId,
    /// The activity the decision precomputes for.
    pub activity: Activity,
    /// Session-start timestamp (UNIX seconds) the decision was taken at.
    pub timestamp: i64,
    /// The predicted access probability the decision was based on.
    pub probability: f64,
    /// The threshold in force when the decision was taken.
    pub threshold: f64,
    /// What was done.
    pub action: Action,
}

/// Counters describing decision-engine behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionStats {
    /// Predictions scored against the policy.
    pub scored: u64,
    /// Decisions whose policy verdict was "prefetch".
    pub prefetch_intents: u64,
    /// Decisions whose policy verdict was "skip".
    pub skips: u64,
}

/// Applies per-activity [`PrecomputePolicy`]s to batched predictions.
///
/// Single-activity callers can ignore the activity dimension entirely: the
/// untagged methods route through [`Activity::MobileTab`], and
/// [`DecisionEngine::set_policy`] keeps every activity on one shared
/// policy. A multi-activity deployment instead gives each activity its own
/// operating point via [`DecisionEngine::set_policy_for`] and decides with
/// [`DecisionEngine::decide_for`].
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    policies: ActivityMap<PrecomputePolicy>,
    by_activity: ActivityMap<DecisionStats>,
}

impl DecisionEngine {
    /// Creates an engine applying `policy` to every activity.
    pub fn new(policy: PrecomputePolicy) -> Self {
        Self {
            policies: ActivityMap::uniform(policy),
            by_activity: ActivityMap::uniform(DecisionStats::default()),
        }
    }

    /// The policy currently in force for the default activity
    /// ([`Activity::MobileTab`]) — the single-activity view.
    pub fn policy(&self) -> PrecomputePolicy {
        self.policies[Activity::MobileTab]
    }

    /// The policy currently in force for `activity`.
    pub fn policy_for(&self, activity: Activity) -> PrecomputePolicy {
        self.policies[activity]
    }

    /// Replaces the policy in force for *every* activity (the
    /// single-activity adaptive controller's entry point; decisions already
    /// taken keep the threshold they were taken at).
    pub fn set_policy(&mut self, policy: PrecomputePolicy) {
        self.policies = ActivityMap::uniform(policy);
    }

    /// Replaces the policy in force for `activity` only — the per-activity
    /// controller's entry point in a shared deployment.
    pub fn set_policy_for(&mut self, activity: Activity, policy: PrecomputePolicy) {
        self.policies[activity] = policy;
    }

    /// Counters accumulated so far, summed across activities.
    pub fn stats(&self) -> DecisionStats {
        let mut total = DecisionStats::default();
        for stats in self.by_activity.values() {
            total.scored += stats.scored;
            total.prefetch_intents += stats.prefetch_intents;
            total.skips += stats.skips;
        }
        total
    }

    /// Counters accumulated for `activity`.
    pub fn stats_for(&self, activity: Activity) -> DecisionStats {
        self.by_activity[activity]
    }

    /// Decides for a single prediction made at `timestamp`, on the default
    /// activity ([`Activity::MobileTab`]).
    pub fn decide(&mut self, prediction: &Prediction, timestamp: i64) -> Decision {
        self.decide_for(Activity::MobileTab, prediction, timestamp)
    }

    /// Decides for a single `activity` prediction made at `timestamp`,
    /// under that activity's policy.
    pub fn decide_for(
        &mut self,
        activity: Activity,
        prediction: &Prediction,
        timestamp: i64,
    ) -> Decision {
        let policy = self.policies[activity];
        let stats = &mut self.by_activity[activity];
        stats.scored += 1;
        let prefetch = policy.should_precompute(prediction.probability);
        if prefetch {
            stats.prefetch_intents += 1;
        } else {
            stats.skips += 1;
        }
        Decision {
            user_id: prediction.user_id,
            activity,
            timestamp,
            probability: prediction.probability,
            threshold: policy.threshold(),
            action: if prefetch {
                Action::Prefetch
            } else {
                Action::Skip
            },
        }
    }

    /// Decides for one wave of batched predictions, all made at `timestamp`.
    pub fn decide_batch(&mut self, predictions: &[Prediction], timestamp: i64) -> Vec<Decision> {
        predictions
            .iter()
            .map(|p| self.decide(p, timestamp))
            .collect()
    }

    /// Scores `requests` through a running [`BatchServingEngine`] (one
    /// batched forward pass per engine batch) and decides on each result —
    /// the production wiring of serving into precompute. Decisions carry
    /// their request's session-start timestamp.
    pub fn score_and_decide(
        &mut self,
        engine: &BatchServingEngine,
        requests: &[PredictRequest],
    ) -> Vec<Decision> {
        let predictions = engine.predict_many_blocking(requests);
        requests
            .iter()
            .zip(&predictions)
            .map(|(request, prediction)| self.decide(prediction, request.timestamp))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{Context, DatasetKind, Tab};
    use pp_rnn::{RnnModel, RnnModelConfig, TaskKind};
    use pp_serving::ShardedStateStore;
    use std::sync::Arc;

    fn prediction(id: u64, p: f64) -> Prediction {
        Prediction {
            user_id: UserId(id),
            probability: p,
        }
    }

    #[test]
    fn policy_splits_prefetch_from_skip() {
        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.6));
        let decisions = engine.decide_batch(
            &[prediction(1, 0.9), prediction(2, 0.59), prediction(3, 0.6)],
            1_000,
        );
        assert_eq!(decisions[0].action, Action::Prefetch);
        assert_eq!(decisions[1].action, Action::Skip);
        assert_eq!(decisions[2].action, Action::Prefetch);
        for d in &decisions {
            assert_eq!(d.timestamp, 1_000);
            assert!((d.threshold - 0.6).abs() < 1e-12);
        }
        let stats = engine.stats();
        assert_eq!(stats.scored, 3);
        assert_eq!(stats.prefetch_intents, 2);
        assert_eq!(stats.skips, 1);
    }

    #[test]
    fn per_activity_policies_decide_independently() {
        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.5));
        engine.set_policy_for(Activity::Mpu, PrecomputePolicy::with_threshold(0.9));
        let p = prediction(1, 0.7);
        let mobile = engine.decide_for(Activity::MobileTab, &p, 0);
        let mpu = engine.decide_for(Activity::Mpu, &p, 0);
        assert_eq!(mobile.action, Action::Prefetch);
        assert_eq!(mobile.activity, Activity::MobileTab);
        assert_eq!(mpu.action, Action::Skip);
        assert_eq!(mpu.activity, Activity::Mpu);
        assert!((mpu.threshold - 0.9).abs() < 1e-12);
        // Per-activity stats split; the aggregate sums them.
        assert_eq!(engine.stats_for(Activity::Mpu).skips, 1);
        assert_eq!(engine.stats_for(Activity::MobileTab).prefetch_intents, 1);
        assert_eq!(engine.stats().scored, 2);
        // Untagged set_policy resets every activity.
        engine.set_policy(PrecomputePolicy::with_threshold(0.1));
        assert!((engine.policy_for(Activity::Mpu).threshold() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_policy_changes_future_decisions_only() {
        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.5));
        let before = engine.decide(&prediction(1, 0.55), 0);
        engine.set_policy(PrecomputePolicy::with_threshold(0.7));
        let after = engine.decide(&prediction(1, 0.55), 1);
        assert_eq!(before.action, Action::Prefetch);
        assert_eq!(after.action, Action::Skip);
        assert!((before.threshold - 0.5).abs() < 1e-12);
        assert!((after.threshold - 0.7).abs() < 1e-12);
    }

    #[test]
    fn score_and_decide_consumes_the_batch_serving_engine() {
        let model = Arc::new(RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            3,
        ));
        let store = Arc::new(ShardedStateStore::new(4));
        let serving = BatchServingEngine::start(model.clone(), store.clone(), 2, 16);
        let requests: Vec<PredictRequest> = (0..24)
            .map(|i| PredictRequest {
                user_id: UserId(i as u64 % 7),
                timestamp: 10_000 + i * 13,
                context: Context::MobileTab {
                    unread_count: (i % 5) as u8,
                    active_tab: Tab::ALL[i as usize % Tab::ALL.len()],
                },
                elapsed_secs: 120 + i,
            })
            .collect();

        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.0));
        let decisions = engine.score_and_decide(&serving, &requests);
        assert_eq!(decisions.len(), requests.len());
        for (request, decision) in requests.iter().zip(&decisions) {
            assert_eq!(decision.user_id, request.user_id);
            assert_eq!(decision.timestamp, request.timestamp);
            // Threshold 0: every scored request is a prefetch intent, and
            // the probability matches the single-request path.
            assert_eq!(decision.action, Action::Prefetch);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| model.initial_state());
            let input = model.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            let single = model.predict_proba(&state, &input);
            assert!((decision.probability - single).abs() < 1e-6);
        }
        assert_eq!(engine.stats().scored, 24);
    }
}
