//! Turning batched scores into precompute decisions.
//!
//! The [`DecisionEngine`] is deliberately small: policy application plus
//! bookkeeping. Admission control (budget) lives in
//! [`crate::scheduler::PrefetchScheduler`]; the engine records *intent*
//! (prefetch / skip) and the system downgrades a prefetch to
//! [`Action::Denied`] when the budget refuses it.

use pp_core::PrecomputePolicy;
use pp_data::schema::UserId;
use pp_serving::{BatchServingEngine, PredictRequest, Prediction};
use serde::{Deserialize, Serialize};

/// What the subsystem did (or declined to do) for one scored session start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// The policy fired and the prefetch was admitted and executed.
    Prefetch,
    /// The predicted probability fell below the threshold.
    Skip,
    /// The policy fired but the budget scheduler refused admission.
    Denied,
}

/// One precompute decision for one session start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The user the session belongs to.
    pub user_id: UserId,
    /// Session-start timestamp (UNIX seconds) the decision was taken at.
    pub timestamp: i64,
    /// The predicted access probability the decision was based on.
    pub probability: f64,
    /// The threshold in force when the decision was taken.
    pub threshold: f64,
    /// What was done.
    pub action: Action,
}

/// Counters describing decision-engine behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionStats {
    /// Predictions scored against the policy.
    pub scored: u64,
    /// Decisions whose policy verdict was "prefetch".
    pub prefetch_intents: u64,
    /// Decisions whose policy verdict was "skip".
    pub skips: u64,
}

/// Applies a [`PrecomputePolicy`] to batched predictions.
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    policy: PrecomputePolicy,
    stats: DecisionStats,
}

impl DecisionEngine {
    /// Creates an engine applying `policy`.
    pub fn new(policy: PrecomputePolicy) -> Self {
        Self {
            policy,
            stats: DecisionStats::default(),
        }
    }

    /// The policy currently in force.
    pub fn policy(&self) -> PrecomputePolicy {
        self.policy
    }

    /// Replaces the policy in force (the adaptive controller's entry point;
    /// decisions already taken keep the threshold they were taken at).
    pub fn set_policy(&mut self, policy: PrecomputePolicy) {
        self.policy = policy;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> DecisionStats {
        self.stats
    }

    /// Decides for a single prediction made at `timestamp`.
    pub fn decide(&mut self, prediction: &Prediction, timestamp: i64) -> Decision {
        self.stats.scored += 1;
        let prefetch = self.policy.should_precompute(prediction.probability);
        if prefetch {
            self.stats.prefetch_intents += 1;
        } else {
            self.stats.skips += 1;
        }
        Decision {
            user_id: prediction.user_id,
            timestamp,
            probability: prediction.probability,
            threshold: self.policy.threshold(),
            action: if prefetch {
                Action::Prefetch
            } else {
                Action::Skip
            },
        }
    }

    /// Decides for one wave of batched predictions, all made at `timestamp`.
    pub fn decide_batch(&mut self, predictions: &[Prediction], timestamp: i64) -> Vec<Decision> {
        predictions
            .iter()
            .map(|p| self.decide(p, timestamp))
            .collect()
    }

    /// Scores `requests` through a running [`BatchServingEngine`] (one
    /// batched forward pass per engine batch) and decides on each result —
    /// the production wiring of serving into precompute. Decisions carry
    /// their request's session-start timestamp.
    pub fn score_and_decide(
        &mut self,
        engine: &BatchServingEngine,
        requests: &[PredictRequest],
    ) -> Vec<Decision> {
        let predictions = engine.predict_many_blocking(requests);
        requests
            .iter()
            .zip(&predictions)
            .map(|(request, prediction)| self.decide(prediction, request.timestamp))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_data::schema::{Context, DatasetKind, Tab};
    use pp_rnn::{RnnModel, RnnModelConfig, TaskKind};
    use pp_serving::ShardedStateStore;
    use std::sync::Arc;

    fn prediction(id: u64, p: f64) -> Prediction {
        Prediction {
            user_id: UserId(id),
            probability: p,
        }
    }

    #[test]
    fn policy_splits_prefetch_from_skip() {
        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.6));
        let decisions = engine.decide_batch(
            &[prediction(1, 0.9), prediction(2, 0.59), prediction(3, 0.6)],
            1_000,
        );
        assert_eq!(decisions[0].action, Action::Prefetch);
        assert_eq!(decisions[1].action, Action::Skip);
        assert_eq!(decisions[2].action, Action::Prefetch);
        for d in &decisions {
            assert_eq!(d.timestamp, 1_000);
            assert!((d.threshold - 0.6).abs() < 1e-12);
        }
        let stats = engine.stats();
        assert_eq!(stats.scored, 3);
        assert_eq!(stats.prefetch_intents, 2);
        assert_eq!(stats.skips, 1);
    }

    #[test]
    fn set_policy_changes_future_decisions_only() {
        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.5));
        let before = engine.decide(&prediction(1, 0.55), 0);
        engine.set_policy(PrecomputePolicy::with_threshold(0.7));
        let after = engine.decide(&prediction(1, 0.55), 1);
        assert_eq!(before.action, Action::Prefetch);
        assert_eq!(after.action, Action::Skip);
        assert!((before.threshold - 0.5).abs() < 1e-12);
        assert!((after.threshold - 0.7).abs() < 1e-12);
    }

    #[test]
    fn score_and_decide_consumes_the_batch_serving_engine() {
        let model = Arc::new(RnnModel::new(
            DatasetKind::MobileTab,
            TaskKind::PerSession,
            RnnModelConfig::tiny(),
            3,
        ));
        let store = Arc::new(ShardedStateStore::new(4));
        let serving = BatchServingEngine::start(model.clone(), store.clone(), 2, 16);
        let requests: Vec<PredictRequest> = (0..24)
            .map(|i| PredictRequest {
                user_id: UserId(i as u64 % 7),
                timestamp: 10_000 + i * 13,
                context: Context::MobileTab {
                    unread_count: (i % 5) as u8,
                    active_tab: Tab::ALL[i as usize % Tab::ALL.len()],
                },
                elapsed_secs: 120 + i,
            })
            .collect();

        let mut engine = DecisionEngine::new(PrecomputePolicy::with_threshold(0.0));
        let decisions = engine.score_and_decide(&serving, &requests);
        assert_eq!(decisions.len(), requests.len());
        for (request, decision) in requests.iter().zip(&decisions) {
            assert_eq!(decision.user_id, request.user_id);
            assert_eq!(decision.timestamp, request.timestamp);
            // Threshold 0: every scored request is a prefetch intent, and
            // the probability matches the single-request path.
            assert_eq!(decision.action, Action::Prefetch);
            let state = store
                .get_state(request.user_id)
                .unwrap_or_else(|| model.initial_state());
            let input = model.featurizer().predict_input(
                request.timestamp,
                &request.context,
                request.elapsed_secs,
            );
            let single = model.predict_proba(&state, &input);
            assert!((decision.probability - single).abs() < 1e-6);
        }
        assert_eq!(engine.stats().scored, 24);
    }
}
