//! Tape-based reverse-mode automatic differentiation over [`Tensor`]s.
//!
//! A [`Graph`] records every operation applied to its nodes. Calling
//! [`Graph::backward`] on a scalar output node propagates gradients back to
//! every node, in particular to parameter leaves created via
//! [`Graph::param`], from which a [`GradStore`] can be extracted with
//! [`Graph::param_grads_into`].
//!
//! The graph is intentionally not thread-safe: the training loop in `pp-rnn`
//! builds one graph per user sequence per thread (mirroring the paper's
//! per-user parallelism) and merges the resulting gradient stores.

use crate::params::{GradStore, ParamId};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Handle to a node inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Index of the node in its graph (useful for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // some payloads (e.g. the AddScalar constant) are kept for Debug output
enum Op {
    /// Constant or parameter leaf.
    Leaf,
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId, f32),
    ConcatCols(NodeId, NodeId),
    SliceCols(NodeId, usize, usize),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    /// Element-wise multiplication by a fixed (non-differentiated) mask,
    /// used for dropout.
    MaskMul(NodeId, Tensor),
    OneMinus(NodeId),
    Mean(NodeId),
    Sum(NodeId),
    /// Mean binary cross-entropy between `sigmoid(logits)` and fixed targets,
    /// computed in a numerically stable fused form.
    BceWithLogits {
        logits: NodeId,
        targets: Tensor,
        weights: Option<Tensor>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    grad: Tensor,
    op: Op,
    #[allow(dead_code)] // retained for Debug/diagnostics; lookups go through `param_nodes`
    param: Option<ParamId>,
}

/// A reverse-mode autodiff tape.
///
/// # Examples
///
/// ```
/// use pp_nn::graph::Graph;
/// use pp_nn::tensor::Tensor;
///
/// let mut g = Graph::new();
/// let x = g.constant(Tensor::from_row(&[2.0]));
/// let y = g.mul(x, x);      // y = x^2
/// let loss = g.sum(y);
/// g.backward(loss);
/// assert_eq!(g.grad(x).as_slice(), &[4.0]); // dy/dx = 2x = 4
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    param_nodes: HashMap<ParamId, NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, param: Option<ParamId>) -> NodeId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.nodes.push(Node {
            value,
            grad,
            op,
            param,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a constant (non-parameter) leaf node.
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Leaf, None)
    }

    /// Adds (or reuses) a leaf node for a trainable parameter. Calling this
    /// repeatedly with the same `id` returns the same node so that gradients
    /// from every use accumulate on a single leaf — required when a weight is
    /// reused across timesteps (backpropagation through time).
    pub fn param(&mut self, id: ParamId, value: &Tensor) -> NodeId {
        if let Some(&node) = self.param_nodes.get(&id) {
            return node;
        }
        let node = self.push(value.clone(), Op::Leaf, Some(id));
        self.param_nodes.insert(id, node);
        node
    }

    /// Returns the value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Returns the gradient of a node (all zeros until [`Graph::backward`]
    /// has been called on a downstream scalar).
    pub fn grad(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].grad
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a, b), None)
    }

    /// Element-wise sum `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(value, Op::Add(a, b), None)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(value, Op::Sub(a, b), None)
    }

    /// Element-wise product `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        self.push(value, Op::Mul(a, b), None)
    }

    /// Adds a `1 × n` bias row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let value = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[bias.0].value);
        self.push(value, Op::AddRowBroadcast(a, bias), None)
    }

    /// Scales every element of `a` by a constant.
    pub fn scale(&mut self, a: NodeId, factor: f32) -> NodeId {
        let value = self.nodes[a.0].value.scale(factor);
        self.push(value, Op::Scale(a, factor), None)
    }

    /// Adds a constant scalar to every element of `a`.
    pub fn add_scalar(&mut self, a: NodeId, constant: f32) -> NodeId {
        let value = self.nodes[a.0].value.map(|x| x + constant);
        self.push(value, Op::AddScalar(a, constant), None)
    }

    /// Concatenates `a` and `b` along columns.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(value, Op::ConcatCols(a, b), None)
    }

    /// Extracts columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let value = self.nodes[a.0].value.slice_cols(start, end);
        self.push(value, Op::SliceCols(a, start, end), None)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.map(stable_sigmoid);
        self.push(value, Op::Sigmoid(a), None)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push(value, Op::Tanh(a), None)
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a), None)
    }

    /// Multiplies `a` element-wise by a fixed mask that is not
    /// differentiated (inverted-dropout masks, missing-value masks, …).
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the node shape.
    pub fn mask_mul(&mut self, a: NodeId, mask: Tensor) -> NodeId {
        let value = self.nodes[a.0].value.mul(&mask);
        self.push(value, Op::MaskMul(a, mask), None)
    }

    /// Computes `1 - a` element-wise.
    pub fn one_minus(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.map(|x| 1.0 - x);
        self.push(value, Op::OneMinus(a), None)
    }

    /// Mean over all elements, producing a `1 × 1` node.
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let value = Tensor::from_row(&[self.nodes[a.0].value.mean()]);
        self.push(value, Op::Mean(a), None)
    }

    /// Sum over all elements, producing a `1 × 1` node.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let value = Tensor::from_row(&[self.nodes[a.0].value.sum()]);
        self.push(value, Op::Sum(a), None)
    }

    /// Mean binary cross-entropy between `sigmoid(logits)` and `targets`,
    /// fused for numerical stability:
    /// `bce(z, y) = max(z, 0) - z*y + ln(1 + e^{-|z|})`.
    ///
    /// Optional per-element `weights` rescale each example's contribution
    /// (the mean is taken over the *weight total*, so uniform weights of 1.0
    /// reproduce the unweighted mean).
    ///
    /// # Panics
    ///
    /// Panics if shapes of `logits`, `targets`, and `weights` differ.
    pub fn bce_with_logits(
        &mut self,
        logits: NodeId,
        targets: Tensor,
        weights: Option<Tensor>,
    ) -> NodeId {
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.shape(), targets.shape(), "bce_with_logits: target shape");
        if let Some(w) = &weights {
            assert_eq!(z.shape(), w.shape(), "bce_with_logits: weight shape");
        }
        let mut total = 0.0_f64;
        let mut weight_total = 0.0_f64;
        for (i, (&zi, &yi)) in z.as_slice().iter().zip(targets.as_slice()).enumerate() {
            let wi = weights.as_ref().map_or(1.0, |w| w.as_slice()[i]);
            let loss = zi.max(0.0) - zi * yi + (1.0 + (-zi.abs()).exp()).ln();
            total += (wi * loss) as f64;
            weight_total += wi as f64;
        }
        let mean = if weight_total > 0.0 {
            (total / weight_total) as f32
        } else {
            0.0
        };
        let value = Tensor::from_row(&[mean]);
        self.push(
            value,
            Op::BceWithLogits {
                logits,
                targets,
                weights,
            },
            None,
        )
    }

    /// Runs reverse-mode differentiation from `output`, which must be a
    /// `1 × 1` scalar node. Gradients accumulate on every node reachable
    /// backwards from `output`; calling `backward` twice accumulates twice.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a scalar node.
    pub fn backward(&mut self, output: NodeId) {
        assert_eq!(
            self.nodes[output.0].value.shape(),
            (1, 1),
            "backward: output must be a 1x1 scalar node"
        );
        // Seed.
        self.nodes[output.0].grad = Tensor::from_row(&[1.0]);
        // Nodes are recorded in topological order (operands always precede
        // results), so a single reverse sweep suffices.
        for i in (0..=output.0).rev() {
            let node_grad = self.nodes[i].grad.clone();
            if node_grad.max_abs() == 0.0 {
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let a_val = self.nodes[a.0].value.clone();
                    let b_val = self.nodes[b.0].value.clone();
                    let grad_a = node_grad.matmul(&b_val.transpose());
                    let grad_b = a_val.transpose().matmul(&node_grad);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                    self.nodes[b.0].grad.add_scaled_inplace(&grad_b, 1.0);
                }
                Op::Add(a, b) => {
                    self.nodes[a.0].grad.add_scaled_inplace(&node_grad, 1.0);
                    self.nodes[b.0].grad.add_scaled_inplace(&node_grad, 1.0);
                }
                Op::Sub(a, b) => {
                    self.nodes[a.0].grad.add_scaled_inplace(&node_grad, 1.0);
                    self.nodes[b.0].grad.add_scaled_inplace(&node_grad, -1.0);
                }
                Op::Mul(a, b) => {
                    let a_val = self.nodes[a.0].value.clone();
                    let b_val = self.nodes[b.0].value.clone();
                    let grad_a = node_grad.mul(&b_val);
                    let grad_b = node_grad.mul(&a_val);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                    self.nodes[b.0].grad.add_scaled_inplace(&grad_b, 1.0);
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.nodes[a.0].grad.add_scaled_inplace(&node_grad, 1.0);
                    let bias_grad = node_grad.sum_rows();
                    self.nodes[bias.0].grad.add_scaled_inplace(&bias_grad, 1.0);
                }
                Op::Scale(a, factor) => {
                    self.nodes[a.0].grad.add_scaled_inplace(&node_grad, factor);
                }
                Op::AddScalar(a, _) => {
                    self.nodes[a.0].grad.add_scaled_inplace(&node_grad, 1.0);
                }
                Op::ConcatCols(a, b) => {
                    let a_cols = self.nodes[a.0].value.cols();
                    let total = node_grad.cols();
                    let grad_a = node_grad.slice_cols(0, a_cols);
                    let grad_b = node_grad.slice_cols(a_cols, total);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                    self.nodes[b.0].grad.add_scaled_inplace(&grad_b, 1.0);
                }
                Op::SliceCols(a, start, _end) => {
                    let mut grad_a =
                        Tensor::zeros(self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
                    for r in 0..node_grad.rows() {
                        for c in 0..node_grad.cols() {
                            grad_a.set(r, start + c, node_grad.at(r, c));
                        }
                    }
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::Sigmoid(a) => {
                    let y = self.nodes[i].value.clone();
                    let local = y.map(|s| s * (1.0 - s));
                    let grad_a = node_grad.mul(&local);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::Tanh(a) => {
                    let y = self.nodes[i].value.clone();
                    let local = y.map(|t| 1.0 - t * t);
                    let grad_a = node_grad.mul(&local);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::Relu(a) => {
                    let x = self.nodes[a.0].value.clone();
                    let local = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    let grad_a = node_grad.mul(&local);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::MaskMul(a, mask) => {
                    let grad_a = node_grad.mul(&mask);
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::OneMinus(a) => {
                    self.nodes[a.0].grad.add_scaled_inplace(&node_grad, -1.0);
                }
                Op::Mean(a) => {
                    let n = self.nodes[a.0].value.len() as f32;
                    let seed = node_grad.at(0, 0) / n;
                    let grad_a = Tensor::full(
                        self.nodes[a.0].value.rows(),
                        self.nodes[a.0].value.cols(),
                        seed,
                    );
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::Sum(a) => {
                    let seed = node_grad.at(0, 0);
                    let grad_a = Tensor::full(
                        self.nodes[a.0].value.rows(),
                        self.nodes[a.0].value.cols(),
                        seed,
                    );
                    self.nodes[a.0].grad.add_scaled_inplace(&grad_a, 1.0);
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    weights,
                } => {
                    let z = self.nodes[logits.0].value.clone();
                    let seed = node_grad.at(0, 0);
                    let weight_total: f32 = match &weights {
                        Some(w) => w.as_slice().iter().sum(),
                        None => z.len() as f32,
                    };
                    let denom = if weight_total > 0.0 {
                        weight_total
                    } else {
                        1.0
                    };
                    let mut grad = Tensor::zeros(z.rows(), z.cols());
                    for idx in 0..z.len() {
                        let zi = z.as_slice()[idx];
                        let yi = targets.as_slice()[idx];
                        let wi = weights.as_ref().map_or(1.0, |w| w.as_slice()[idx]);
                        let p = stable_sigmoid(zi);
                        grad.as_mut_slice()[idx] = seed * wi * (p - yi) / denom;
                    }
                    self.nodes[logits.0].grad.add_scaled_inplace(&grad, 1.0);
                }
            }
        }
    }

    /// Accumulates the gradients of all parameter leaves into `grads`.
    pub fn param_grads_into(&self, grads: &mut GradStore) {
        for (&param, &node) in &self.param_nodes {
            grads.accumulate(param, &self.nodes[node.0].grad);
        }
    }

    /// Clears all recorded nodes while keeping allocated capacity, so a graph
    /// can be reused across training steps.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.param_nodes.clear();
    }
}

/// Numerically stable logistic sigmoid.
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    /// Finite-difference gradient check helper: perturbs each element of the
    /// parameter tensor and compares the numerical gradient with the autodiff
    /// gradient returned by `loss_fn`.
    fn grad_check(
        initial: Tensor,
        loss_fn: impl Fn(&Tensor, &mut Graph) -> (NodeId, NodeId),
        tolerance: f32,
    ) {
        // Analytic gradient.
        let mut g = Graph::new();
        let (leaf, loss) = loss_fn(&initial, &mut g);
        g.backward(loss);
        let analytic = g.grad(leaf).clone();

        // Numerical gradient.
        let eps = 1e-3_f32;
        for idx in 0..initial.len() {
            let mut plus = initial.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut g_plus = Graph::new();
            let (_, loss_plus) = loss_fn(&plus, &mut g_plus);
            let lp = g_plus.value(loss_plus).at(0, 0);

            let mut minus = initial.clone();
            minus.as_mut_slice()[idx] -= eps;
            let mut g_minus = Graph::new();
            let (_, loss_minus) = loss_fn(&minus, &mut g_minus);
            let lm = g_minus.value(loss_minus).at(0, 0);

            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (numeric - a).abs() < tolerance,
                "grad mismatch at {idx}: numeric={numeric} analytic={a}"
            );
        }
    }

    #[test]
    fn simple_square_gradient() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[3.0]));
        let y = g.mul(x, x);
        let loss = g.sum(y);
        g.backward(loss);
        assert!((g.grad(x).at(0, 0) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let w = Tensor::from_rows(&[&[0.5, -0.2], &[0.1, 0.7], &[-0.4, 0.3]]);
        grad_check(
            w,
            |w, g| {
                let x = g.constant(Tensor::from_row(&[1.0, -2.0, 0.5]));
                let wn = g.constant(w.clone());
                let y = g.matmul(x, wn);
                let act = g.tanh(y);
                let loss = g.sum(act);
                (wn, loss)
            },
            1e-2,
        );
    }

    #[test]
    fn sigmoid_relu_chain_gradients() {
        let w = Tensor::from_row(&[0.3, -0.8, 1.2]);
        grad_check(
            w,
            |w, g| {
                let wn = g.constant(w.clone());
                let s = g.sigmoid(wn);
                let r = g.relu(s);
                let m = g.mean(r);
                (wn, m)
            },
            1e-2,
        );
    }

    #[test]
    fn bce_with_logits_gradient() {
        let z = Tensor::from_col(&[0.5, -1.0, 2.0]);
        grad_check(
            z,
            |z, g| {
                let zn = g.constant(z.clone());
                let targets = Tensor::from_col(&[1.0, 0.0, 1.0]);
                let loss = g.bce_with_logits(zn, targets, None);
                (zn, loss)
            },
            1e-2,
        );
    }

    #[test]
    fn weighted_bce_matches_manual() {
        let mut g = Graph::new();
        let z = g.constant(Tensor::from_col(&[0.0, 0.0]));
        let targets = Tensor::from_col(&[1.0, 0.0]);
        // With logit 0 the loss of each element is ln(2); weights emphasise
        // the first element but the weighted mean is still ln(2).
        let weights = Tensor::from_col(&[3.0, 1.0]);
        let loss = g.bce_with_logits(z, targets, Some(weights));
        assert!((g.value(loss).at(0, 0) - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn concat_and_slice_gradients() {
        let x = Tensor::from_row(&[1.0, 2.0]);
        grad_check(
            x,
            |x, g| {
                let a = g.constant(x.clone());
                let b = g.constant(Tensor::from_row(&[3.0]));
                let cat = g.concat_cols(a, b);
                let sliced = g.slice_cols(cat, 0, 2);
                let sq = g.mul(sliced, sliced);
                let loss = g.sum(sq);
                (a, loss)
            },
            1e-2,
        );
    }

    #[test]
    fn broadcast_bias_gradient_sums_over_rows() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]));
        let b = g.constant(Tensor::from_row(&[0.5, 0.5]));
        let y = g.add_row_broadcast(x, b);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(g.grad(b), &Tensor::from_row(&[2.0, 2.0]));
        assert_eq!(g.grad(x), &Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]));
    }

    #[test]
    fn one_minus_and_scale_gradients() {
        let x = Tensor::from_row(&[0.25, 0.75]);
        grad_check(
            x,
            |x, g| {
                let a = g.constant(x.clone());
                let om = g.one_minus(a);
                let sc = g.scale(om, 3.0);
                let shifted = g.add_scalar(sc, 1.0);
                let loss = g.mean(shifted);
                (a, loss)
            },
            1e-2,
        );
    }

    #[test]
    fn mask_mul_blocks_gradient_through_mask() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, 2.0, 3.0]));
        let mask = Tensor::from_row(&[1.0, 0.0, 2.0]);
        let y = g.mask_mul(x, mask);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(g.grad(x), &Tensor::from_row(&[1.0, 0.0, 2.0]));
    }

    #[test]
    fn param_node_reuse_accumulates_bptt_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_row(&[2.0]));
        let mut g = Graph::new();
        // h1 = w * x, h2 = w * h1 = w^2 x  =>  d(h2)/dw = 2 w x = 12 for x=3, w=2
        let x = g.constant(Tensor::from_row(&[3.0]));
        let wn = g.param(w, store.get(w));
        let wn2 = g.param(w, store.get(w));
        assert_eq!(wn, wn2, "param leaves must be shared");
        let h1 = g.mul(wn, x);
        let h2 = g.mul(wn, h1);
        let loss = g.sum(h2);
        g.backward(loss);
        let mut grads = store.zero_grads();
        g.param_grads_into(&mut grads);
        assert!((grads.get(w).at(0, 0) - 12.0).abs() < 1e-5);
    }

    #[test]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, 2.0]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = Graph::new();
            let y = g2.constant(Tensor::from_row(&[1.0, 2.0]));
            g2.backward(y);
        }));
        assert!(result.is_err());
        // Original graph still usable.
        let loss = g.sum(x);
        g.backward(loss);
    }

    #[test]
    fn clear_resets_graph() {
        let mut g = Graph::new();
        let _ = g.constant(Tensor::ones(1, 1));
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999_999);
        assert!(stable_sigmoid(-100.0) < 1e-6);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(stable_sigmoid(-1000.0).is_finite());
        assert!(stable_sigmoid(1000.0).is_finite());
    }
}
