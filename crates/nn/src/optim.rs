//! Optimizers: Adam (the paper's choice, lr = 1e-3) and plain SGD with
//! optional momentum, both with optional decoupled weight decay.

use crate::params::{GradStore, ParamStore};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Common interface for optimizers.
pub trait Optimizer {
    /// Applies one update step given accumulated gradients.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (paper: `1e-3`).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub eps: f32,
    /// Decoupled weight decay (0 disables it).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer for the given parameter store.
    pub fn new(params: &ParamStore, config: AdamConfig) -> Self {
        let shapes: Vec<Tensor> = params
            .iter()
            .map(|(_, p)| Tensor::zeros(p.value().rows(), p.value().cols()))
            .collect();
        Self {
            config,
            step: 0,
            m: shapes.clone(),
            v: shapes,
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Optimizer configuration.
    pub fn config(&self) -> AdamConfig {
        self.config
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        assert_eq!(
            params.len(),
            self.m.len(),
            "optimizer was created for a different parameter store layout"
        );
        assert_eq!(params.len(), grads.len(), "gradient store layout mismatch");
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.config.beta1.powf(t);
        let bias2 = 1.0 - self.config.beta2.powf(t);
        let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
        for id in ids {
            let g = grads.get(id);
            let m = &mut self.m[id.index()];
            let v = &mut self.v[id.index()];
            let p = params.get_mut(id);
            let (b1, b2, eps, lr, wd) = (
                self.config.beta1,
                self.config.beta2,
                self.config.eps,
                self.config.lr,
                self.config.weight_decay,
            );
            for i in 0..p.len() {
                let gi = g.as_slice()[i];
                let mi = b1 * m.as_slice()[i] + (1.0 - b1) * gi;
                let vi = b2 * v.as_slice()[i] + (1.0 - b2) * gi * gi;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                let mut update = lr * m_hat / (v_hat.sqrt() + eps);
                if wd > 0.0 {
                    update += lr * wd * p.as_slice()[i];
                }
                p.as_mut_slice()[i] -= update;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.config.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.config.lr = lr;
    }
}

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer for the given parameter store.
    pub fn new(params: &ParamStore, config: SgdConfig) -> Self {
        let velocity = params
            .iter()
            .map(|(_, p)| Tensor::zeros(p.value().rows(), p.value().cols()))
            .collect();
        Self { config, velocity }
    }

    /// Optimizer configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        assert_eq!(params.len(), self.velocity.len(), "param layout mismatch");
        assert_eq!(params.len(), grads.len(), "grad layout mismatch");
        let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
        for id in ids {
            let g = grads.get(id);
            let vel = &mut self.velocity[id.index()];
            let p = params.get_mut(id);
            let (lr, mom, wd) = (
                self.config.lr,
                self.config.momentum,
                self.config.weight_decay,
            );
            for i in 0..p.len() {
                let mut gi = g.as_slice()[i];
                if wd > 0.0 {
                    gi += wd * p.as_slice()[i];
                }
                let v = if mom > 0.0 {
                    let v = mom * vel.as_slice()[i] + gi;
                    vel.as_mut_slice()[i] = v;
                    v
                } else {
                    gi
                };
                p.as_mut_slice()[i] -= lr * v;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.config.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.config.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::params::ParamStore;

    /// Minimizes f(w) = (w - 3)^2 and checks convergence.
    fn minimize_quadratic<O: Optimizer>(mut opt: O, store: &mut ParamStore, steps: usize) -> f32 {
        let w = store.find("w").unwrap();
        for _ in 0..steps {
            let mut g = Graph::new();
            let wn = g.param(w, store.get(w));
            let target = g.constant(Tensor::from_row(&[3.0]));
            let diff = g.sub(wn, target);
            let sq = g.mul(diff, diff);
            let loss = g.sum(sq);
            g.backward(loss);
            let mut grads = store.zero_grads();
            g.param_grads_into(&mut grads);
            opt.step(store, &grads);
        }
        store.get(w).at(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_row(&[0.0]));
        let adam = Adam::new(
            &store,
            AdamConfig {
                lr: 0.1,
                ..Default::default()
            },
        );
        let w = minimize_quadratic(adam, &mut store, 300);
        assert!((w - 3.0).abs() < 0.05, "adam did not converge: w = {w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_row(&[0.0]));
        let sgd = Sgd::new(
            &store,
            SgdConfig {
                lr: 0.1,
                momentum: 0.9,
                ..Default::default()
            },
        );
        let w = minimize_quadratic(sgd, &mut store, 200);
        assert!((w - 3.0).abs() < 0.05, "sgd did not converge: w = {w}");
    }

    #[test]
    fn adam_step_counter_and_lr() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_row(&[1.0]));
        let mut adam = Adam::new(&store, AdamConfig::default());
        assert_eq!(adam.steps_taken(), 0);
        assert!((adam.learning_rate() - 1e-3).abs() < 1e-9);
        adam.set_learning_rate(5e-4);
        assert!((adam.learning_rate() - 5e-4).abs() < 1e-9);
        let grads = store.zero_grads();
        adam.step(&mut store, &grads);
        assert_eq!(adam.steps_taken(), 1);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_row(&[10.0]));
        let mut adam = Adam::new(
            &store,
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.1,
                ..Default::default()
            },
        );
        let grads = store.zero_grads();
        for _ in 0..50 {
            adam.step(&mut store, &grads);
        }
        let w = store.get(store.find("w").unwrap()).at(0, 0);
        assert!(w < 10.0, "weight decay should shrink the weight, got {w}");
    }

    #[test]
    #[should_panic(expected = "different parameter store layout")]
    fn layout_mismatch_panics() {
        let mut store_a = ParamStore::new();
        store_a.add("a", Tensor::zeros(1, 1));
        let mut adam = Adam::new(&store_a, AdamConfig::default());

        let mut store_b = ParamStore::new();
        store_b.add("a", Tensor::zeros(1, 1));
        store_b.add("b", Tensor::zeros(1, 1));
        let grads = store_b.zero_grads();
        adam.step(&mut store_b, &grads);
    }
}
