//! A minimal dense 2-D tensor (row-major `f32` matrix).
//!
//! The tensor type is deliberately small: the models in the paper (a GRU cell
//! plus a one-hidden-layer MLP) only require dense matrix/vector algebra on
//! modest dimensions (feature vectors of a few hundred entries, hidden states
//! of 16–256 entries). Everything is `f32`, row-major, and allocated with
//! plain `Vec<f32>`.
//!
//! Shapes are `(rows, cols)`. A "row vector" is a `1 × n` tensor; batches are
//! represented by stacking examples as rows.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by tensor operations with incompatible shapes or invalid
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a shape error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use pp_nn::tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a `1 × n` row-vector tensor from a slice.
    pub fn from_row(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates an `n × 1` column-vector tensor from a slice.
    pub fn from_col(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a tensor from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "from_rows: row {i} has length {} (expected {cols})",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Returns row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Matrix multiplication `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} · {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        // Cache-friendly i-k-j loop order.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b, "add")
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b, "sub")
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b, "mul")
    }

    /// Adds a `1 × cols` row vector to every row of the tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "add_row_broadcast: bias must have one row");
        assert_eq!(
            bias.cols, self.cols,
            "add_row_broadcast: bias width {} != {}",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Adds `other * factor` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, factor: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_inplace shape");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * factor;
        }
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Concatenates two tensors along columns (they must have the same number
    /// of rows).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Stacks two tensors along rows (they must have the same number of
    /// columns).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "concat_rows: column counts differ ({} vs {})",
            self.cols, other.cols
        );
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Tensor {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Extracts a contiguous column range `[start, end)` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > cols`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Tensor {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sum along rows, producing a `1 × cols` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Squared L2 norm of all elements.
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Maximum absolute element (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32, op: &str) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shapes differ ({:?} vs {:?})",
            self.shape(),
            other.shape()
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self.at(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(3, 2);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));
        let f = Tensor::full(1, 4, 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shapes() {
        let a = Tensor::zeros(2, 5);
        let b = Tensor::zeros(5, 3);
        assert_eq!(a.matmul(&b).shape(), (2, 3));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_incompatible_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_row(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_row(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b), Tensor::from_row(&[5.0, 7.0, 9.0]));
        assert_eq!(b.sub(&a), Tensor::from_row(&[3.0, 3.0, 3.0]));
        assert_eq!(a.mul(&b), Tensor::from_row(&[4.0, 10.0, 18.0]));
        assert_eq!(a.scale(2.0), Tensor::from_row(&[2.0, 4.0, 6.0]));
    }

    #[test]
    fn broadcast_bias() {
        let a = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Tensor::from_row(&[10.0, 20.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c, Tensor::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
    }

    #[test]
    fn concat_and_slice() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);

        let d = a.concat_rows(&a);
        assert_eq!(d.shape(), (4, 2));
        assert_eq!(d.row(3), &[3.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows(), Tensor::from_row(&[4.0, 6.0]));
        assert_eq!(a.squared_norm(), 30.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn axpy_and_fill() {
        let mut a = Tensor::from_row(&[1.0, 2.0]);
        let b = Tensor::from_row(&[10.0, 10.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a, Tensor::from_row(&[6.0, 7.0]));
        a.fill_zero();
        assert_eq!(a, Tensor::zeros(1, 2));
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn display_does_not_panic() {
        let a = Tensor::zeros(10, 10);
        let s = format!("{a}");
        assert!(s.contains("Tensor 10x10"));
    }
}
