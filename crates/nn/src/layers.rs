//! Neural-network layers used by the paper's model: linear (affine) layers,
//! a gated recurrent unit cell, simpler recurrent cells for the §6.2
//! architecture ablation, and inverted dropout.
//!
//! Layers own no tensors; they hold [`ParamId`] handles into a shared
//! [`ParamStore`] and build their forward pass inside a caller-provided
//! [`Graph`], which makes them usable from multiple threads that each build
//! their own graph over the same parameters.

use crate::graph::{Graph, NodeId};
use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected affine layer `y = x · W + b` with `W: in × out`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new linear layer's parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        Self::with_init(name, in_dim, out_dim, Init::XavierUniform, store, rng)
    }

    /// Registers a new linear layer with an explicit weight initializer.
    pub fn with_init<R: Rng + ?Sized>(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        let weight = store.add(format!("{name}.weight"), init.build(in_dim, out_dim, rng));
        let bias = store.add(format!("{name}.bias"), Tensor::zeros(1, out_dim));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles `(weight, bias)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.weight, self.bias)
    }

    /// Builds the forward pass `x · W + b` in `graph`.
    pub fn forward(&self, graph: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = graph.param(self.weight, store.get(self.weight));
        let b = graph.param(self.bias, store.get(self.bias));
        let xw = graph.matmul(x, w);
        graph.add_row_broadcast(xw, b)
    }

    /// Inference-only forward pass `x · W + b`: no tape, no gradient
    /// buffers, and — unlike [`Linear::forward`] — no copy of the weight
    /// matrix into a graph node. This is the layer the batched serving path
    /// runs on; it computes the same operations in the same order as the
    /// graph version, so results are identical.
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        x.matmul(store.get(self.weight))
            .add_row_broadcast(store.get(self.bias))
    }

    /// Number of scalar parameters in the layer.
    pub fn num_params(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    /// Approximate floating-point operations for a single-row forward pass.
    /// Used by the serving cost model.
    pub fn flops(&self) -> u64 {
        // multiply-add per weight + bias add
        (2 * self.in_dim * self.out_dim + self.out_dim) as u64
    }
}

/// The recurrent cell family evaluated in §6.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Basic `tanh` recurrent unit.
    Tanh,
    /// Gated recurrent unit (the paper's choice).
    Gru,
    /// Long short-term memory unit.
    Lstm,
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellKind::Tanh => write!(f, "tanh"),
            CellKind::Gru => write!(f, "gru"),
            CellKind::Lstm => write!(f, "lstm"),
        }
    }
}

/// A gated recurrent unit cell.
///
/// The update follows Cho et al. (2014), matching `torch.nn.GRUCell`:
///
/// ```text
/// r = σ(x·W_ir + b_ir + h·W_hr + b_hr)
/// z = σ(x·W_iz + b_iz + h·W_hz + b_hz)
/// n = tanh(x·W_in + b_in + r ⊙ (h·W_hn + b_hn))
/// h' = (1 - z) ⊙ n + z ⊙ h
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GruCell {
    w_ir: ParamId,
    w_iz: ParamId,
    w_in: ParamId,
    w_hr: ParamId,
    w_hz: ParamId,
    w_hn: ParamId,
    b_ir: ParamId,
    b_iz: ParamId,
    b_in: ParamId,
    b_hr: ParamId,
    b_hz: ParamId,
    b_hn: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers a GRU cell's parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        let init = Init::RecurrentUniform;
        let w = |suffix: &str, rows: usize, store: &mut ParamStore, rng: &mut R| {
            store.add(
                format!("{name}.{suffix}"),
                init.build(rows, hidden_dim, rng),
            )
        };
        let w_ir = w("w_ir", input_dim, store, rng);
        let w_iz = w("w_iz", input_dim, store, rng);
        let w_in = w("w_in", input_dim, store, rng);
        let w_hr = w("w_hr", hidden_dim, store, rng);
        let w_hz = w("w_hz", hidden_dim, store, rng);
        let w_hn = w("w_hn", hidden_dim, store, rng);
        let b = |suffix: &str, store: &mut ParamStore| {
            store.add(format!("{name}.{suffix}"), Tensor::zeros(1, hidden_dim))
        };
        let b_ir = b("b_ir", store);
        let b_iz = b("b_iz", store);
        let b_in = b("b_in", store);
        let b_hr = b("b_hr", store);
        let b_hz = b("b_hz", store);
        let b_hn = b("b_hn", store);
        Self {
            w_ir,
            w_iz,
            w_in,
            w_hr,
            w_hz,
            w_hn,
            b_ir,
            b_iz,
            b_in,
            b_hr,
            b_hz,
            b_hn,
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Builds one recurrent step `h' = GRU(x, h)` in `graph`.
    pub fn forward(&self, graph: &mut Graph, store: &ParamStore, x: NodeId, h: NodeId) -> NodeId {
        let gate = |graph: &mut Graph, wi, bi, wh, bh, x, h| -> NodeId {
            let wi = graph.param(wi, store.get(wi));
            let bi = graph.param(bi, store.get(bi));
            let wh = graph.param(wh, store.get(wh));
            let bh = graph.param(bh, store.get(bh));
            let xi = graph.matmul(x, wi);
            let xi = graph.add_row_broadcast(xi, bi);
            let hh = graph.matmul(h, wh);
            let hh = graph.add_row_broadcast(hh, bh);
            graph.add(xi, hh)
        };

        let r_pre = gate(graph, self.w_ir, self.b_ir, self.w_hr, self.b_hr, x, h);
        let r = graph.sigmoid(r_pre);
        let z_pre = gate(graph, self.w_iz, self.b_iz, self.w_hz, self.b_hz, x, h);
        let z = graph.sigmoid(z_pre);

        // n = tanh(x·W_in + b_in + r ⊙ (h·W_hn + b_hn))
        let w_in = graph.param(self.w_in, store.get(self.w_in));
        let b_in = graph.param(self.b_in, store.get(self.b_in));
        let w_hn = graph.param(self.w_hn, store.get(self.w_hn));
        let b_hn = graph.param(self.b_hn, store.get(self.b_hn));
        let xn = graph.matmul(x, w_in);
        let xn = graph.add_row_broadcast(xn, b_in);
        let hn = graph.matmul(h, w_hn);
        let hn = graph.add_row_broadcast(hn, b_hn);
        let rhn = graph.mul(r, hn);
        let n_pre = graph.add(xn, rhn);
        let n = graph.tanh(n_pre);

        // h' = (1 - z) ⊙ n + z ⊙ h
        let one_minus_z = graph.one_minus(z);
        let a = graph.mul(one_minus_z, n);
        let b = graph.mul(z, h);
        graph.add(a, b)
    }

    /// Inference-only recurrent step: identical math to [`GruCell::forward`]
    /// (same operations, same order) without building a tape or copying the
    /// weight matrices. Batch rows are independent, so this serves `B` users
    /// with one matmul per gate.
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor, h: &Tensor) -> Tensor {
        let gate_pre = |wi: ParamId, bi: ParamId, wh: ParamId, bh: ParamId| -> Tensor {
            let xi = x.matmul(store.get(wi)).add_row_broadcast(store.get(bi));
            let hh = h.matmul(store.get(wh)).add_row_broadcast(store.get(bh));
            xi.add(&hh)
        };
        let r =
            gate_pre(self.w_ir, self.b_ir, self.w_hr, self.b_hr).map(crate::graph::stable_sigmoid);
        let z =
            gate_pre(self.w_iz, self.b_iz, self.w_hz, self.b_hz).map(crate::graph::stable_sigmoid);
        let xn = x
            .matmul(store.get(self.w_in))
            .add_row_broadcast(store.get(self.b_in));
        let hn = h
            .matmul(store.get(self.w_hn))
            .add_row_broadcast(store.get(self.b_hn));
        let n = xn.add(&r.mul(&hn)).map(f32::tanh);
        let one_minus_z = z.map(|v| 1.0 - v);
        one_minus_z.mul(&n).add(&z.mul(h))
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        3 * (self.input_dim * self.hidden_dim)
            + 3 * (self.hidden_dim * self.hidden_dim)
            + 6 * self.hidden_dim
    }

    /// Approximate FLOPs for a single hidden-state update (one row).
    pub fn flops(&self) -> u64 {
        let matmuls =
            3 * 2 * self.input_dim * self.hidden_dim + 3 * 2 * self.hidden_dim * self.hidden_dim;
        let elementwise = 10 * self.hidden_dim;
        (matmuls + elementwise) as u64
    }
}

/// A basic `tanh` recurrent cell: `h' = tanh(x·W_ih + b + h·W_hh)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TanhCell {
    w_ih: ParamId,
    w_hh: ParamId,
    bias: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl TanhCell {
    /// Registers a tanh recurrent cell's parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        let init = Init::RecurrentUniform;
        let w_ih = store.add(
            format!("{name}.w_ih"),
            init.build(input_dim, hidden_dim, rng),
        );
        let w_hh = store.add(
            format!("{name}.w_hh"),
            init.build(hidden_dim, hidden_dim, rng),
        );
        let bias = store.add(format!("{name}.bias"), Tensor::zeros(1, hidden_dim));
        Self {
            w_ih,
            w_hh,
            bias,
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Builds one recurrent step in `graph`.
    pub fn forward(&self, graph: &mut Graph, store: &ParamStore, x: NodeId, h: NodeId) -> NodeId {
        let w_ih = graph.param(self.w_ih, store.get(self.w_ih));
        let w_hh = graph.param(self.w_hh, store.get(self.w_hh));
        let bias = graph.param(self.bias, store.get(self.bias));
        let xw = graph.matmul(x, w_ih);
        let hw = graph.matmul(h, w_hh);
        let sum = graph.add(xw, hw);
        let pre = graph.add_row_broadcast(sum, bias);
        graph.tanh(pre)
    }

    /// Inference-only recurrent step (see [`GruCell::forward_infer`]).
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor, h: &Tensor) -> Tensor {
        let xw = x.matmul(store.get(self.w_ih));
        let hw = h.matmul(store.get(self.w_hh));
        xw.add(&hw)
            .add_row_broadcast(store.get(self.bias))
            .map(f32::tanh)
    }

    /// Approximate FLOPs for one update.
    pub fn flops(&self) -> u64 {
        (2 * self.input_dim * self.hidden_dim
            + 2 * self.hidden_dim * self.hidden_dim
            + 2 * self.hidden_dim) as u64
    }
}

/// A long short-term memory cell. The cell state and hidden state are both
/// `hidden_dim` wide; [`LstmCell::forward`] takes and returns them
/// concatenated as `[h ; c]` (a `1 × 2·hidden_dim` node) so that the
/// sequence-level code can treat every cell kind uniformly as "state in,
/// state out".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmCell {
    w_ii: ParamId,
    w_if: ParamId,
    w_ig: ParamId,
    w_io: ParamId,
    w_hi: ParamId,
    w_hf: ParamId,
    w_hg: ParamId,
    w_ho: ParamId,
    b_i: ParamId,
    b_f: ParamId,
    b_g: ParamId,
    b_o: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Registers an LSTM cell's parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        let init = Init::RecurrentUniform;
        let wi = |suffix: &str, store: &mut ParamStore, rng: &mut R| {
            store.add(
                format!("{name}.{suffix}"),
                init.build(input_dim, hidden_dim, rng),
            )
        };
        let w_ii = wi("w_ii", store, rng);
        let w_if = wi("w_if", store, rng);
        let w_ig = wi("w_ig", store, rng);
        let w_io = wi("w_io", store, rng);
        let wh = |suffix: &str, store: &mut ParamStore, rng: &mut R| {
            store.add(
                format!("{name}.{suffix}"),
                init.build(hidden_dim, hidden_dim, rng),
            )
        };
        let w_hi = wh("w_hi", store, rng);
        let w_hf = wh("w_hf", store, rng);
        let w_hg = wh("w_hg", store, rng);
        let w_ho = wh("w_ho", store, rng);
        let b = |suffix: &str, store: &mut ParamStore| {
            store.add(format!("{name}.{suffix}"), Tensor::zeros(1, hidden_dim))
        };
        let b_i = b("b_i", store);
        let b_f = b("b_f", store);
        let b_g = b("b_g", store);
        let b_o = b("b_o", store);
        Self {
            w_ii,
            w_if,
            w_ig,
            w_io,
            w_hi,
            w_hf,
            w_hg,
            w_ho,
            b_i,
            b_f,
            b_g,
            b_o,
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality (the combined state is twice this).
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Builds one step. `state` must be a `1 × 2·hidden_dim` node holding
    /// `[h ; c]`; the returned node has the same layout.
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        state: NodeId,
    ) -> NodeId {
        let h = graph.slice_cols(state, 0, self.hidden_dim);
        let c = graph.slice_cols(state, self.hidden_dim, 2 * self.hidden_dim);

        let gate = |graph: &mut Graph, wi, wh, b, act_sigmoid: bool| -> NodeId {
            let wi = graph.param(wi, store.get(wi));
            let wh = graph.param(wh, store.get(wh));
            let b = graph.param(b, store.get(b));
            let xw = graph.matmul(x, wi);
            let hw = graph.matmul(h, wh);
            let sum = graph.add(xw, hw);
            let pre = graph.add_row_broadcast(sum, b);
            if act_sigmoid {
                graph.sigmoid(pre)
            } else {
                graph.tanh(pre)
            }
        };

        let i = gate(graph, self.w_ii, self.w_hi, self.b_i, true);
        let f = gate(graph, self.w_if, self.w_hf, self.b_f, true);
        let g = gate(graph, self.w_ig, self.w_hg, self.b_g, false);
        let o = gate(graph, self.w_io, self.w_ho, self.b_o, true);

        let fc = graph.mul(f, c);
        let ig = graph.mul(i, g);
        let c_next = graph.add(fc, ig);
        let c_tanh = graph.tanh(c_next);
        let h_next = graph.mul(o, c_tanh);
        graph.concat_cols(h_next, c_next)
    }

    /// Inference-only step (see [`GruCell::forward_infer`]); `state` is the
    /// same `[h ; c]` layout as [`LstmCell::forward`].
    pub fn forward_infer(&self, store: &ParamStore, x: &Tensor, state: &Tensor) -> Tensor {
        let h = state.slice_cols(0, self.hidden_dim);
        let c = state.slice_cols(self.hidden_dim, 2 * self.hidden_dim);
        let gate = |wi: ParamId, wh: ParamId, b: ParamId, act_sigmoid: bool| -> Tensor {
            let pre = x
                .matmul(store.get(wi))
                .add(&h.matmul(store.get(wh)))
                .add_row_broadcast(store.get(b));
            if act_sigmoid {
                pre.map(crate::graph::stable_sigmoid)
            } else {
                pre.map(f32::tanh)
            }
        };
        let i = gate(self.w_ii, self.w_hi, self.b_i, true);
        let f = gate(self.w_if, self.w_hf, self.b_f, true);
        let g = gate(self.w_ig, self.w_hg, self.b_g, false);
        let o = gate(self.w_io, self.w_ho, self.b_o, true);
        let c_next = f.mul(&c).add(&i.mul(&g));
        let h_next = o.mul(&c_next.map(f32::tanh));
        h_next.concat_cols(&c_next)
    }

    /// Approximate FLOPs for one update.
    pub fn flops(&self) -> u64 {
        (4 * 2 * self.input_dim * self.hidden_dim
            + 4 * 2 * self.hidden_dim * self.hidden_dim
            + 12 * self.hidden_dim) as u64
    }
}

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1 / (1 - p)`; at evaluation time the
/// layer is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout to `x`. When `training` is false (or `p == 0`) this is
    /// a no-op that returns `x` unchanged.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        graph: &mut Graph,
        x: NodeId,
        training: bool,
        rng: &mut R,
    ) -> NodeId {
        if !training || self.p == 0.0 {
            return x;
        }
        let shape = graph.value(x).shape();
        let keep = 1.0 - self.p;
        let mask_data: Vec<f32> = (0..shape.0 * shape.1)
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(shape.0, shape.1, mask_data);
        graph.mask_mul(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_forward_shape_and_value() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = Linear::new("lin", 3, 2, &mut store, &mut r);
        assert_eq!(layer.num_params(), 8);

        // Overwrite the weights for a deterministic check.
        let (w, b) = layer.params();
        *store.get_mut(w) = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        *store.get_mut(b) = Tensor::from_row(&[0.5, -0.5]);

        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, 2.0, 3.0]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (1, 2));
        assert_eq!(g.value(y).as_slice(), &[4.5, 4.5]);
    }

    #[test]
    fn linear_gradients_flow_to_params() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let layer = Linear::new("lin", 4, 3, &mut store, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, -1.0, 0.5, 2.0]));
        let y = layer.forward(&mut g, &store, x);
        let s = g.sigmoid(y);
        let loss = g.mean(s);
        g.backward(loss);
        let mut grads = store.zero_grads();
        g.param_grads_into(&mut grads);
        let (w, b) = layer.params();
        assert!(grads.get(w).max_abs() > 0.0, "weight grad must be nonzero");
        assert!(grads.get(b).max_abs() > 0.0, "bias grad must be nonzero");
    }

    #[test]
    fn gru_step_shape_and_bounded_output() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cell = GruCell::new("gru", 5, 8, &mut store, &mut r);
        assert_eq!(cell.hidden_dim(), 8);
        assert_eq!(cell.num_params(), 3 * 5 * 8 + 3 * 8 * 8 + 6 * 8);

        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, 0.0, -1.0, 0.5, 2.0]));
        let h = g.constant(Tensor::zeros(1, 8));
        let h1 = cell.forward(&mut g, &store, x, h);
        assert_eq!(g.value(h1).shape(), (1, 8));
        // GRU output is a convex combination of tanh output and previous
        // state, so it stays in (-1, 1) when starting from zero state.
        assert!(g.value(h1).max_abs() < 1.0);
    }

    #[test]
    fn gru_zero_input_zero_state_not_all_zero_after_training_signal() {
        // With zero biases and zero inputs the candidate n is 0, so h stays 0.
        let mut store = ParamStore::new();
        let mut r = rng();
        let cell = GruCell::new("gru", 3, 4, &mut store, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(1, 3));
        let h = g.constant(Tensor::zeros(1, 4));
        let h1 = cell.forward(&mut g, &store, x, h);
        assert_eq!(g.value(h1).max_abs(), 0.0);
    }

    #[test]
    fn gru_bptt_gradients_nonzero_over_sequence() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cell = GruCell::new("gru", 2, 4, &mut store, &mut r);
        let head = Linear::new("head", 4, 1, &mut store, &mut r);

        let mut g = Graph::new();
        let mut h = g.constant(Tensor::zeros(1, 4));
        for step in 0..5 {
            let x = g.constant(Tensor::from_row(&[step as f32, 1.0]));
            h = cell.forward(&mut g, &store, x, h);
        }
        let logit = head.forward(&mut g, &store, h);
        let loss = g.bce_with_logits(logit, Tensor::from_row(&[1.0]), None);
        g.backward(loss);
        let mut grads = store.zero_grads();
        g.param_grads_into(&mut grads);
        let nonzero = grads.iter().filter(|(_, t)| t.max_abs() > 0.0).count();
        // All GRU weights and the head should receive gradient.
        assert!(
            nonzero >= 12,
            "expected most params to get gradient, got {nonzero}"
        );
    }

    #[test]
    fn tanh_cell_forward_bounded() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cell = TanhCell::new("rnn", 3, 6, &mut store, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[10.0, -10.0, 5.0]));
        let h = g.constant(Tensor::zeros(1, 6));
        let h1 = cell.forward(&mut g, &store, x, h);
        assert_eq!(g.value(h1).shape(), (1, 6));
        assert!(g.value(h1).max_abs() <= 1.0);
    }

    #[test]
    fn lstm_state_layout_roundtrip() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let cell = LstmCell::new("lstm", 3, 5, &mut store, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_row(&[1.0, -0.5, 0.25]));
        let state = g.constant(Tensor::zeros(1, 10));
        let next = cell.forward(&mut g, &store, x, state);
        assert_eq!(g.value(next).shape(), (1, 10));
        // Hidden part (first half) is o ⊙ tanh(c) and therefore bounded by 1.
        let hidden = g.value(next).slice_cols(0, 5);
        assert!(hidden.max_abs() <= 1.0);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout::new(0.5);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(1, 100));
        let mut r = rng();
        let y = d.forward(&mut g, x, false, &mut r);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_training_scales_survivors() {
        let d = Dropout::new(0.2);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(1, 10_000));
        let mut r = rng();
        let y = d.forward(&mut g, x, true, &mut r);
        let values = g.value(y).as_slice();
        let zeros = values.iter().filter(|&&v| v == 0.0).count();
        let scaled = values.iter().filter(|&&v| (v - 1.25).abs() < 1e-6).count();
        assert_eq!(zeros + scaled, 10_000);
        // Dropout rate should be near 20%.
        assert!((zeros as f32 / 10_000.0 - 0.2).abs() < 0.03);
        // Expected value preserved.
        let mean: f32 = values.iter().sum::<f32>() / values.len() as f32;
        assert!((mean - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_invalid_probability_panics() {
        let _ = Dropout::new(1.0);
    }

    #[test]
    fn flops_are_positive_and_ordered() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let gru = GruCell::new("gru", 16, 128, &mut store, &mut r);
        let tanh = TanhCell::new("tanh", 16, 128, &mut store, &mut r);
        let lstm = LstmCell::new("lstm", 16, 128, &mut store, &mut r);
        assert!(tanh.flops() < gru.flops());
        assert!(gru.flops() < lstm.flops());
    }
}
