//! # pp-nn
//!
//! A minimal, dependency-light neural-network toolkit built for the
//! reproduction of *Predictive Precompute with Recurrent Neural Networks*
//! (MLSys 2020). It provides exactly the pieces the paper's model needs:
//!
//! * a dense 2-D [`tensor::Tensor`],
//! * a tape-based reverse-mode autodiff [`graph::Graph`],
//! * [`layers`]: `Linear`, `GruCell`, `LstmCell`, `TanhCell`, `Dropout`,
//! * [`optim`]: Adam and SGD,
//! * [`params`]: shared named parameter storage designed for the paper's
//!   per-user parallel gradient accumulation.
//!
//! The crate is *not* a general deep-learning framework: it trades
//! generality (no GPU, no broadcasting rules, `f32` only) for a small,
//! fully-tested implementation whose FLOP counts can be reasoned about
//! exactly — which is what the paper's serving-cost analysis (§9) needs.
//!
//! # Examples
//!
//! Train a one-neuron logistic model on a toy AND dataset:
//!
//! ```
//! use pp_nn::graph::Graph;
//! use pp_nn::layers::Linear;
//! use pp_nn::optim::{Adam, AdamConfig, Optimizer};
//! use pp_nn::params::ParamStore;
//! use pp_nn::tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new("l", 2, 1, &mut store, &mut rng);
//! let mut adam = Adam::new(&store, AdamConfig::default());
//!
//! let xs = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
//! let ys = Tensor::from_col(&[0.0, 0.0, 0.0, 1.0]);
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let x = g.constant(xs.clone());
//!     let logits = layer.forward(&mut g, &store, x);
//!     let loss = g.bce_with_logits(logits, ys.clone(), None);
//!     g.backward(loss);
//!     let mut grads = store.zero_grads();
//!     g.param_grads_into(&mut grads);
//!     adam.step(&mut store, &grads);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod init;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{Graph, NodeId};
pub use layers::{CellKind, Dropout, GruCell, Linear, LstmCell, TanhCell};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd, SgdConfig};
pub use params::{GradStore, ParamId, ParamStore};
pub use tensor::Tensor;
