//! Named parameter storage shared between layers, the autograd graph, and
//! optimizers.
//!
//! Layers do not own their weights directly. Instead they hold [`ParamId`]
//! handles into a [`ParamStore`]. This indirection is what allows the
//! per-user parallel training scheme from §7.1 of the paper: worker threads
//! read parameter values from a shared store, build their own autograd
//! graphs, and produce a [`GradStore`] each, which are then summed and
//! applied by a single optimizer step.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index of the parameter inside its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamEntry {
    name: String,
    value: Tensor,
}

impl ParamEntry {
    /// Parameter name (unique within a store).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }
}

/// A collection of named, trainable parameter tensors.
///
/// # Examples
///
/// ```
/// use pp_nn::params::ParamStore;
/// use pp_nn::tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::ones(2, 2));
/// assert_eq!(store.get(w).shape(), (2, 2));
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if a parameter with the same name already exists.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.params.iter().any(|p| p.name == name),
            "duplicate parameter name: {name}"
        );
        self.params.push(ParamEntry { name, value });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Returns the value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this store.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Returns a mutable reference to the value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this store.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }

    /// Iterates over `(id, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &ParamEntry)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Creates a gradient store with one zero tensor per parameter, shaped
    /// like the parameters.
    pub fn zero_grads(&self) -> GradStore {
        GradStore {
            grads: self
                .params
                .iter()
                .map(|p| Tensor::zeros(p.value.rows(), p.value.cols()))
                .collect(),
        }
    }
}

/// Per-parameter gradient accumulator, shaped like a [`ParamStore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradStore {
    grads: Vec<Tensor>,
}

impl GradStore {
    /// Number of gradient tensors.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Returns `true` when the store holds no gradients.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Gradient for a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient for a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Adds `grad` into the accumulator for `id`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `id` is out of range.
    pub fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        self.grads[id.0].add_scaled_inplace(grad, 1.0);
    }

    /// Adds every gradient in `other` into `self` (used to merge per-thread
    /// gradients).
    ///
    /// # Panics
    ///
    /// Panics if the two stores have different layouts.
    pub fn merge(&mut self, other: &GradStore) {
        assert_eq!(self.grads.len(), other.grads.len(), "grad store layout");
        for (a, b) in self.grads.iter_mut().zip(other.grads.iter()) {
            a.add_scaled_inplace(b, 1.0);
        }
    }

    /// Scales all gradients by a factor (e.g. `1 / batch_size`).
    pub fn scale(&mut self, factor: f32) {
        for g in &mut self.grads {
            g.map_inplace(|x| x * factor);
        }
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(super::tensor::Tensor::squared_norm)
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients so that the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let factor = max_norm / norm;
            self.scale(factor);
        }
        norm
    }

    /// Iterates over gradient tensors in parameter order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.grads.iter().enumerate().map(|(i, g)| (ParamId(i), g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::ones(2, 3));
        let b = store.add("b", Tensor::zeros(1, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a).shape(), (2, 3));
        assert_eq!(store.get(b).shape(), (1, 4));
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.find("a"), Some(a));
        assert_eq!(store.find("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::ones(1, 1));
        store.add("a", Tensor::ones(1, 1));
    }

    #[test]
    fn grad_accumulate_and_merge() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(1, 2));
        let mut g1 = store.zero_grads();
        let mut g2 = store.zero_grads();
        g1.accumulate(a, &Tensor::from_row(&[1.0, 2.0]));
        g2.accumulate(a, &Tensor::from_row(&[3.0, 4.0]));
        g1.merge(&g2);
        assert_eq!(g1.get(a), &Tensor::from_row(&[4.0, 6.0]));
        g1.scale(0.5);
        assert_eq!(g1.get(a), &Tensor::from_row(&[2.0, 3.0]));
        g1.zero();
        assert_eq!(g1.get(a), &Tensor::zeros(1, 2));
    }

    #[test]
    fn grad_clipping() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(1, 2));
        let mut g = store.zero_grads();
        g.accumulate(a, &Tensor::from_row(&[3.0, 4.0]));
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
        // A second clip with a large bound is a no-op.
        let pre2 = g.clip_global_norm(100.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn param_store_serde_roundtrip() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::ones(2, 2));
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(store, back);
    }
}
