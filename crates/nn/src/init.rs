//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Initialization scheme for a weight matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-bound, bound]`.
    Uniform {
        /// Half-width of the sampling interval.
        bound: f32,
    },
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation of the Gaussian.
        std: f32,
    },
    /// Xavier/Glorot uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Kaiming/He normal for ReLU layers: `std = sqrt(2 / fan_in)`.
    KaimingNormal,
    /// PyTorch's default for recurrent cells: uniform in
    /// `[-1/sqrt(hidden), 1/sqrt(hidden)]` where `hidden = fan_out`.
    RecurrentUniform,
}

impl Init {
    /// Materializes a `rows × cols` tensor using this scheme. `rows` is
    /// treated as `fan_in` and `cols` as `fan_out`.
    pub fn build<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(rows, cols),
            Init::Uniform { bound } => sample(
                rows,
                cols,
                Uniform::new_inclusive(-bound as f64, bound as f64),
                rng,
            ),
            Init::Normal { std } => sample(
                rows,
                cols,
                Normal::new(0.0, std as f64).expect("std must be finite and non-negative"),
                rng,
            ),
            Init::XavierUniform => {
                let bound = (6.0 / (rows + cols) as f64).sqrt();
                sample(rows, cols, Uniform::new_inclusive(-bound, bound), rng)
            }
            Init::KaimingNormal => {
                let std = (2.0 / rows.max(1) as f32).sqrt();
                sample(
                    rows,
                    cols,
                    Normal::new(0.0, std as f64).expect("finite std"),
                    rng,
                )
            }
            Init::RecurrentUniform => {
                let bound = 1.0 / (cols.max(1) as f64).sqrt();
                sample(rows, cols, Uniform::new_inclusive(-bound, bound), rng)
            }
        }
    }
}

fn sample<D, R>(rows: usize, cols: usize, dist: D, rng: &mut R) -> Tensor
where
    D: Distribution<f64>,
    R: Rng + ?Sized,
{
    let data: Vec<f32> = (0..rows * cols).map(|_| dist.sample(rng) as f32).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Init::Zeros.build(3, 4, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::Uniform { bound: 0.5 }.build(10, 10, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x.abs() <= 0.5));
        // Not all identical.
        assert!(t.as_slice().iter().any(|&x| x != t.as_slice()[0]));
    }

    #[test]
    fn xavier_bound_shrinks_with_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = Init::XavierUniform.build(4, 4, &mut rng);
        let large = Init::XavierUniform.build(400, 400, &mut rng);
        assert!(small.max_abs() > large.max_abs());
        assert!(large.max_abs() <= (6.0_f32 / 800.0).sqrt() + 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let a = Init::KaimingNormal.build(5, 5, &mut rng_a);
        let b = Init::KaimingNormal.build(5, 5, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    fn recurrent_uniform_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Init::RecurrentUniform.build(8, 64, &mut rng);
        assert!(t.max_abs() <= 1.0 / 8.0 + 1e-6);
    }
}
