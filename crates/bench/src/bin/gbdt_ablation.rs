//! Regenerates **Table 5**: the GBDT feature-engineering ablation
//! (C → E+C → A+E+C) compared against the RNN, on the MPU dataset.

use pp_bench::{section, Scale};
use pp_core::experiments::{run_feature_ablation, run_kfold_experiment, ModelKind};
use pp_data::synth::{MpuGenerator, SyntheticGenerator};

fn main() {
    let scale = Scale::from_env();
    let config = scale.experiment();
    println!("scale: {scale:?}");
    let ds = MpuGenerator::new(scale.mpu()).generate();

    section("Table 5: GBDT feature ablation on MPU");
    println!("{:<10}{:>10}{:>16}", "FEATURES", "PR-AUC", "RECALL@50%P");
    for (set, eval) in run_feature_ablation(&ds, &config) {
        println!(
            "{:<10}{:>10.3}{:>16.3}",
            set.to_string(),
            eval.report.pr_auc,
            eval.report.recall_at_50_precision
        );
    }
    let rnn = run_kfold_experiment(&ds, &[ModelKind::Rnn], &config, 4);
    println!(
        "{:<10}{:>10.3}{:>16.3}",
        "RNN", rnn[0].report.pr_auc, rnn[0].report.recall_at_50_precision
    );
    println!(
        "\nPaper reference (Table 5): C 0.588/0.848, E+C 0.642/0.883, A+E+C 0.686/0.917, RNN 0.767/0.977"
    );
}
