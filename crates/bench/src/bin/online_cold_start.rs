//! Regenerates **Figure 7** (online PR-AUC per day since experiment start
//! for RNN vs GBDT on cold-start users) and the §9 successful-prefetch
//! comparison at the production precision target of 60%.

use pp_baselines::Gbdt;
use pp_bench::{section, Scale};
use pp_core::experiments::OfflineExperimentConfig;
use pp_data::schema::DatasetKind;
use pp_data::split::UserSplit;
use pp_data::synth::{MobileTabGenerator, SyntheticGenerator};
use pp_features::baseline::{
    build_session_examples, BaselineFeaturizer, ElapsedEncoding, FeatureSet,
};
use pp_rnn::{RnnModel, RnnModelConfig, RnnTrainer, TaskKind, TrainerConfig};
use pp_serving::run_online_comparison;

fn main() {
    let scale = Scale::from_env();
    let config: OfflineExperimentConfig = scale.experiment();
    println!("scale: {scale:?}");
    let ds = MobileTabGenerator::new(scale.mobiletab()).generate();
    let split = UserSplit::ninety_ten(&ds, scale.seed);

    // Train the incumbent GBDT and the challenger RNN on the training users.
    let featurizer = BaselineFeaturizer::new(ds.kind, FeatureSet::Full, ElapsedEncoding::Scalar);
    let train_examples = build_session_examples(&ds, &split.train, &featurizer, Some(7));
    let gbdt = Gbdt::train(&train_examples, config.gbdt);
    let mut rnn = RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig {
            hidden_dim: scale.hidden,
            mlp_width: scale.hidden,
            ..Default::default()
        },
        scale.seed,
    );
    let trainer = RnnTrainer::new(TrainerConfig {
        epochs: scale.epochs,
        seed: scale.seed,
        ..Default::default()
    });
    trainer.train(&mut rnn, &ds, &split.train);

    // Replay both models over the held-out users, which start with no history
    // (the cold-start condition of the paper's online experiment).
    let cmp = run_online_comparison(&rnn, &gbdt, &featurizer, &ds, &split.test, 0.6);

    section("Figure 7: online PR-AUC by day since experiment start");
    println!(
        "{:>5}{:>12}{:>12}{:>14}",
        "DAY", "RNN", "GBDT", "PREDICTIONS"
    );
    for (r, g) in cmp.rnn_daily.iter().zip(&cmp.gbdt_daily) {
        println!(
            "{:>5}{:>12.3}{:>12.3}{:>14}",
            r.day, r.pr_auc, g.pr_auc, r.predictions
        );
    }

    section("§9: successful prefetches at the 60%-precision operating point");
    println!(
        "RNN  recall @ 60% precision : {:.3} (paper: 0.511)",
        cmp.rnn_recall_at_target
    );
    println!(
        "GBDT recall @ 60% precision : {:.3} (paper: 0.474)",
        cmp.gbdt_recall_at_target
    );
    println!(
        "relative successful-prefetch lift: {:+.2}% (paper: +7.81%)",
        cmp.successful_prefetch_lift * 100.0
    );
}
