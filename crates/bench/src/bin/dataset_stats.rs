//! Regenerates **Table 2** (dataset summary statistics), **Figure 1**
//! (CDF of per-user access rates), **Figure 5** (distribution of MPU
//! session counts) and the Δt percentiles motivating the `T(Δt)` transform.

use pp_bench::{print_series, section, Scale};
use pp_data::stats::{access_rate_cdf, DatasetSummary, DeltaTSummary, SessionCountHistogram};
use pp_data::synth::{MobileTabGenerator, MpuGenerator, SyntheticGenerator, TimeshiftGenerator};

fn main() {
    let scale = Scale::from_env();
    println!("scale: {scale:?}");
    let datasets = vec![
        (
            "MobileTab",
            MobileTabGenerator::new(scale.mobiletab()).generate(),
        ),
        (
            "Timeshift",
            TimeshiftGenerator::new(scale.timeshift()).generate(),
        ),
        ("MPU", MpuGenerator::new(scale.mpu()).generate()),
    ];

    section("Table 2: dataset summary");
    println!(
        "{:<12}{:>15}{:>12}{:>10}{:>18}{:>16}",
        "DATASET", "POSITIVE RATE", "SESSIONS", "USERS", "SESSIONS/USER", "ZERO-ACCESS %"
    );
    for (name, ds) in &datasets {
        let s = DatasetSummary::compute(*name, ds);
        println!(
            "{:<12}{:>14.1}%{:>12}{:>10}{:>18.1}{:>15.1}%",
            s.name,
            s.positive_rate * 100.0,
            s.num_sessions,
            s.num_users,
            s.mean_sessions_per_user,
            s.zero_access_user_fraction * 100.0
        );
    }

    section("Figure 1: CDF of per-user access rates");
    for (name, ds) in &datasets {
        let cdf = access_rate_cdf(ds, 11);
        print_series(name, &cdf.xs, &cdf.ys);
    }

    section("Figure 5: distribution of per-user MPU session counts");
    let mpu = &datasets[2].1;
    let hist = SessionCountHistogram::compute(mpu, 20, 20_000.min(4 * 20 * scale.days as usize));
    println!("{:<14}{:>10}", "BUCKET START", "USERS");
    for (edge, count) in hist.bucket_edges.iter().zip(&hist.counts) {
        println!("{edge:<14}{count:>10}");
    }

    section("Inter-session gap (Δt) percentiles, seconds");
    println!(
        "{:<12}{:>10}{:>10}{:>10}{:>10}",
        "DATASET", "P10", "P50", "P90", "P99"
    );
    for (name, ds) in &datasets {
        if let Some(d) = DeltaTSummary::compute(ds) {
            println!(
                "{name:<12}{:>10}{:>10}{:>10}{:>10}",
                d.p10, d.p50, d.p90, d.p99
            );
        }
    }
}
