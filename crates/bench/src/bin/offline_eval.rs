//! Regenerates **Table 3** (PR-AUC of PercentageBased / LR / GBDT / RNN on
//! all three datasets), **Table 4** (recall at 50% precision) and
//! **Figure 6** (the MobileTab precision-recall curves).
//!
//! Set `PP_DATASETS=mobiletab,timeshift,mpu` to restrict the run.

use pp_bench::{section, Scale};
use pp_core::experiments::{run_kfold_experiment, run_offline_experiment, ModelKind};
use pp_core::ModelEvaluation;
use pp_data::synth::{MobileTabGenerator, MpuGenerator, SyntheticGenerator, TimeshiftGenerator};
use pp_metrics::report::{format_comparison_table, relative_improvement_percent, EvalReport};

fn main() {
    let scale = Scale::from_env();
    let config = scale.experiment();
    println!("scale: {scale:?}");
    let selected =
        std::env::var("PP_DATASETS").unwrap_or_else(|_| "mobiletab,timeshift,mpu".into());

    let mut reports: Vec<EvalReport> = Vec::new();
    let mut mobiletab_evals: Vec<ModelEvaluation> = Vec::new();

    if selected.contains("mobiletab") {
        section("MobileTab (90/10 user split, last 7 days)");
        let ds = MobileTabGenerator::new(scale.mobiletab()).generate();
        let evals = run_offline_experiment(&ds, &ModelKind::ALL, &config);
        for e in &evals {
            println!(
                "{:<18} PR-AUC {:.3}  recall@50%P {:.3}  logloss {:.3}",
                e.model.to_string(),
                e.report.pr_auc,
                e.report.recall_at_50_precision,
                e.report.log_loss
            );
            reports.push(e.report.clone());
        }
        mobiletab_evals = evals;
    }

    if selected.contains("timeshift") {
        section("Timeshift (90/10 user split, last 7 peak windows)");
        let ds = TimeshiftGenerator::new(scale.timeshift()).generate();
        let evals = run_offline_experiment(&ds, &ModelKind::ALL, &config);
        for e in &evals {
            println!(
                "{:<18} PR-AUC {:.3}  recall@50%P {:.3}  logloss {:.3}",
                e.model.to_string(),
                e.report.pr_auc,
                e.report.recall_at_50_precision,
                e.report.log_loss
            );
            reports.push(e.report.clone());
        }
    }

    if selected.contains("mpu") {
        section("MPU (4-fold cross-validation, last 7 days)");
        let ds = MpuGenerator::new(scale.mpu()).generate();
        let evals = run_kfold_experiment(&ds, &ModelKind::ALL, &config, 4);
        for e in &evals {
            println!(
                "{:<18} PR-AUC {:.3}  recall@50%P {:.3}  logloss {:.3}",
                e.model.to_string(),
                e.report.pr_auc,
                e.report.recall_at_50_precision,
                e.report.log_loss
            );
            reports.push(e.report.clone());
        }
    }

    section("Table 3: PR-AUC");
    println!("{}", format_comparison_table(&reports, |r| r.pr_auc, ""));
    if let (Some(gbdt), Some(rnn)) = (
        reports
            .iter()
            .find(|r| r.model == "GBDT" && r.dataset == "MobileTab"),
        reports
            .iter()
            .find(|r| r.model == "RNN" && r.dataset == "MobileTab"),
    ) {
        println!(
            "MobileTab RNN improvement over GBDT: {:.2}% (paper: 3.11%)",
            relative_improvement_percent(gbdt.pr_auc, rnn.pr_auc)
        );
    }

    section("Table 4: recall @ 50% precision");
    println!(
        "{}",
        format_comparison_table(&reports, |r| r.recall_at_50_precision, "")
    );

    if !mobiletab_evals.is_empty() {
        section("Figure 6: MobileTab precision-recall curves (11-point sample)");
        for e in &mobiletab_evals {
            let curve = e.pr_curve();
            let pts = curve.points();
            println!("{}:", e.model);
            println!("  {:>8}  {:>10}  {:>10}", "RECALL", "PRECISION", "THRESH");
            let step = (pts.len() / 10).max(1);
            for p in pts.iter().step_by(step) {
                println!(
                    "  {:>8.3}  {:>10.3}  {:>10.4}",
                    p.recall, p.precision, p.threshold
                );
            }
        }
    }
}
