//! Regenerates the §6.2 architecture ablations: recurrent cell type
//! (tanh vs GRU vs LSTM), hidden-state dimensionality sweep, and the effect
//! of the latent-cross interaction.

use pp_bench::{section, Scale};
use pp_core::experiments::{evaluate_model_on_split, ModelKind, OfflineExperimentConfig};
use pp_data::split::UserSplit;
use pp_data::synth::{MobileTabGenerator, SyntheticGenerator};
use pp_nn::layers::CellKind;
use pp_rnn::RnnModelConfig;

fn main() {
    let scale = Scale::from_env();
    println!("scale: {scale:?}");
    let ds = MobileTabGenerator::new(scale.mobiletab()).generate();
    let split = UserSplit::ninety_ten(&ds, scale.seed);
    let base: OfflineExperimentConfig = scale.experiment();

    let run = |rnn_model: RnnModelConfig| {
        let config = OfflineExperimentConfig { rnn_model, ..base };
        evaluate_model_on_split(ModelKind::Rnn, &ds, &split.train, &split.test, &config)
    };

    section("§6.2: recurrent cell comparison (MobileTab)");
    println!("{:<8}{:>10}{:>16}", "CELL", "PR-AUC", "RECALL@50%P");
    for cell in [CellKind::Tanh, CellKind::Gru, CellKind::Lstm] {
        let eval = run(RnnModelConfig {
            cell,
            hidden_dim: scale.hidden,
            mlp_width: scale.hidden,
            ..Default::default()
        });
        println!(
            "{:<8}{:>10.3}{:>16.3}",
            cell.to_string(),
            eval.report.pr_auc,
            eval.report.recall_at_50_precision
        );
    }

    section("Hidden-state dimensionality sweep (GRU)");
    println!(
        "{:<8}{:>10}{:>16}{:>14}",
        "DIM", "PR-AUC", "RECALL@50%P", "BYTES/USER"
    );
    for dim in [16usize, 32, 64, 128] {
        let eval = run(RnnModelConfig {
            hidden_dim: dim,
            mlp_width: dim,
            ..Default::default()
        });
        println!(
            "{:<8}{:>10.3}{:>16.3}{:>14}",
            dim,
            eval.report.pr_auc,
            eval.report.recall_at_50_precision,
            dim * 4
        );
    }

    section("Latent cross ablation (GRU)");
    for (name, latent_cross) in [("with latent cross", true), ("without latent cross", false)] {
        let eval = run(RnnModelConfig {
            hidden_dim: scale.hidden,
            mlp_width: scale.hidden,
            latent_cross,
            ..Default::default()
        });
        println!(
            "{:<22} PR-AUC {:.3}  recall@50%P {:.3}",
            name, eval.report.pr_auc, eval.report.recall_at_50_precision
        );
    }
}
