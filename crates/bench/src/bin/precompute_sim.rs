//! `precompute_sim` — scenario-driven simulation of the budget-aware
//! precompute subsystem (`pp-precompute`) on seeded synthetic traffic.
//!
//! Three traffic scenarios replay the same seeded MobileTab session log
//! through a fresh [`PrecomputeSystem`] each:
//!
//! * **cold_start** — the raw stream against an empty system: every user's
//!   first sessions arrive with no cache, a full budget bucket, and the
//!   uncalibrated initial threshold;
//! * **bursty** — timestamps quantized to 15-minute boundaries, so traffic
//!   arrives as synchronized thundering herds that stress token-bucket
//!   admission and the max-inflight cap, with idle refill windows between;
//! * **diurnal** — off-peak sessions (23:00–07:59) thinned to ~30%,
//!   producing the day/night load swing a production deployment sees.
//!
//! Scores come from a seeded noisy oracle (logistic noise around the
//! ground-truth label) so the score→label relationship is controlled and
//! the adaptive threshold controller has a real operating curve to track —
//! the serving-engine integration itself is exercised separately by an
//! `engine_smoke` stage that pushes real batched RNN scores through
//! [`DecisionEngine::score_and_decide`].
//!
//! Environment knobs (defaults in parentheses): `PP_USERS` (400), `PP_DAYS`
//! (30), `PP_SEED` (17), `PP_TARGET_PRECISION` (0.6), `PP_INITIAL_THRESHOLD`
//! (0.5), `PP_WINDOW` (100), `PP_GAIN` (1.0), `PP_MAX_WAVE` (256),
//! `PP_OUT` (`BENCH_precompute.json`), `PP_REQUIRE_PRECISION` (unset →
//! report only; set e.g. `0.05` to exit non-zero when any scenario's
//! steady-state precision misses the target by more than that).
//!
//! Hard invariants are asserted on every run regardless of knobs: outcome
//! accounting exactly balances decisions (conservation) and the budget is
//! never overdrawn.

use pp_bench::{env_or, section, Scale};
use pp_data::schema::{Context, DatasetKind, Tab, UserId};
use pp_data::synth::{MobileTabGenerator, SyntheticGenerator};
use pp_precompute::{
    prefetch_cost_units, BudgetConfig, CacheConfig, ControllerConfig, DecisionEngine,
    OutcomeCounts, PrecomputeSystem, SystemConfig,
};
use pp_rnn::{RnnModel, RnnModelConfig, TaskKind};
use pp_serving::ShardedStateStore;
use pp_serving::{rnn_profile, BatchServingEngine, CostWeights, PredictRequest, Prediction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;

/// One session-start event of the replayed traffic.
#[derive(Debug, Clone, Copy)]
struct Event {
    timestamp: i64,
    user: UserId,
    accessed: bool,
}

#[derive(Debug, Clone, Copy, Serialize)]
struct SimConfig {
    users: usize,
    days: u32,
    seed: u64,
    target_precision: f64,
    initial_threshold: f64,
    controller_window: usize,
    controller_gain: f64,
    max_wave: usize,
    burst_prefetches: f64,
    sustained_prefetches_per_sec: f64,
    max_inflight: usize,
    cost_per_prefetch_units: f64,
    cache_ttl_secs: i64,
}

#[derive(Debug, Clone, Serialize)]
struct ScenarioResult {
    scenario: String,
    events: usize,
    waves: usize,
    scored: u64,
    prefetches_executed: u64,
    denied: u64,
    outcomes: OutcomeCounts,
    precision_overall: Option<f64>,
    precision_steady_state: Option<f64>,
    recall: Option<f64>,
    waste_ratio: Option<f64>,
    budget_utilization: f64,
    budget_denied_budget: u64,
    budget_denied_inflight: u64,
    max_inflight_seen: usize,
    cache_hits: u64,
    cache_expirations: u64,
    cache_lru_evictions: u64,
    threshold_initial: f64,
    threshold_final: f64,
    controller_windows: u64,
    precision_within_tolerance: bool,
}

#[derive(Debug, Clone, Serialize)]
struct EngineSmoke {
    requests: usize,
    prefetch_intents: u64,
    skips: u64,
    forward_passes: u64,
    mean_batch_size: f64,
}

#[derive(Debug, Clone, Serialize)]
struct SimReport {
    benchmark: String,
    config: SimConfig,
    scenarios: Vec<ScenarioResult>,
    engine_smoke: EngineSmoke,
}

/// Seeded noisy oracle: a logistic-noise score centered above the
/// threshold band for accessed sessions and below it otherwise. The score
/// is informative but imperfect, so precision genuinely depends on the
/// threshold the controller picks.
fn oracle_score(rng: &mut StdRng, accessed: bool) -> f64 {
    let mu = if accessed { 0.9 } else { -0.9 };
    // Logistic noise via inverse-CDF of a uniform draw.
    let u: f64 = rng.gen_range(1e-9..1.0 - 1e-9);
    let noise = (u / (1.0 - u)).ln();
    1.0 / (1.0 + (-(mu + 0.9 * noise)).exp())
}

fn build_events(users: usize, days: u32, seed: u64) -> Vec<Event> {
    let mut config = Scale::from_env().mobiletab();
    config.num_users = users;
    config.num_days = days;
    config.seed = seed;
    let dataset = MobileTabGenerator::new(config).generate();
    let mut events: Vec<Event> = dataset
        .users
        .iter()
        .flat_map(|user| {
            user.sessions.iter().map(|s| Event {
                timestamp: s.timestamp,
                user: user.user_id,
                accessed: s.accessed,
            })
        })
        .collect();
    events.sort_by_key(|e| (e.timestamp, e.user.0));
    events
}

/// Quantize timestamps to 15-minute boundaries: synchronized bursts.
fn burstify(events: &[Event]) -> Vec<Event> {
    let mut out: Vec<Event> = events
        .iter()
        .map(|e| Event {
            timestamp: (e.timestamp / 900) * 900,
            ..*e
        })
        .collect();
    out.sort_by_key(|e| (e.timestamp, e.user.0));
    out
}

/// Thin off-peak hours (23:00–07:59 UTC) to ~30%: a day/night load swing.
fn diurnalize(events: &[Event], seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1e5);
    events
        .iter()
        .filter(|e| {
            let hour = pp_data::schema::hour_of_day(e.timestamp);
            (8..23).contains(&hour) || rng.gen::<f64>() < 0.3
        })
        .copied()
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(name: &str, events: &[Event], sim: &SimConfig, tolerance: f64) -> ScenarioResult {
    let mut system = PrecomputeSystem::new(SystemConfig {
        initial_threshold: sim.initial_threshold,
        budget: BudgetConfig {
            capacity_units: sim.burst_prefetches * sim.cost_per_prefetch_units,
            refill_units_per_sec: sim.sustained_prefetches_per_sec * sim.cost_per_prefetch_units,
            cost_per_prefetch_units: sim.cost_per_prefetch_units,
            max_inflight: sim.max_inflight,
        },
        cache: CacheConfig {
            shards: 8,
            capacity_per_shard: 2_048,
            ttl_secs: sim.cache_ttl_secs,
        },
        controller: ControllerConfig {
            target_precision: sim.target_precision,
            window: sim.controller_window,
            gain: sim.controller_gain,
            min_threshold: 0.01,
            max_threshold: 0.99,
        },
        payload_bytes: 512,
    });
    let mut rng = StdRng::seed_from_u64(sim.seed ^ 0x5c0_7e5);
    let threshold_initial = system.controller().threshold();

    // Waves: consecutive events sharing a one-minute bucket, cut when a
    // user repeats (one outstanding decision per user) or at max_wave.
    let mut waves = 0usize;
    let mut halfway: Option<OutcomeCounts> = None;
    let mut i = 0usize;
    while i < events.len() {
        let bucket = events[i].timestamp / 60;
        let mut wave: Vec<(Prediction, bool)> = Vec::new();
        let mut users = std::collections::HashSet::new();
        while i < events.len()
            && events[i].timestamp / 60 == bucket
            && wave.len() < sim.max_wave
            && users.insert(events[i].user.0)
        {
            let e = events[i];
            wave.push((
                Prediction {
                    user_id: e.user,
                    probability: oracle_score(&mut rng, e.accessed),
                },
                e.accessed,
            ));
            i += 1;
        }
        let now = bucket * 60;
        let predictions: Vec<Prediction> = wave.iter().map(|(p, _)| *p).collect();
        system.handle_scores(&predictions, now);
        // Sessions resolve shortly after their start; accessed sessions
        // consume the payload quickly, the rest time out at window close.
        for (prediction, accessed) in &wave {
            let dwell = if *accessed { 10 } else { 45 };
            system
                .resolve_session(prediction.user_id, now + dwell, *accessed)
                .expect("every wave entry has a pending decision");
        }
        waves += 1;
        if halfway.is_none() && i >= events.len() / 2 {
            halfway = Some(system.tracker().counts());
        }
    }

    system
        .check_invariants()
        .unwrap_or_else(|violation| panic!("{name}: invariant violated: {violation}"));

    let report = system.report();
    // Steady-state precision: over the second half of the traffic, after
    // the controller has had the first half to find the operating point.
    let precision_steady_state = halfway.and_then(|h| {
        let hits = report.outcomes.hits - h.hits;
        let prefetches = report.outcomes.prefetches_resolved() - h.prefetches_resolved();
        (prefetches > 0).then(|| hits as f64 / prefetches as f64)
    });
    let within = precision_steady_state
        .map(|p| (p - sim.target_precision).abs() <= tolerance)
        .unwrap_or(false);

    let result = ScenarioResult {
        scenario: name.to_string(),
        events: events.len(),
        waves,
        scored: report.decisions.scored,
        prefetches_executed: report.budget.admitted,
        denied: report.denied,
        outcomes: report.outcomes,
        precision_overall: report.precision,
        precision_steady_state,
        recall: report.recall,
        waste_ratio: report.waste_ratio,
        budget_utilization: report.budget.utilization(),
        budget_denied_budget: report.budget.denied_budget,
        budget_denied_inflight: report.budget.denied_inflight,
        max_inflight_seen: report.budget.max_inflight_seen,
        cache_hits: report.cache.hits,
        cache_expirations: report.cache.expirations,
        cache_lru_evictions: report.cache.lru_evictions,
        threshold_initial,
        threshold_final: report.threshold,
        controller_windows: report.controller_windows,
        precision_within_tolerance: within,
    };
    println!(
        "  {:<11} {:>6} events  precision {:.3} (steady {:.3}, target {:.2})  recall {:.3}  waste {:.3}  budget util {:.2}  threshold {:.3} -> {:.3}  windows {}",
        result.scenario,
        result.events,
        result.precision_overall.unwrap_or(f64::NAN),
        result.precision_steady_state.unwrap_or(f64::NAN),
        sim.target_precision,
        result.recall.unwrap_or(f64::NAN),
        result.waste_ratio.unwrap_or(f64::NAN),
        result.budget_utilization,
        result.threshold_initial,
        result.threshold_final,
        result.controller_windows,
    );
    result
}

/// Push real batched RNN scores through the decision engine: the
/// serving → precompute integration, end to end.
fn engine_smoke(events: &[Event], seed: u64) -> EngineSmoke {
    let model = Arc::new(RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig::tiny(),
        seed,
    ));
    let store = Arc::new(ShardedStateStore::with_capacity(8, 100_000));
    let engine = BatchServingEngine::start(model, store, 2, 64);
    let requests: Vec<PredictRequest> = events
        .iter()
        .take(2_000)
        .enumerate()
        .map(|(i, e)| PredictRequest {
            user_id: e.user,
            timestamp: e.timestamp,
            context: Context::MobileTab {
                unread_count: (i % 7) as u8,
                active_tab: Tab::ALL[i % Tab::ALL.len()],
            },
            elapsed_secs: 300,
        })
        .collect();
    let mut decisions = DecisionEngine::new(pp_core::PrecomputePolicy::with_threshold(0.5));
    let mut served = 0usize;
    for chunk in requests.chunks(256) {
        served += decisions.score_and_decide(&engine, chunk).len();
    }
    assert_eq!(served, requests.len());
    let engine_stats = engine.stats();
    let stats = decisions.stats();
    EngineSmoke {
        requests: served,
        prefetch_intents: stats.prefetch_intents,
        skips: stats.skips,
        forward_passes: engine_stats.batches,
        mean_batch_size: engine_stats.mean_batch_size(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let target_precision: f64 = env_or("PP_TARGET_PRECISION", 0.6);
    let initial_threshold: f64 = env_or("PP_INITIAL_THRESHOLD", 0.5);
    let window: usize = env_or("PP_WINDOW", 100);
    let gain: f64 = env_or("PP_GAIN", 1.0);
    let max_wave: usize = env_or("PP_MAX_WAVE", 256);
    let out_path = std::env::var("PP_OUT").unwrap_or_else(|_| "BENCH_precompute.json".to_string());

    section("precompute_sim: budget-aware precompute on seeded MobileTab traffic");
    let events = build_events(scale.users, scale.days, scale.seed);
    assert!(!events.is_empty(), "no traffic — increase PP_USERS/PP_DAYS");
    let span_secs = (events.last().unwrap().timestamp - events[0].timestamp).max(1) as f64;
    let events_per_sec = events.len() as f64 / span_secs;

    // Prefetch cost in the §9 cost model's units, from the RNN serving
    // profile (one 512-byte state lookup + the predict FLOPs).
    let model = RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig::tiny(),
        scale.seed,
    );
    let cost = prefetch_cost_units(&rnn_profile(&model), &CostWeights::default());

    let sim = SimConfig {
        users: scale.users,
        days: scale.days,
        seed: scale.seed,
        target_precision,
        initial_threshold,
        controller_window: window,
        controller_gain: gain,
        max_wave,
        burst_prefetches: env_or("PP_BURST_PREFETCHES", 128.0),
        // Sustain roughly half the raw session rate as prefetches: ample in
        // smooth traffic, binding during synchronized bursts.
        sustained_prefetches_per_sec: env_or("PP_SUSTAINED_PREFETCHES", events_per_sec * 0.5),
        max_inflight: env_or("PP_MAX_INFLIGHT", 192),
        cost_per_prefetch_units: cost,
        cache_ttl_secs: env_or("PP_CACHE_TTL", 900),
    };
    println!(
        "traffic: {} events over {:.1} days ({:.2} events/s); prefetch cost {:.0} units; target precision {:.2}",
        events.len(),
        span_secs / 86_400.0,
        events_per_sec,
        cost,
        target_precision
    );

    // Setting the variable opts into gating, so a malformed value must
    // fail loudly rather than silently gate at the default tolerance.
    let tolerance: f64 = match std::env::var("PP_REQUIRE_PRECISION") {
        Ok(raw) => raw
            .parse()
            .expect("PP_REQUIRE_PRECISION must be a number (e.g. 0.05)"),
        Err(_) => 0.05,
    };

    section("scenarios");
    let scenarios = vec![
        run_scenario("cold_start", &events, &sim, tolerance),
        run_scenario("bursty", &burstify(&events), &sim, tolerance),
        run_scenario("diurnal", &diurnalize(&events, scale.seed), &sim, tolerance),
    ];

    section("serving-engine integration smoke");
    let smoke = engine_smoke(&events, scale.seed);
    println!(
        "  scored {} requests through BatchServingEngine: {} prefetch intents, {} skips, {} forward passes (mean batch {:.1})",
        smoke.requests, smoke.prefetch_intents, smoke.skips, smoke.forward_passes, smoke.mean_batch_size
    );

    let report = SimReport {
        benchmark: "precompute_sim".to_string(),
        config: sim,
        scenarios,
        engine_smoke: smoke,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");

    if std::env::var("PP_REQUIRE_PRECISION").is_ok() {
        let failing: Vec<&ScenarioResult> = report
            .scenarios
            .iter()
            .filter(|s| !s.precision_within_tolerance)
            .collect();
        if !failing.is_empty() {
            for s in &failing {
                eprintln!(
                    "FAIL: {} steady-state precision {:?} outside target {} ± {}",
                    s.scenario, s.precision_steady_state, target_precision, tolerance
                );
            }
            std::process::exit(1);
        }
        println!(
            "OK: all scenarios hold precision {target_precision} ± {tolerance} in steady state"
        );
    }
}
