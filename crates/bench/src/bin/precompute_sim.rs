//! `precompute_sim` — scenario-driven simulation of the budget-aware
//! precompute subsystem (`pp-precompute`) on seeded synthetic traffic.
//!
//! Three oracle-scored traffic scenarios replay the same seeded MobileTab
//! session log through a fresh [`PrecomputeSystem`] each:
//!
//! * **cold_start** — the raw stream against an empty system: every user's
//!   first sessions arrive with no cache, a full budget bucket, and the
//!   uncalibrated initial threshold;
//! * **bursty** — timestamps quantized to 15-minute boundaries, so traffic
//!   arrives as synchronized thundering herds that stress token-bucket
//!   admission and the max-inflight cap, with idle refill windows between;
//! * **diurnal** — off-peak sessions (23:00–07:59) thinned to ~30%,
//!   producing the day/night load swing a production deployment sees.
//!
//! Their scores come from a seeded noisy oracle (logistic noise around the
//! ground-truth label) so the score→label relationship is controlled and
//! the adaptive threshold controller has a known operating curve to track.
//!
//! The **learned_loop** scenario closes the loop with the real model end to
//! end: an RNN is trained in-sim on a seeded warmup split of users, its
//! threshold offline-calibrated for the precision target, and the held-out
//! users' traffic is then scored through
//! [`BatchServingEngine::predict_many_blocking`] — with resolved outcomes
//! drained back into [`pp_core::PrecomputePolicy::recalibrate`] on every
//! closed controller window (`PrecomputeSystem::on_window_resolved`). The
//! report compares the learned run against an oracle run on the *same*
//! held-out traffic, and FIFO against priority admission at an equal,
//! deliberately tight budget on the burstified variant (successful-prefetch
//! lift).
//!
//! Usage: `precompute_sim [--scenario cold_start|bursty|diurnal|learned_loop|all]`
//! (default `all`).
//!
//! Environment knobs (defaults in parentheses): `PP_USERS` (400), `PP_DAYS`
//! (30), `PP_SEED` (17), `PP_TARGET_PRECISION` (0.6), `PP_INITIAL_THRESHOLD`
//! (0.5), `PP_WINDOW` (100), `PP_GAIN` (1.0), `PP_MAX_WAVE` (256),
//! `PP_TRAIN_USERS` (96), `PP_TRAIN_EPOCHS` (4), `PP_HIDDEN` (64),
//! `PP_WARM_FRACTION` (0.3), `PP_PRIORITY_BURST` (16), `PP_PRIORITY_SUSTAIN`
//! (15% of the burstified event rate), `PP_OUT`
//! (`BENCH_precompute.json`), `PP_REQUIRE_PRECISION` (unset → report only;
//! set e.g. `0.05` to exit non-zero when any oracle scenario's steady-state
//! precision misses the target by more than that), `PP_REQUIRE_LEARNED_PRECISION`
//! (unset → report only; set e.g. `0.10` to exit non-zero when the learned
//! run's steady-state precision misses the target by more than that, or
//! when priority admission yields fewer successful prefetches than FIFO at
//! equal budget).
//!
//! Hard invariants are asserted on every run regardless of knobs: outcome
//! accounting exactly balances decisions (conservation) and the budget is
//! never overdrawn.

use pp_bench::{env_or, section, Scale};
use pp_core::PrecomputePolicy;
use pp_data::schema::{Context, Dataset, DatasetKind, Tab, UserId};
use pp_data::synth::{MobileTabGenerator, SyntheticGenerator};
use pp_metrics::pr::{pr_auc, recall_at_precision};
use pp_precompute::{
    prefetch_cost_units, AdmissionOrder, BudgetConfig, CacheConfig, ControllerConfig,
    DecisionEngine, OutcomeCounts, PrecomputeSystem, SystemConfig,
};
use pp_rnn::{scores_and_labels, RnnModel, RnnModelConfig, RnnTrainer, TaskKind, TrainerConfig};
use pp_serving::{
    rnn_profile, BatchScheduler, BatchServingEngine, CostWeights, PredictRequest, Prediction,
    ShardedStateStore, UpdateRequest,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// One session-start event of the replayed traffic.
#[derive(Debug, Clone, Copy)]
struct Event {
    timestamp: i64,
    user: UserId,
    context: Context,
    accessed: bool,
}

#[derive(Debug, Clone, Copy, Serialize)]
struct SimConfig {
    users: usize,
    days: u32,
    seed: u64,
    target_precision: f64,
    initial_threshold: f64,
    controller_window: usize,
    controller_gain: f64,
    max_wave: usize,
    burst_prefetches: f64,
    sustained_prefetches_per_sec: f64,
    max_inflight: usize,
    cost_per_prefetch_units: f64,
    cache_ttl_secs: i64,
    train_users: usize,
    train_epochs: usize,
    /// Hidden dimensionality of the in-sim-trained model (`PP_HIDDEN`).
    hidden: usize,
}

impl SimConfig {
    /// The [`SystemConfig`] shared by every scenario run, parameterized by
    /// the starting threshold, admission order, and feedback-loop switch.
    fn system(
        &self,
        initial_threshold: f64,
        admission: AdmissionOrder,
        recalibrate_from_outcomes: bool,
    ) -> SystemConfig {
        SystemConfig {
            initial_threshold,
            budget: BudgetConfig {
                capacity_units: self.burst_prefetches * self.cost_per_prefetch_units,
                refill_units_per_sec: self.sustained_prefetches_per_sec
                    * self.cost_per_prefetch_units,
                cost_per_prefetch_units: self.cost_per_prefetch_units,
                max_inflight: self.max_inflight,
            },
            cache: CacheConfig {
                shards: 8,
                capacity_per_shard: 2_048,
                ttl_secs: self.cache_ttl_secs,
            },
            controller: ControllerConfig {
                target_precision: self.target_precision,
                window: self.controller_window,
                gain: self.controller_gain,
                min_threshold: 0.01,
                max_threshold: 0.99,
            },
            admission,
            recalibrate_from_outcomes,
            payload_bytes: 512,
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct ScenarioResult {
    scenario: String,
    events: usize,
    waves: usize,
    scored: u64,
    prefetches_executed: u64,
    denied: u64,
    outcomes: OutcomeCounts,
    precision_overall: Option<f64>,
    precision_steady_state: Option<f64>,
    recall: Option<f64>,
    waste_ratio: Option<f64>,
    budget_utilization: f64,
    budget_denied_budget: u64,
    budget_denied_inflight: u64,
    max_inflight_seen: usize,
    cache_hits: u64,
    cache_expirations: u64,
    cache_lru_evictions: u64,
    threshold_initial: f64,
    threshold_final: f64,
    controller_windows: u64,
    recalibrations: u64,
    recalibration_holds: u64,
    /// Mean predicted probability over executed prefetches — under priority
    /// admission this is the budget being steered toward the top scores.
    mean_admitted_probability: Option<f64>,
    precision_within_tolerance: bool,
}

#[derive(Debug, Clone, Serialize)]
struct EngineSmoke {
    requests: usize,
    prefetch_intents: u64,
    skips: u64,
    forward_passes: u64,
    mean_batch_size: f64,
}

/// The FIFO-vs-priority admission comparison at an equal, tight budget.
#[derive(Debug, Clone, Serialize)]
struct AdmissionComparison {
    burst_prefetches: f64,
    sustained_prefetches_per_sec: f64,
    fifo: ScenarioResult,
    priority: ScenarioResult,
    /// priority hits − FIFO hits: the successful-prefetch lift priority
    /// admission buys from the same budget.
    hit_lift: i64,
    priority_at_least_fifo: bool,
    /// Whether the two runs' actual spends stayed within a few percent of
    /// each other — admission order perturbs downstream inflight/cache
    /// state, so the exact spend can drift; beyond ~5% the hit comparison
    /// is not apples-to-apples and the gate must fail instead.
    spend_comparable: bool,
}

/// The closed learned-score loop: in-sim-trained RNN scores with
/// outcome-driven recalibration, against the oracle on identical traffic.
#[derive(Debug, Clone, Serialize)]
struct LearnedLoopReport {
    train_users: usize,
    serve_users: usize,
    train_epochs: usize,
    train_predictions: u64,
    train_secs: f64,
    /// Threshold offline-calibrated on the warmup split for the target.
    calibrated_threshold: f64,
    /// Offline PR-AUC of the trained model on the held-out users.
    heldout_pr_auc: f64,
    /// Offline recall at the precision target on the held-out users — the
    /// ceiling the live loop is chasing.
    heldout_recall_at_target: f64,
    /// Events of the held-out stream replayed as state warm-up (updates
    /// only) before decisions start.
    warmup_events: usize,
    oracle: ScenarioResult,
    learned: ScenarioResult,
    fifo_vs_priority: AdmissionComparison,
    learned_within_tolerance: bool,
}

#[derive(Debug, Clone, Serialize)]
struct SimReport {
    benchmark: String,
    config: SimConfig,
    scenarios: Vec<ScenarioResult>,
    engine_smoke: Option<EngineSmoke>,
    learned_loop: Option<LearnedLoopReport>,
}

/// Seeded noisy oracle: a logistic-noise score centered above the
/// threshold band for accessed sessions and below it otherwise. The score
/// is informative but imperfect, so precision genuinely depends on the
/// threshold the controller picks.
fn oracle_score(rng: &mut StdRng, accessed: bool) -> f64 {
    let mu = if accessed { 0.9 } else { -0.9 };
    // Logistic noise via inverse-CDF of a uniform draw.
    let u: f64 = rng.gen_range(1e-9..1.0 - 1e-9);
    let noise = (u / (1.0 - u)).ln();
    1.0 / (1.0 + (-(mu + 0.9 * noise)).exp())
}

fn build_dataset(users: usize, days: u32, seed: u64) -> Dataset {
    let mut config = Scale::from_env().mobiletab();
    config.num_users = users;
    config.num_days = days;
    config.seed = seed;
    MobileTabGenerator::new(config).generate()
}

/// Flattens the given users' histories into a time-ordered event stream.
fn events_of_users(dataset: &Dataset, user_indices: &[usize]) -> Vec<Event> {
    let mut events: Vec<Event> = user_indices
        .iter()
        .flat_map(|&ui| {
            let user = &dataset.users[ui];
            user.sessions.iter().map(move |s| Event {
                timestamp: s.timestamp,
                user: user.user_id,
                context: s.context,
                accessed: s.accessed,
            })
        })
        .collect();
    events.sort_by_key(|e| (e.timestamp, e.user.0));
    events
}

/// Quantize timestamps to 15-minute boundaries: synchronized bursts.
fn burstify(events: &[Event]) -> Vec<Event> {
    let mut out: Vec<Event> = events
        .iter()
        .map(|e| Event {
            timestamp: (e.timestamp / 900) * 900,
            ..*e
        })
        .collect();
    out.sort_by_key(|e| (e.timestamp, e.user.0));
    out
}

/// Thin off-peak hours (23:00–07:59 UTC) to ~30%: a day/night load swing.
fn diurnalize(events: &[Event], seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1e5);
    events
        .iter()
        .filter(|e| {
            let hour = pp_data::schema::hour_of_day(e.timestamp);
            (8..23).contains(&hour) || rng.gen::<f64>() < 0.3
        })
        .copied()
        .collect()
}

/// Produces one wave of predictions for the replay loop, and observes the
/// wave once its ground truth has resolved.
trait WaveScorer {
    fn score(&mut self, wave: &[Event], now: i64) -> Vec<Prediction>;
    fn on_wave_resolved(&mut self, _wave: &[Event]) {}
}

/// The seeded noisy oracle (the controlled operating curve).
struct OracleScorer {
    rng: StdRng,
}

impl WaveScorer for OracleScorer {
    fn score(&mut self, wave: &[Event], _now: i64) -> Vec<Prediction> {
        wave.iter()
            .map(|e| Prediction {
                user_id: e.user,
                probability: oracle_score(&mut self.rng, e.accessed),
            })
            .collect()
    }
}

/// Real batched RNN scores through the serving engine, with per-user hidden
/// states advanced asynchronously after each wave resolves — the production
/// wiring of §9: `RNN_predict` on the request path, `RNN_update` once the
/// session outcome is known.
struct LearnedScorer {
    model: Arc<RnnModel>,
    store: Arc<ShardedStateStore>,
    engine: BatchServingEngine,
    /// Timestamp of each user's last applied hidden-state update.
    last_update: HashMap<u64, i64>,
}

impl LearnedScorer {
    fn new(model: Arc<RnnModel>, seed_shards: usize) -> Self {
        let store = Arc::new(ShardedStateStore::with_capacity(seed_shards, 1 << 20));
        let engine = BatchServingEngine::start(model.clone(), store.clone(), 2, 64);
        Self {
            model,
            store,
            engine,
            last_update: HashMap::new(),
        }
    }
}

impl WaveScorer for LearnedScorer {
    fn score(&mut self, wave: &[Event], _now: i64) -> Vec<Prediction> {
        let requests: Vec<PredictRequest> = wave
            .iter()
            .map(|e| PredictRequest {
                user_id: e.user,
                timestamp: e.timestamp,
                context: e.context,
                elapsed_secs: e.timestamp
                    - self
                        .last_update
                        .get(&e.user.0)
                        .copied()
                        .unwrap_or(e.timestamp),
            })
            .collect();
        self.engine.predict_many_blocking(&requests)
    }

    fn on_wave_resolved(&mut self, wave: &[Event]) {
        let updates: Vec<UpdateRequest> = wave
            .iter()
            .map(|e| UpdateRequest {
                user_id: e.user,
                timestamp: e.timestamp,
                context: e.context,
                delta_t_secs: e.timestamp
                    - self
                        .last_update
                        .get(&e.user.0)
                        .copied()
                        .unwrap_or(e.timestamp),
                accessed: e.accessed,
            })
            .collect();
        BatchScheduler::new(&self.model, &self.store, 64).apply_updates(&updates);
        for e in wave {
            self.last_update.insert(e.user.0, e.timestamp);
        }
    }
}

/// Replays an event stream through a [`PrecomputeSystem`]: waves of
/// same-minute session starts are scored, decided, resolved against ground
/// truth shortly after, and fed back. Shared by the oracle and learned
/// paths — only the [`WaveScorer`] differs.
fn replay(
    name: &str,
    events: &[Event],
    sim: &SimConfig,
    mut system: PrecomputeSystem,
    scorer: &mut dyn WaveScorer,
    tolerance: f64,
) -> ScenarioResult {
    let threshold_initial = system.controller().threshold();

    // Waves: consecutive events sharing a one-minute bucket, cut when a
    // user repeats (one outstanding decision per user) or at max_wave.
    let mut waves = 0usize;
    let mut halfway: Option<OutcomeCounts> = None;
    let mut admitted_prob_sum = 0.0f64;
    let mut admitted_count = 0u64;
    let mut i = 0usize;
    while i < events.len() {
        let bucket = events[i].timestamp / 60;
        let mut wave: Vec<Event> = Vec::new();
        let mut users = std::collections::HashSet::new();
        while i < events.len()
            && events[i].timestamp / 60 == bucket
            && wave.len() < sim.max_wave
            && users.insert(events[i].user.0)
        {
            wave.push(events[i]);
            i += 1;
        }
        let now = bucket * 60;
        let predictions = scorer.score(&wave, now);
        for decision in system.handle_scores(&predictions, now) {
            if decision.action == pp_precompute::Action::Prefetch {
                admitted_prob_sum += decision.probability;
                admitted_count += 1;
            }
        }
        // Sessions resolve shortly after their start; accessed sessions
        // consume the payload quickly, the rest time out at window close.
        for event in &wave {
            let dwell = if event.accessed { 10 } else { 45 };
            system
                .resolve_session(event.user, now + dwell, event.accessed)
                .expect("every wave entry has a pending decision");
        }
        scorer.on_wave_resolved(&wave);
        waves += 1;
        if halfway.is_none() && i >= events.len() / 2 {
            halfway = Some(system.tracker().counts());
        }
    }

    system
        .check_invariants()
        .unwrap_or_else(|violation| panic!("{name}: invariant violated: {violation}"));

    let report = system.report();
    // Steady-state precision: over the second half of the traffic, after
    // the controller has had the first half to find the operating point.
    let precision_steady_state = halfway.and_then(|h| {
        let hits = report.outcomes.hits - h.hits;
        let prefetches = report.outcomes.prefetches_resolved() - h.prefetches_resolved();
        (prefetches > 0).then(|| hits as f64 / prefetches as f64)
    });
    let within = precision_steady_state
        .map(|p| (p - sim.target_precision).abs() <= tolerance)
        .unwrap_or(false);

    let result = ScenarioResult {
        scenario: name.to_string(),
        events: events.len(),
        waves,
        scored: report.decisions.scored,
        prefetches_executed: report.budget.admitted,
        denied: report.denied,
        outcomes: report.outcomes,
        precision_overall: report.precision,
        precision_steady_state,
        recall: report.recall,
        waste_ratio: report.waste_ratio,
        budget_utilization: report.budget.utilization(),
        budget_denied_budget: report.budget.denied_budget,
        budget_denied_inflight: report.budget.denied_inflight,
        max_inflight_seen: report.budget.max_inflight_seen,
        cache_hits: report.cache.hits,
        cache_expirations: report.cache.expirations,
        cache_lru_evictions: report.cache.lru_evictions,
        threshold_initial,
        threshold_final: report.threshold,
        controller_windows: report.controller_windows,
        recalibrations: report.recalibrations,
        recalibration_holds: report.recalibration_holds,
        mean_admitted_probability: (admitted_count > 0)
            .then(|| admitted_prob_sum / admitted_count as f64),
        precision_within_tolerance: within,
    };
    println!(
        "  {:<14} {:>6} events  precision {:.3} (steady {:.3}, target {:.2})  recall {:.3}  waste {:.3}  budget util {:.2}  threshold {:.3} -> {:.3}  windows {} (recal {} / held {})",
        result.scenario,
        result.events,
        result.precision_overall.unwrap_or(f64::NAN),
        result.precision_steady_state.unwrap_or(f64::NAN),
        sim.target_precision,
        result.recall.unwrap_or(f64::NAN),
        result.waste_ratio.unwrap_or(f64::NAN),
        result.budget_utilization,
        result.threshold_initial,
        result.threshold_final,
        result.controller_windows,
        result.recalibrations,
        result.recalibration_holds,
    );
    result
}

fn run_oracle_scenario(
    name: &str,
    events: &[Event],
    sim: &SimConfig,
    tolerance: f64,
) -> ScenarioResult {
    let system =
        PrecomputeSystem::new(sim.system(sim.initial_threshold, AdmissionOrder::Fifo, false));
    let mut scorer = OracleScorer {
        rng: StdRng::seed_from_u64(sim.seed ^ 0x5c0_7e5),
    };
    replay(name, events, sim, system, &mut scorer, tolerance)
}

/// Trains the RNN on the warmup split, offline-calibrates its threshold for
/// the precision target, then replays the held-out users' traffic with
/// learned scores, outcome-driven recalibration, and the FIFO-vs-priority
/// comparison at an equal tight budget.
fn run_learned_loop(dataset: &Dataset, sim: &SimConfig, tolerance: f64) -> LearnedLoopReport {
    let train_users = sim.train_users.min(dataset.users.len() / 2);
    let train_idx: Vec<usize> = (0..train_users).collect();
    let serve_idx: Vec<usize> = (train_users..dataset.users.len()).collect();
    let serve_events = events_of_users(dataset, &serve_idx);
    assert!(
        !serve_events.is_empty(),
        "no held-out traffic — increase PP_USERS"
    );

    // Train in-sim on the seeded warmup split, at the benchmark's hidden
    // size — the tiny test configuration generalizes at chance level on
    // held-out users, which would leave the precision target infeasible.
    let mut model = RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig {
            hidden_dim: sim.hidden,
            mlp_width: sim.hidden,
            ..RnnModelConfig::default()
        },
        sim.seed,
    );
    let trainer = RnnTrainer::new(TrainerConfig {
        epochs: sim.train_epochs,
        ..TrainerConfig::warmup(sim.seed)
    });
    let report = trainer.train(&mut model, dataset, &train_idx);
    println!(
        "  trained on {} users ({} predictions, {} epochs) in {:.1}s",
        train_users, report.total_predictions, report.epochs, report.wall_time_secs
    );

    // Offline calibration on the warmup split (paper §8: constrain
    // precision, maximize recall); fall back to the configured initial
    // threshold when the target is infeasible on the split.
    let (scores, labels) =
        scores_and_labels(&trainer.evaluate(&model, dataset, &train_idx, Some(7)));
    let calibrated_threshold =
        PrecomputePolicy::for_target_precision(&scores, &labels, sim.target_precision)
            .map(|p| p.threshold())
            .unwrap_or(sim.initial_threshold)
            .clamp(0.01, 0.99);
    // Held-out offline diagnostics: the ceiling the live loop is chasing.
    let (ho_scores, ho_labels) =
        scores_and_labels(&trainer.evaluate(&model, dataset, &serve_idx, Some(7)));
    let heldout_pr_auc = pr_auc(&ho_scores, &ho_labels);
    let heldout_recall_at_target =
        recall_at_precision(&ho_scores, &ho_labels, sim.target_precision);
    println!(
        "  offline-calibrated threshold {calibrated_threshold:.3} for target {:.2}; held-out PR-AUC {heldout_pr_auc:.3}, recall@target {heldout_recall_at_target:.3}",
        sim.target_precision
    );

    let model = Arc::new(model);

    // Warm the per-user hidden states on a prefix of the held-out stream
    // (updates only, no decisions) — a deployed system scores users whose
    // histories are already in the state store, not a cold universe.
    let warm_fraction: f64 = env_or("PP_WARM_FRACTION", 0.3);
    let t0 = serve_events.first().expect("non-empty").timestamp;
    let t1 = serve_events.last().expect("non-empty").timestamp;
    let split_at = t0 + ((t1 - t0) as f64 * warm_fraction.clamp(0.0, 0.9)) as i64;
    let warmup_len = serve_events.partition_point(|e| e.timestamp < split_at);
    let (warm_events, live_events) = serve_events.split_at(warmup_len);
    println!(
        "  warmed states on {} events; {} live events follow",
        warm_events.len(),
        live_events.len()
    );

    let warmed_scorer = |warm_stream: &[Event]| {
        let mut scorer = LearnedScorer::new(model.clone(), 8);
        // Apply warm-up updates in batched unique-user chunks (the same
        // cut rule the replay loop uses) — one event at a time would run a
        // size-1 forward pass per session and forfeit the batching.
        let mut chunk: Vec<Event> = Vec::new();
        let mut users = std::collections::HashSet::new();
        for event in warm_stream {
            if chunk.len() >= 256 || !users.insert(event.user.0) {
                scorer.on_wave_resolved(&chunk);
                chunk.clear();
                users.clear();
                users.insert(event.user.0);
            }
            chunk.push(*event);
        }
        scorer.on_wave_resolved(&chunk);
        scorer
    };

    // Oracle baseline on the identical live traffic.
    let oracle = run_oracle_scenario("oracle", live_events, sim, tolerance);

    // The learned closed loop: RNN scores + recalibration from outcomes.
    let learned = {
        let system =
            PrecomputeSystem::new(sim.system(calibrated_threshold, AdmissionOrder::Fifo, true));
        let mut scorer = warmed_scorer(warm_events);
        replay("learned", live_events, sim, system, &mut scorer, tolerance)
    };

    // FIFO vs priority at an equal, deliberately tight budget, on the
    // burstified variant (priority admission matters when a synchronized
    // wave competes for a low bucket). Warm-up uses the burstified prefix
    // too: mixing original warm timestamps with floored live timestamps
    // would hand the model negative elapsed times at the boundary.
    let bursty_warm = burstify(warm_events);
    let bursty_events = burstify(live_events);
    let span_secs = (bursty_events.last().unwrap().timestamp - bursty_events[0].timestamp).max(1);
    let events_per_sec = bursty_events.len() as f64 / span_secs as f64;
    let tight = SimConfig {
        burst_prefetches: env_or("PP_PRIORITY_BURST", 16.0),
        sustained_prefetches_per_sec: env_or(
            "PP_PRIORITY_SUSTAIN",
            (events_per_sec * 0.15).max(1e-6),
        ),
        ..*sim
    };
    let admission_run = |name: &str, admission| {
        let system = PrecomputeSystem::new(tight.system(calibrated_threshold, admission, true));
        let mut scorer = warmed_scorer(&bursty_warm);
        replay(name, &bursty_events, &tight, system, &mut scorer, tolerance)
    };
    let fifo = admission_run("fifo_tight", AdmissionOrder::Fifo);
    let priority = admission_run("priority_tight", AdmissionOrder::Priority);
    // Equal budget means the same bucket configuration; the exact spend can
    // drift by a handful of prefetches because admission order perturbs
    // which sessions hold cache and inflight slots downstream. Beyond a few
    // percent the comparison is not apples-to-apples — recorded in the
    // report (and failed by the gate) rather than panicking away the run.
    let spend_gap = fifo
        .prefetches_executed
        .abs_diff(priority.prefetches_executed);
    let spend_comparable = spend_gap as f64 <= 0.05 * fifo.prefetches_executed.max(20) as f64;
    if !spend_comparable {
        eprintln!(
            "  WARNING: admission orders spent materially different budgets: {} vs {}",
            fifo.prefetches_executed, priority.prefetches_executed
        );
    }
    let hit_lift = priority.outcomes.hits as i64 - fifo.outcomes.hits as i64;
    println!(
        "  fifo vs priority at equal budget: {} vs {} hits (lift {:+}); mean admitted score {:.3} vs {:.3}",
        fifo.outcomes.hits,
        priority.outcomes.hits,
        hit_lift,
        fifo.mean_admitted_probability.unwrap_or(f64::NAN),
        priority.mean_admitted_probability.unwrap_or(f64::NAN),
    );

    let learned_within_tolerance = learned
        .precision_steady_state
        .map(|p| (p - sim.target_precision).abs() <= tolerance)
        .unwrap_or(false);
    LearnedLoopReport {
        train_users,
        serve_users: serve_idx.len(),
        train_epochs: sim.train_epochs,
        train_predictions: report.total_predictions,
        train_secs: report.wall_time_secs,
        calibrated_threshold,
        heldout_pr_auc,
        heldout_recall_at_target,
        warmup_events: warm_events.len(),
        oracle,
        learned,
        fifo_vs_priority: AdmissionComparison {
            burst_prefetches: tight.burst_prefetches,
            sustained_prefetches_per_sec: tight.sustained_prefetches_per_sec,
            hit_lift,
            priority_at_least_fifo: priority.outcomes.hits >= fifo.outcomes.hits,
            spend_comparable,
            fifo,
            priority,
        },
        learned_within_tolerance,
    }
}

/// Push real batched RNN scores through the decision engine: the
/// serving → precompute integration smoke, end to end.
fn engine_smoke(events: &[Event], seed: u64) -> EngineSmoke {
    let model = Arc::new(RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig::tiny(),
        seed,
    ));
    let store = Arc::new(ShardedStateStore::with_capacity(8, 100_000));
    let engine = BatchServingEngine::start(model, store, 2, 64);
    let requests: Vec<PredictRequest> = events
        .iter()
        .take(2_000)
        .enumerate()
        .map(|(i, e)| PredictRequest {
            user_id: e.user,
            timestamp: e.timestamp,
            context: Context::MobileTab {
                unread_count: (i % 7) as u8,
                active_tab: Tab::ALL[i % Tab::ALL.len()],
            },
            elapsed_secs: 300,
        })
        .collect();
    let mut decisions = DecisionEngine::new(pp_core::PrecomputePolicy::with_threshold(0.5));
    let mut served = 0usize;
    for chunk in requests.chunks(256) {
        served += decisions.score_and_decide(&engine, chunk).len();
    }
    assert_eq!(served, requests.len());
    let engine_stats = engine.stats();
    let stats = decisions.stats();
    EngineSmoke {
        requests: served,
        prefetch_intents: stats.prefetch_intents,
        skips: stats.skips,
        forward_passes: engine_stats.batches,
        mean_batch_size: engine_stats.mean_batch_size(),
    }
}

/// Which scenarios a run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selection {
    All,
    ColdStart,
    Bursty,
    Diurnal,
    LearnedLoop,
}

impl Selection {
    fn parse(args: &[String]) -> Self {
        let mut selection = Self::All;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let value = if arg == "--scenario" {
                iter.next()
                    .expect("--scenario requires a value")
                    .to_lowercase()
            } else if let Some(value) = arg.strip_prefix("--scenario=") {
                value.to_lowercase()
            } else {
                // Silently ignoring a misspelled flag would run (and gate)
                // every scenario the caller meant to skip.
                panic!(
                    "unknown argument '{arg}' (expected --scenario <name> or --scenario=<name>)"
                );
            };
            selection = match value.as_str() {
                "all" => Self::All,
                "cold_start" => Self::ColdStart,
                "bursty" => Self::Bursty,
                "diurnal" => Self::Diurnal,
                "learned_loop" => Self::LearnedLoop,
                other => panic!(
                    "unknown scenario '{other}' (expected cold_start, bursty, diurnal, learned_loop or all)"
                ),
            };
        }
        selection
    }

    fn includes_oracle(self, name: &str) -> bool {
        matches!(
            (self, name),
            (Self::All, _)
                | (Self::ColdStart, "cold_start")
                | (Self::Bursty, "bursty")
                | (Self::Diurnal, "diurnal")
        )
    }

    fn includes_learned_loop(self) -> bool {
        matches!(self, Self::All | Self::LearnedLoop)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selection = Selection::parse(&args);
    let scale = Scale::from_env();
    let target_precision: f64 = env_or("PP_TARGET_PRECISION", 0.6);
    let initial_threshold: f64 = env_or("PP_INITIAL_THRESHOLD", 0.5);
    let window: usize = env_or("PP_WINDOW", 100);
    let gain: f64 = env_or("PP_GAIN", 1.0);
    let max_wave: usize = env_or("PP_MAX_WAVE", 256);
    let out_path = std::env::var("PP_OUT").unwrap_or_else(|_| "BENCH_precompute.json".to_string());

    section("precompute_sim: budget-aware precompute on seeded MobileTab traffic");
    let dataset = build_dataset(scale.users, scale.days, scale.seed);
    let all_idx: Vec<usize> = (0..dataset.users.len()).collect();
    let events = events_of_users(&dataset, &all_idx);
    assert!(!events.is_empty(), "no traffic — increase PP_USERS/PP_DAYS");
    let span_secs = (events.last().unwrap().timestamp - events[0].timestamp).max(1) as f64;
    let events_per_sec = events.len() as f64 / span_secs;

    // Prefetch cost in the §9 cost model's units, from the RNN serving
    // profile (one 512-byte state lookup + the predict FLOPs).
    let model = RnnModel::new(
        DatasetKind::MobileTab,
        TaskKind::PerSession,
        RnnModelConfig::tiny(),
        scale.seed,
    );
    let cost = prefetch_cost_units(&rnn_profile(&model), &CostWeights::default());

    let sim = SimConfig {
        users: scale.users,
        days: scale.days,
        seed: scale.seed,
        target_precision,
        initial_threshold,
        controller_window: window,
        controller_gain: gain,
        max_wave,
        burst_prefetches: env_or("PP_BURST_PREFETCHES", 128.0),
        // Sustain roughly half the raw session rate as prefetches: ample in
        // smooth traffic, binding during synchronized bursts.
        sustained_prefetches_per_sec: env_or("PP_SUSTAINED_PREFETCHES", events_per_sec * 0.5),
        max_inflight: env_or("PP_MAX_INFLIGHT", 192),
        cost_per_prefetch_units: cost,
        cache_ttl_secs: env_or("PP_CACHE_TTL", 900),
        train_users: env_or("PP_TRAIN_USERS", 96),
        train_epochs: env_or("PP_TRAIN_EPOCHS", 4),
        hidden: scale.hidden,
    };
    println!(
        "traffic: {} events over {:.1} days ({:.2} events/s); prefetch cost {:.0} units; target precision {:.2}",
        events.len(),
        span_secs / 86_400.0,
        events_per_sec,
        cost,
        target_precision
    );

    // Setting the variable opts into gating, so a malformed value must
    // fail loudly rather than silently gate at the default tolerance.
    let tolerance: f64 = match std::env::var("PP_REQUIRE_PRECISION") {
        Ok(raw) => raw
            .parse()
            .expect("PP_REQUIRE_PRECISION must be a number (e.g. 0.05)"),
        Err(_) => 0.05,
    };
    let learned_tolerance: f64 = match std::env::var("PP_REQUIRE_LEARNED_PRECISION") {
        Ok(raw) => raw
            .parse()
            .expect("PP_REQUIRE_LEARNED_PRECISION must be a number (e.g. 0.10)"),
        Err(_) => 0.10,
    };

    let mut scenarios = Vec::new();
    if selection.includes_oracle("cold_start")
        || selection.includes_oracle("bursty")
        || selection.includes_oracle("diurnal")
    {
        section("oracle scenarios");
        if selection.includes_oracle("cold_start") {
            scenarios.push(run_oracle_scenario("cold_start", &events, &sim, tolerance));
        }
        if selection.includes_oracle("bursty") {
            scenarios.push(run_oracle_scenario(
                "bursty",
                &burstify(&events),
                &sim,
                tolerance,
            ));
        }
        if selection.includes_oracle("diurnal") {
            scenarios.push(run_oracle_scenario(
                "diurnal",
                &diurnalize(&events, scale.seed),
                &sim,
                tolerance,
            ));
        }
    }

    let learned_loop = if selection.includes_learned_loop() {
        section("learned loop: in-sim-trained RNN with outcome-driven recalibration");
        Some(run_learned_loop(&dataset, &sim, learned_tolerance))
    } else {
        None
    };

    let smoke = if selection == Selection::All {
        section("serving-engine integration smoke");
        let smoke = engine_smoke(&events, scale.seed);
        println!(
            "  scored {} requests through BatchServingEngine: {} prefetch intents, {} skips, {} forward passes (mean batch {:.1})",
            smoke.requests, smoke.prefetch_intents, smoke.skips, smoke.forward_passes, smoke.mean_batch_size
        );
        Some(smoke)
    } else {
        None
    };

    let report = SimReport {
        benchmark: "precompute_sim".to_string(),
        config: sim,
        scenarios,
        engine_smoke: smoke,
        learned_loop,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");

    let mut failures: Vec<String> = Vec::new();
    if std::env::var("PP_REQUIRE_PRECISION").is_ok() {
        for s in report
            .scenarios
            .iter()
            .filter(|s| !s.precision_within_tolerance)
        {
            failures.push(format!(
                "{} steady-state precision {:?} outside target {} ± {}",
                s.scenario, s.precision_steady_state, target_precision, tolerance
            ));
        }
    }
    if std::env::var("PP_REQUIRE_LEARNED_PRECISION").is_ok() {
        if let Some(learned) = &report.learned_loop {
            if !learned.learned_within_tolerance {
                failures.push(format!(
                    "learned steady-state precision {:?} outside target {} ± {}",
                    learned.learned.precision_steady_state, target_precision, learned_tolerance
                ));
            }
            if !learned.fifo_vs_priority.priority_at_least_fifo {
                failures.push(format!(
                    "priority admission produced fewer hits than FIFO at equal budget ({} < {})",
                    learned.fifo_vs_priority.priority.outcomes.hits,
                    learned.fifo_vs_priority.fifo.outcomes.hits
                ));
            }
            if !learned.fifo_vs_priority.spend_comparable {
                failures.push(format!(
                    "FIFO and priority spends diverged beyond 5% ({} vs {}) — hit comparison not apples-to-apples",
                    learned.fifo_vs_priority.fifo.prefetches_executed,
                    learned.fifo_vs_priority.priority.prefetches_executed
                ));
            }
        } else {
            failures.push("PP_REQUIRE_LEARNED_PRECISION set but learned_loop not run".to_string());
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    if std::env::var("PP_REQUIRE_PRECISION").is_ok()
        || std::env::var("PP_REQUIRE_LEARNED_PRECISION").is_ok()
    {
        println!("OK: all gated precision/lift checks hold");
    }
}
